//! # joinmi
//!
//! Facade crate re-exporting the full `joinmi` public API.
//!
//! `joinmi` is a reproduction of *"Efficiently Estimating Mutual Information
//! Between Attributes Across Tables"* (Santos, Korn, Freire — ICDE 2024): a
//! library for estimating the mutual information between a target column of a
//! base table and feature columns of external candidate tables **without
//! materializing the join**, using fixed-size coordinated-sampling sketches.
//!
//! ## Crate map
//!
//! * [`par`] — scoped-thread parallel map primitives with deterministic
//!   output order (thread count via `JOINMI_THREADS`).
//! * [`hash`] — MurmurHash3, Fibonacci hashing, seeded unit-range hashers.
//! * [`store`] — versioned, checksummed on-disk binary format; sketches and
//!   repositories persist across processes (offline ingest → online query).
//! * [`table`] — in-memory relational substrate (typed columns, joins,
//!   group-by aggregation, CSV, type inference).
//! * [`estimators`] — entropy / MI estimators (MLE, KSG, MixedKSG, DC-KSG).
//! * [`sketch`] — the paper's contribution: TUPSK, LV2SK, PRISK, INDSK, CSK
//!   sketches, sketch joins, and MI estimation over sketch joins.
//! * [`synth`] — synthetic benchmark generators with analytically known MI.
//! * [`discovery`] — MI-based data discovery (repositories, joinability
//!   indexes, top-k relationship queries).
//! * [`serve`] — the sharded discovery daemon: REST queries over N shard
//!   repositories with timeout/admission/cache guardrails (protocol spec
//!   and runbook in `docs/SERVING.md`).
//! * [`eval`] — the experiment harness reproducing the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use joinmi::prelude::*;
//!
//! // Base table: one row per (date, zip) with the taxi-trip count target.
//! let train = Table::builder("taxi")
//!     .push_str_column("zipcode", vec!["11201", "10011", "11201", "10011"])
//!     .push_int_column("num_trips", vec![136, 112, 140, 118])
//!     .build()
//!     .unwrap();
//!
//! // Candidate table discovered elsewhere: population per zip code.
//! let cand = Table::builder("demographics")
//!     .push_str_column("zipcode", vec!["11201", "10011", "10003"])
//!     .push_int_column("population", vec![53_041, 50_594, 54_447])
//!     .build()
//!     .unwrap();
//!
//! // Sketch both sides (offline, independently), then estimate MI without
//! // materializing the left join.
//! let cfg = SketchConfig::new(256, 42);
//! let left = SketchKind::Tupsk.build_left(&train, "zipcode", "num_trips", &cfg).unwrap();
//! let right = SketchKind::Tupsk
//!     .build_right(&cand, "zipcode", "population", Aggregation::Avg, &cfg)
//!     .unwrap();
//! let joined = left.join(&right);
//! let estimate = joined.estimate_mi().unwrap();
//! assert!(estimate.mi >= 0.0);
//! ```

pub use joinmi_discovery as discovery;
pub use joinmi_estimators as estimators;
pub use joinmi_eval as eval;
pub use joinmi_hash as hash;
pub use joinmi_par as par;
pub use joinmi_serve as serve;
pub use joinmi_sketch as sketch;
pub use joinmi_store as store;
pub use joinmi_synth as synth;
pub use joinmi_table as table;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use joinmi_discovery::{
        AugmentationPlan, CandidateSource, RelationshipQuery, RepositorySnapshot, TableRepository,
    };
    pub use joinmi_estimators::{EstimatorKind, EstimatorWorkspace, MiEstimate};
    pub use joinmi_sketch::{
        Aggregation as SketchAggregation, ColumnSketch, JoinedSketch, SketchConfig, SketchKind,
    };
    pub use joinmi_store::StoreError;
    pub use joinmi_synth::{CdUnifConfig, KeyDistribution, TrinomialConfig};
    pub use joinmi_table::{Aggregation, DataType, Table, Value};
}
