//! Minimal, self-contained stand-in for the subset of the [`criterion`]
//! benchmarking API used by this workspace.
//!
//! The build environment has no crate-registry access, so this shim provides
//! just enough for the `benches/` targets to compile and run: benchmark
//! groups, per-input benchmarks, `Bencher::iter` with mean wall-clock timing,
//! and the `criterion_group!` / `criterion_main!` macros. There is no
//! statistical analysis, HTML report, or baseline comparison — each benchmark
//! prints its mean time per iteration to stdout.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the default warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the default measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        run_one(id, sample_size, warm_up, measurement, f);
        self
    }
}

/// A named collection of benchmarks sharing timing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` against a single `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        warm_up_time,
        measurement_time,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
        println!(
            "bench: {label:<60} {per_iter:>12} ns/iter ({} iters)",
            bencher.iters
        );
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly (after a warm-up pass) and records the mean
    /// wall-clock time per iteration.
    ///
    /// Iterations are timed in batches so that each clock read brackets at
    /// least ~200µs of work; nanosecond-scale bodies are not swamped by
    /// timer overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once),
        // and use it to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter_estimate = warm_start.elapsed().as_nanos() / u128::from(warm_iters);
        // Batch size: enough iterations that one batch spans >= ~200µs.
        const TARGET_BATCH_NANOS: u128 = 200_000;
        let batch = (TARGET_BATCH_NANOS / per_iter_estimate.max(1)).clamp(1, 1 << 20) as u64;

        // Measurement: `sample_size` batches within the time budget, one
        // clock read per batch.
        let start = Instant::now();
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters.max(1);
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// A benchmark id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut c2 = c.benchmark_group("g");
        c2.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c2.bench_with_input(BenchmarkId::new("f", 1), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        c2.finish();
        assert!(calls >= 2);
        let _ = c.bench_function("solo", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("tupsk").to_string(), "tupsk");
    }
}
