//! Minimal, self-contained stand-in for the subset of the [`proptest`] API
//! used by this workspace.
//!
//! The build environment has no crate-registry access, so this shim provides
//! a sample-based property-testing harness with the same front-end syntax:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], the [`Strategy`](strategy::Strategy)
//! trait with `prop_map`/`prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`any`](arbitrary::any), and
//! [`ProptestConfig`](test_runner::Config).
//!
//! Differences from the real crate: cases are generated from a deterministic
//! per-test RNG (seeded from the test name), and failing inputs are **not
//! shrunk** — a failure surfaces as the panic of the underlying `assert!`,
//! with the case number included via the panic message of the harness.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

/// The subset of names the real crate exposes via its prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic RNG driving case generation (SplitMix64).
pub mod rng {
    /// A small deterministic generator used to produce test cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from an explicit seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Builds a generator deterministically from a test name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        /// Returns the next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Test-runner configuration ([`Config`](test_runner::Config) is re-exported
/// as `ProptestConfig` by the prelude).
pub mod test_runner {
    /// Number of cases to run per property, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::rng::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Self::Value`].
    ///
    /// Unlike the real crate there is no value tree or shrinking: a strategy
    /// simply samples a fresh value from the RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let offset = u128::from(rng.next_u64()) % span;
                    ((self.start as i128) + offset as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = u128::from(rng.next_u64()) % span;
                    ((start as i128) + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

/// Strategies for arbitrary values of a type ([`any`](arbitrary::any)).
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use core::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_unit_f64()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies ([`vec`](collection::vec)).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use core::ops::{Range, RangeInclusive};

    /// An inclusive-start, exclusive-end length range for collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                start: len,
                end: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                start: *r.start(),
                end: r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            assert!(
                self.size.start < self.size.end,
                "empty collection size range"
            );
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a property holds; mirrors `proptest::prop_assert!`.
///
/// Without shrinking, this is `assert!` — the panic aborts the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => {
        assert!($($tokens)*)
    };
}

/// Asserts two expressions are equal; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => {
        assert_eq!($($tokens)*)
    };
}

/// Asserts two expressions differ; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => {
        assert_ne!($($tokens)*)
    };
}

/// Declares property tests; mirrors `proptest::proptest!`.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ..) { body }` items carrying outer attributes
/// (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::rng::TestRng::from_name(stringify!($name));
            // Build the strategies once; a tuple of strategies is itself a
            // strategy, sampled afresh each case.
            let strategies = ($($strategy,)+);
            for _ in 0..config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::sample(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_pairs() -> impl Strategy<Value = Vec<(u8, i32)>> {
        crate::collection::vec((0u8..10, -5i32..5), 1..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..9, b in -4i64..=4, u in any::<u64>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            // `any::<u64>` covers the full domain; check a byte round-trip
            // instead of a trivially-true bound.
            prop_assert_eq!(u64::from_le_bytes(u.to_le_bytes()), u);
        }

        /// Collection strategies respect their length range.
        #[test]
        fn vec_lengths_in_bounds(mut rows in small_pairs()) {
            prop_assert!(!rows.is_empty() && rows.len() < 20);
            rows.push((0, 0));
            prop_assert!(rows.iter().all(|(k, v)| *k < 10 && (-5..=5).contains(v)));
        }

        /// `prop_flat_map` produces dependent pairs of equal length.
        #[test]
        fn flat_map_dependent_lengths((xs, ys) in (1usize..16).prop_flat_map(|n| (
            crate::collection::vec(0u32..4, n),
            crate::collection::vec(0u32..4, n),
        ))) {
            prop_assert_eq!(xs.len(), ys.len());
        }
    }

    #[test]
    fn config_carries_cases() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn prop_map_applies() {
        let doubled = (1usize..4).prop_map(|v| v * 2);
        let mut rng = crate::rng::TestRng::from_seed(1);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!([2, 4, 6].contains(&v));
        }
    }
}
