//! Minimal, self-contained stand-in for the subset of the [`rand`] crate API
//! used by this workspace.
//!
//! The build environment has no crate-registry access, so this shim provides
//! the exact surface the workspace consumes: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. `StdRng` here is xoshiro256++ seeded via SplitMix64 —
//! deterministic and statistically solid, but a *different* stream than the
//! ChaCha12-based `StdRng` of the real crate.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension trait with the sampling conveniences used by the workspace.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a natural "standard" sampling distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly, producing values of type `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                ((start as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // Rejection-sample: rounding in `start + u * (end - start)` can land
        // exactly on `end`, which would violate the half-open contract.
        loop {
            let v = self.start + f64::sample(rng) * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic for a given seed. Note this is *not* the ChaCha12
    /// `StdRng` of the real `rand` crate, so seeded streams differ from
    /// upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as recommended by the
            // xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(2u32..=6);
            assert!((2..=6).contains(&w));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} not near 0.5");
    }
}
