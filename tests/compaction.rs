//! Compaction equivalence, end to end: folding append groups into a fresh
//! base — at any point of an arbitrary append history, in either mode — must
//! never change a query ranking by a single bit, and sealing must turn every
//! further ingest into a typed error.

use joinmi::discovery::persist::{CompactMode, CompactionReport};
use joinmi::discovery::RepositoryConfig;
use joinmi::prelude::*;
use joinmi::store::StoreError;
use joinmi::synth::TaxiScenario;
use proptest::prelude::*;

fn scenario_query(scenario: &TaxiScenario) -> RelationshipQuery {
    RelationshipQuery::new(scenario.taxi.clone(), "zipcode", "num_trips")
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(128, 3))
        .with_min_join_size(8)
}

fn fingerprint(results: &[joinmi::discovery::RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
    results
        .iter()
        .map(|r| {
            (
                r.candidate_index,
                r.mi.to_bits(),
                r.sketch_join_size,
                r.key_overlap,
            )
        })
        .collect()
}

fn rank_file(path: &std::path::Path, query: &RelationshipQuery) -> Vec<(usize, u64, usize, usize)> {
    let snapshot = TableRepository::load_mmap_like(path).unwrap();
    fingerprint(&query.execute(&snapshot).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: `compact(append*(repo))` answers queries
    /// bit-for-bit identically to the uncompacted append history, for
    /// arbitrary interleavings of appends and compactions.
    #[test]
    fn compact_is_invisible_to_queries_under_arbitrary_interleavings(
        base_frac in 20usize..70,
        cuts in proptest::collection::vec(0usize..100, 1..4),
        compact_after in proptest::collection::vec(any::<bool>(), 4),
        seal_at_end in any::<bool>(),
    ) {
        let scenario = TaxiScenario::generate(30, 12, 3);
        let query = scenario_query(&scenario);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(128, 3),
            ..RepositoryConfig::default()
        };

        // Split the demographics table into a base prefix plus 1–3 chunks.
        let demo = scenario.demographics.clone();
        let rows = demo.num_rows();
        let mut offsets: Vec<usize> = cuts.iter().map(|c| {
            let base = rows * base_frac / 100;
            base + (rows - base) * (c % 100) / 100
        }).collect();
        offsets.push(rows * base_frac / 100);
        offsets.push(rows);
        offsets.sort_unstable();

        let dir = std::env::temp_dir();
        let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
        let plain = dir.join(format!("joinmi-ct-plain-{tag}.jmi"));
        let compacted = dir.join(format!("joinmi-ct-compacted-{tag}.jmi"));

        // Ingest the base corpus and persist it twice: one file is left to
        // accumulate append groups, the other is compacted mid-history.
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(demo.slice_rows(0..offsets[0])).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        repo.save(&plain).unwrap();
        repo.save(&compacted).unwrap();

        let mut on_plain = TableRepository::load(&plain).unwrap();
        let mut on_compacted = TableRepository::load(&compacted).unwrap();
        for (step, window) in offsets.windows(2).enumerate() {
            let chunk = demo.slice_rows(window[0]..window[1]);
            if chunk.num_rows() > 0 {
                on_plain.append_rows(&chunk).unwrap();
                on_plain.append_to(&plain).unwrap();
                on_compacted.append_rows(&chunk).unwrap();
                on_compacted.append_to(&compacted).unwrap();
            }
            if compact_after[step.min(compact_after.len() - 1)] {
                let report: CompactionReport =
                    TableRepository::compact(&compacted, CompactMode::Preserve).unwrap();
                prop_assert!(!report.sealed);
                // The in-memory handle predates the rewrite; re-open it the
                // way a daemon would after a swap.
                on_compacted = TableRepository::load(&compacted).unwrap();
            }
        }

        let expected = rank_file(&plain, &query);
        prop_assert_eq!(&rank_file(&compacted, &query), &expected);

        // A final compaction — optionally sealing — still changes nothing.
        let mode = if seal_at_end { CompactMode::Seal } else { CompactMode::Preserve };
        let report = TableRepository::compact(&compacted, mode).unwrap();
        prop_assert_eq!(report.sealed, seal_at_end);
        prop_assert_eq!(&rank_file(&compacted, &query), &expected);

        if seal_at_end {
            // Sealed repositories reject appends with typed errors, in
            // memory and on disk.
            let mut sealed = TableRepository::load(&compacted).unwrap();
            let chunk = demo.slice_rows(0..1);
            let err = sealed.append_rows(&chunk).unwrap_err();
            prop_assert!(matches!(err, joinmi::table::TableError::Sealed(_)));
            // A stale unsealed handle can still append in memory, but the
            // on-disk append against the sealed file is refused.
            on_compacted.append_rows(&chunk).unwrap();
            let err = on_compacted.append_to(&compacted).unwrap_err();
            prop_assert!(matches!(err, StoreError::Sealed { .. }));
        }

        std::fs::remove_file(&plain).unwrap();
        std::fs::remove_file(&compacted).unwrap();
    }
}
