//! End-to-end persistence: offline ingest → save → (new "process" state) →
//! load → online query, checked bit-for-bit against the in-memory pipeline,
//! through the public facade API only.

use joinmi::discovery::RepositoryConfig;
use joinmi::prelude::*;
use joinmi::synth::TaxiScenario;

fn build_repo() -> (TableRepository, RelationshipQuery) {
    let scenario = TaxiScenario::generate(60, 20, 11);
    let mut repo = TableRepository::new(RepositoryConfig {
        sketch: SketchConfig::new(512, 11),
        ..RepositoryConfig::default()
    });
    repo.add_tables(vec![
        scenario.weather.clone(),
        scenario.demographics.clone(),
        scenario.inspections.clone(),
    ])
    .unwrap();
    let query = RelationshipQuery::new(scenario.taxi, "zipcode", "num_trips")
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 11))
        .with_min_join_size(10)
        .with_top_k(0);
    (repo, query)
}

fn fingerprint(ranking: &[joinmi::discovery::RankedCandidate]) -> Vec<(usize, u64, usize)> {
    ranking
        .iter()
        .map(|r| (r.candidate_index, r.mi.to_bits(), r.sketch_join_size))
        .collect()
}

#[test]
fn ingest_save_load_query_is_bit_identical() {
    let (repo, query) = build_repo();
    let in_memory = fingerprint(&query.execute(&repo).unwrap());
    assert!(!in_memory.is_empty());

    let path = std::env::temp_dir().join(format!(
        "joinmi-facade-persistence-{}.jmi",
        std::process::id()
    ));
    repo.save(&path).unwrap();

    // Eager load: a sketch-only repository.
    let loaded = TableRepository::load(&path).unwrap();
    assert!(loaded.is_sketch_only());
    assert_eq!(fingerprint(&query.execute(&loaded).unwrap()), in_memory);

    // Lazy snapshot: decodes only pruned candidates, same answers.
    let snapshot = TableRepository::load_mmap_like(&path).unwrap();
    assert_eq!(fingerprint(&query.execute(&snapshot).unwrap()), in_memory);

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn single_sketch_round_trips_through_the_facade() {
    use joinmi::table::Table;

    let table = Table::builder("t")
        .push_str_column("k", vec!["a", "b", "c", "a"])
        .push_int_column("v", vec![1, 2, 3, 4])
        .build()
        .unwrap();
    let cfg = SketchConfig::new(8, 1);
    let sketch = SketchKind::Tupsk
        .build_left(&table, "k", "v", &cfg)
        .unwrap();

    let mut buf = Vec::new();
    sketch.to_writer(&mut buf).unwrap();
    let decoded = ColumnSketch::from_reader(buf.as_slice()).unwrap();
    assert_eq!(decoded, sketch);

    // Typed error surface reaches the facade.
    match ColumnSketch::from_reader(&buf[..4]) {
        Err(StoreError::Truncated { .. }) => {}
        other => panic!("expected StoreError::Truncated, got {other:?}"),
    }
}
