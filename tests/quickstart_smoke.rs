//! Smoke test mirroring `examples/quickstart.rs` end-to-end: build two small
//! tables, sketch both sides, join the sketches, estimate MI, and check the
//! estimate against the exact value computed on the materialized join.

use joinmi::prelude::*;
use joinmi::table::{augment, AugmentSpec};

/// Builds the base table: `rows` observations of (zipcode, num_trips) where
/// the trip count depends deterministically on the zipcode plus a small
/// rotating offset, so I(num_trips; features of zipcode) is comfortably
/// positive.
fn base_table(rows: usize) -> Table {
    let zipcodes: Vec<String> = (0..rows).map(|i| format!("zip-{:02}", i % 16)).collect();
    let trips: Vec<i64> = (0..rows)
        .map(|i| 100 + 10 * ((i % 16) as i64) + (i % 3) as i64)
        .collect();
    Table::builder("taxi")
        .push_str_column("zipcode", zipcodes)
        .push_int_column("num_trips", trips)
        .build()
        .expect("valid base table")
}

/// Builds the candidate table: one row per zipcode with a population that is
/// a deterministic function of the zipcode.
fn candidate_table() -> Table {
    let zipcodes: Vec<String> = (0..16).map(|k| format!("zip-{k:02}")).collect();
    let population: Vec<i64> = (0..16).map(|k| 30_000 + 1_500 * k).collect();
    Table::builder("demographics")
        .push_str_column("zipcode", zipcodes)
        .push_int_column("population", population)
        .build()
        .expect("valid candidate table")
}

#[test]
fn quickstart_path_estimates_mi_close_to_full_join() {
    let taxi = base_table(240);
    let demographics = candidate_table();

    // Sketch both sides (offline, independently), then join the sketches and
    // estimate MI without materializing the join — the quickstart path.
    let cfg = SketchConfig::new(256, 42);
    let left = SketchKind::Tupsk
        .build_left(&taxi, "zipcode", "num_trips", &cfg)
        .expect("left sketch");
    let right = SketchKind::Tupsk
        .build_right(
            &demographics,
            "zipcode",
            "population",
            Aggregation::Avg,
            &cfg,
        )
        .expect("right sketch");
    let joined = left.join(&right);
    assert!(!joined.is_empty(), "sketch join recovered no pairs");

    let estimate = joined.estimate_mi().expect("sketch MI estimate");
    assert!(
        estimate.mi.is_finite(),
        "sketch MI is not finite: {}",
        estimate.mi
    );
    assert!(estimate.n > 0, "sketch estimate used no samples");

    // Exact value on the materialized left join.
    let spec = AugmentSpec::new(
        "zipcode",
        "num_trips",
        "zipcode",
        "population",
        Aggregation::Avg,
    );
    let full = augment(&taxi, &demographics, &spec).expect("full join");
    assert_eq!(
        full.table.num_rows(),
        taxi.num_rows(),
        "left join must preserve base rows"
    );

    let feature_col = spec.feature_column_name();
    let xs: Vec<Value> = (0..full.table.num_rows())
        .map(|i| full.table.value(i, &feature_col).expect("feature value"))
        .collect();
    let ys: Vec<Value> = (0..full.table.num_rows())
        .map(|i| full.table.value(i, "num_trips").expect("target value"))
        .collect();
    let full_joined = joinmi::sketch::JoinedSketch::from_pairs(
        xs,
        ys,
        joinmi::table::DataType::Float,
        joinmi::table::DataType::Int,
    );
    let full_estimate = full_joined.estimate_mi().expect("full-join MI estimate");
    assert!(full_estimate.mi.is_finite());
    assert!(
        full_estimate.mi > 0.1,
        "dependent columns should have clearly positive MI, got {}",
        full_estimate.mi
    );

    // The sketch holds up to 256 of 240 rows, so it sees (nearly) the whole
    // join; a loose tolerance still catches wiring mistakes (wrong column,
    // wrong aggregation, broken coordination) which collapse MI toward 0.
    let diff = (estimate.mi - full_estimate.mi).abs();
    assert!(
        diff < 0.25 * full_estimate.mi.max(1.0),
        "sketch MI {} too far from full-join MI {}",
        estimate.mi,
        full_estimate.mi
    );
}
