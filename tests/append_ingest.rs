//! End-to-end incremental ingest: appending rows to a repository — in memory
//! and through the on-disk append format — must be bit-for-bit identical to
//! one-shot ingest of the extended tables, for every sketch kind; torn or
//! corrupted append groups must surface as typed store errors.

use joinmi::discovery::RepositoryConfig;
use joinmi::prelude::*;
use joinmi::sketch::RightSketchBuilder;
use joinmi::store::StoreError;
use proptest::prelude::*;

/// A deterministic candidate table with skewed string keys, NULL keys, and
/// two feature columns.
fn corpus_table(name: &str, rows: usize) -> Table {
    let keys: Vec<Value> = (0..rows)
        .map(|i| {
            if i % 13 == 7 {
                Value::Null
            } else {
                Value::from(format!("k{}", (i * 31 + i / 7) % 97))
            }
        })
        .collect();
    let f0: Vec<f64> = (0..rows).map(|i| ((i * 31) % 97) as f64 * 1.5).collect();
    let f1: Vec<i64> = (0..rows).map(|i| ((i * 17) % 23) as i64 - 5).collect();
    Table::builder(name)
        .push_value_column("key", DataType::Str, &keys)
        .unwrap()
        .push_float_column("f0", f0)
        .push_int_column("f1", f1)
        .build()
        .unwrap()
}

fn repo_with(kind: SketchKind, tables: Vec<Table>) -> TableRepository {
    let mut repo = TableRepository::new(RepositoryConfig {
        sketch_kind: kind,
        sketch: SketchConfig::new(64, 9),
        ..RepositoryConfig::default()
    });
    repo.add_tables(tables).unwrap();
    repo
}

fn assert_repos_bit_identical(a: &TableRepository, b: &TableRepository, context: &str) {
    assert_eq!(a.candidates().len(), b.candidates().len(), "{context}");
    for (ca, cb) in a.candidates().iter().zip(b.candidates()) {
        assert_eq!(ca.label(), cb.label(), "{context}");
        assert_eq!(ca.sketch, cb.sketch, "{context}: sketch of {}", ca.label());
    }
    let (pa, sa) = a.joinability().canonical_parts();
    let (pb, sb) = b.joinability().canonical_parts();
    assert_eq!(pa, pb, "{context}: index postings");
    assert_eq!(sa, sb, "{context}: index sizes");
}

#[test]
fn append_rows_equals_one_shot_ingest_for_every_kind() {
    for kind in SketchKind::ALL {
        let full = corpus_table("cand", 400);
        let one_shot = repo_with(kind, vec![full.clone()]);

        let mut appended = repo_with(kind, vec![full.slice_rows(0..250)]);
        appended.append_rows(&full.slice_rows(250..320)).unwrap();
        appended.append_rows(&full.slice_rows(320..400)).unwrap();

        assert_repos_bit_identical(&one_shot, &appended, &format!("{kind}"));
        // The raw table kept by the in-memory repository matches too.
        assert_eq!(appended.table(0), &full);
        // Profile row counts are exact after appends.
        assert_eq!(appended.profiles()[0].rows, 400);
    }
}

#[test]
fn append_through_disk_across_simulated_processes_for_every_kind() {
    let dir = std::env::temp_dir();
    for kind in SketchKind::ALL {
        let full = corpus_table("cand", 380);
        let path = dir.join(format!(
            "joinmi-append-e2e-{}-{}.jmi",
            kind,
            std::process::id()
        ));

        // Process 1: ingest the prefix and persist.
        repo_with(kind, vec![full.slice_rows(0..300)])
            .save(&path)
            .unwrap();

        // Process 2: load, append the tail, extend the file in place.
        let mut daemon = TableRepository::load(&path).unwrap();
        assert!(daemon.is_appendable());
        daemon.append_rows(&full.slice_rows(300..380)).unwrap();
        daemon.append_to(&path).unwrap();

        // Process 3: load the appended artifact; must equal one-shot ingest.
        let reloaded = TableRepository::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let one_shot = repo_with(kind, vec![full.clone()]);
        assert_repos_bit_identical(&one_shot, &reloaded, &format!("{kind} via disk"));
        assert_eq!(reloaded.profiles()[0].rows, 380, "{kind}: profile rows");

        // And the reloaded repository can keep absorbing appends.
        let mut extended = reloaded;
        let more = corpus_table("cand", 500).slice_rows(380..500);
        extended.append_rows(&more).unwrap();
        let one_shot_more = repo_with(kind, vec![corpus_table("cand", 500)]);
        assert_repos_bit_identical(&one_shot_more, &extended, &format!("{kind} re-append"));
    }
}

#[test]
fn corrupt_append_section_is_a_typed_error_never_a_panic() {
    let full = corpus_table("cand", 300);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("joinmi-append-corrupt-{}.jmi", std::process::id()));
    repo_with(SketchKind::Tupsk, vec![full.slice_rows(0..240)])
        .save(&path)
        .unwrap();
    let base_len = std::fs::metadata(&path).unwrap().len() as usize;
    let mut daemon = TableRepository::load(&path).unwrap();
    daemon.append_rows(&full.slice_rows(240..300)).unwrap();
    daemon.append_to(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // Torn appends: every truncation inside the append group is typed.
    for cut in (base_len..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
        match joinmi::prelude::RepositorySnapshot::from_bytes(bytes[..cut].to_vec()) {
            Err(
                StoreError::Truncated { .. }
                | StoreError::UnexpectedSection { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Corrupt(_),
            ) => {}
            Ok(_) => {
                assert_eq!(cut, base_len, "only the exact base length may parse");
            }
            Err(e) => panic!("cut {cut}: unexpected error kind {e:?}"),
        }
    }

    // Bit flips anywhere in the group fail the section checksum.
    for offset in [base_len + 9, base_len + (bytes.len() - base_len) / 2] {
        let mut flipped = bytes.clone();
        flipped[offset] ^= 0x20;
        assert!(
            matches!(
                joinmi::prelude::RepositorySnapshot::from_bytes(flipped),
                Err(StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt(_)
                    | StoreError::Truncated { .. }
                    | StoreError::UnexpectedSection { .. })
            ),
            "flip at {offset} must be typed"
        );
    }
}

#[test]
fn v1_files_still_load_but_reject_appends() {
    // Synthesize a v1 artifact from a v3 one: strip the v3 REPO_META trailer
    // (distinct-sketch capacity + flags byte), drop the FEATURE_DISTINCT and
    // CANDIDATE_STATE sections, and patch the header version. This is
    // byte-for-byte what the PR 3 format wrote.
    let full = corpus_table("cand", 200);
    let repo = repo_with(SketchKind::Tupsk, vec![full.clone()]);
    let mut v3 = Vec::new();
    repo.save_to(&mut v3).unwrap();

    let mut v1 = v3[..8].to_vec();
    v1[4..6].copy_from_slice(&1u16.to_le_bytes());
    let mut pos = 8usize;
    use joinmi::discovery::persist::{
        SECTION_CANDIDATE, SECTION_CANDIDATE_STATE, SECTION_FEATURE_DISTINCT, SECTION_INDEX,
        SECTION_PROFILES, SECTION_REPO_META,
    };
    // REPO_META: re-encode the payload without the 9-byte v3 trailer
    // (u64 distinct-sketch capacity + u8 flags).
    {
        let payload = joinmi::store::scan_section(&v3, &mut pos, SECTION_REPO_META).unwrap();
        let stripped = &v3[payload.start..payload.end - 9];
        let mut section = joinmi::store::SectionBuilder::new();
        section.writer().write_raw(stripped).unwrap();
        let mut w = joinmi::store::Writer::new(&mut v1);
        section.finish(SECTION_REPO_META, &mut w).unwrap();
    }
    {
        let start = pos;
        joinmi::store::scan_section(&v3, &mut pos, SECTION_PROFILES).unwrap();
        v1.extend_from_slice(&v3[start..pos]);
        joinmi::store::scan_section(&v3, &mut pos, SECTION_FEATURE_DISTINCT).unwrap();
        let start = pos;
        joinmi::store::scan_section(&v3, &mut pos, SECTION_INDEX).unwrap();
        v1.extend_from_slice(&v3[start..pos]);
    }
    while pos < v3.len() {
        let start = pos;
        joinmi::store::scan_section(&v3, &mut pos, SECTION_CANDIDATE).unwrap();
        v1.extend_from_slice(&v3[start..pos]);
        joinmi::store::scan_section(&v3, &mut pos, SECTION_CANDIDATE_STATE).unwrap();
    }

    let mut loaded = TableRepository::load_from(v1.as_slice()).unwrap();
    assert!(!loaded.is_appendable());
    assert_eq!(loaded.candidates().len(), repo.candidates().len());
    for (a, b) in loaded.candidates().iter().zip(repo.candidates()) {
        assert_eq!(a.sketch, b.sketch);
    }
    let err = loaded
        .append_rows(&corpus_table("cand", 220).slice_rows(200..220))
        .expect_err("v1-loaded repositories cannot absorb appends");
    assert!(matches!(err, joinmi::table::TableError::Unsupported(_)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pinned tentpole invariant: for every sketch kind, appending a
    /// table in arbitrary chunks through the incremental builder is
    /// bit-for-bit identical to one-shot sketching of the whole table.
    #[test]
    fn builder_appends_over_arbitrary_splits_equal_one_shot(
        rows in 1usize..260,
        splits in proptest::collection::vec(0usize..260, 0..5),
        seed in 0u64..5,
        kind_index in 0usize..SketchKind::ALL.len(),
    ) {
        let kind = SketchKind::ALL[kind_index];
        let cfg = SketchConfig::new(24, seed);
        let full = corpus_table("cand", rows);
        let direct = kind
            .build_right(&full, "key", "f0", Aggregation::Avg, &cfg)
            .unwrap();

        let mut cuts: Vec<usize> = splits.into_iter().map(|s| s % (rows + 1)).collect();
        cuts.push(0);
        cuts.push(rows);
        cuts.sort_unstable();
        let mut builder: Option<RightSketchBuilder> = None;
        for pair in cuts.windows(2) {
            let chunk = full.slice_rows(pair[0]..pair[1]);
            match &mut builder {
                None => {
                    builder = Some(
                        RightSketchBuilder::start(kind, &chunk, "key", "f0", Aggregation::Avg, &cfg)
                            .unwrap(),
                    );
                }
                Some(b) => {
                    b.append_table(&chunk).unwrap();
                }
            }
        }
        let built = builder.expect("at least one chunk").finish();
        prop_assert_eq!(&direct, &built);
    }

    /// Repository-level form of the same invariant, including the
    /// joinability index and a save → load → append hop.
    #[test]
    fn repository_appends_over_arbitrary_splits_equal_one_shot(
        rows in 40usize..200,
        cut_frac in 10usize..90,
        kind_index in 0usize..SketchKind::ALL.len(),
    ) {
        let kind = SketchKind::ALL[kind_index];
        let full = corpus_table("cand", rows);
        let cut = rows * cut_frac / 100;
        let one_shot = repo_with(kind, vec![full.clone()]);

        let mut direct = repo_with(kind, vec![full.slice_rows(0..cut)]);
        direct.append_rows(&full.slice_rows(cut..rows)).unwrap();
        assert_repos_bit_identical(&one_shot, &direct, "in-memory");

        // The same append applied after a persistence round-trip.
        let mut bytes = Vec::new();
        repo_with(kind, vec![full.slice_rows(0..cut)])
            .save_to(&mut bytes)
            .unwrap();
        let mut reloaded = TableRepository::load_from(bytes.as_slice()).unwrap();
        reloaded.append_rows(&full.slice_rows(cut..rows)).unwrap();
        assert_repos_bit_identical(&one_shot, &reloaded, "reloaded");
    }
}
