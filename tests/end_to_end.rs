//! Cross-crate integration tests: the full discovery workflow, sketch vs
//! full-join agreement, and the behaviour of every sketching strategy on the
//! same realistic scenario.

use joinmi::discovery::{AugmentationPlan, RelationshipQuery, RepositoryConfig, TableRepository};
use joinmi::prelude::*;
use joinmi::sketch::JoinedSketch;
use joinmi::synth::TaxiScenario;
use joinmi::table::{augment, AugmentSpec};

/// Materializes the augmentation join and estimates MI on it (the exact
/// reference the sketches approximate).
fn full_join_mi(
    train: &Table,
    cand: &Table,
    key: &str,
    target: &str,
    feature: &str,
    agg: Aggregation,
) -> f64 {
    let spec = AugmentSpec::new(key, target, key, feature, agg);
    let joined = augment(train, cand, &spec).expect("full join");
    let feature_col = spec.feature_column_name();
    let xs: Vec<Value> = (0..joined.table.num_rows())
        .map(|i| joined.table.value(i, &feature_col).expect("column"))
        .collect();
    let ys: Vec<Value> = (0..joined.table.num_rows())
        .map(|i| joined.table.value(i, target).expect("column"))
        .collect();
    let x_dtype = joined.table.column(&feature_col).expect("column").dtype();
    let y_dtype = joined.table.column(target).expect("column").dtype();
    JoinedSketch::from_pairs(xs, ys, x_dtype, y_dtype)
        .estimate_mi()
        .expect("estimate")
        .mi
}

#[test]
fn sketch_estimates_track_full_join_estimates_on_the_taxi_scenario() {
    let scenario = TaxiScenario::generate(120, 25, 99);
    let cfg = SketchConfig::new(1024, 5);

    // Population feature joined on zipcode.
    let full = full_join_mi(
        &scenario.taxi,
        &scenario.demographics,
        "zipcode",
        "num_trips",
        "population",
        Aggregation::Avg,
    );
    let left = SketchKind::Tupsk
        .build_left(&scenario.taxi, "zipcode", "num_trips", &cfg)
        .expect("left sketch");
    let right = SketchKind::Tupsk
        .build_right(
            &scenario.demographics,
            "zipcode",
            "population",
            Aggregation::Avg,
            &cfg,
        )
        .expect("right sketch");
    let joined = left.join(&right);
    let sketch = joined.estimate_mi().expect("estimate").mi;

    assert!(
        full > 0.3,
        "full-join MI should be clearly positive: {full}"
    );
    assert!(
        (sketch - full).abs() < 0.5,
        "sketch estimate ({sketch}) should be close to the full-join estimate ({full})"
    );
}

#[test]
fn every_sketch_kind_completes_the_pipeline_on_the_taxi_scenario() {
    let scenario = TaxiScenario::generate(45, 12, 3);
    let cfg = SketchConfig::new(512, 9);
    for kind in SketchKind::ALL {
        let left = kind
            .build_left(&scenario.taxi, "date", "num_trips", &cfg)
            .expect("left sketch");
        let right = kind
            .build_right(
                &scenario.weather,
                "date",
                "rainfall",
                Aggregation::Avg,
                &cfg,
            )
            .expect("right sketch");
        let joined = left.join(&right);
        if joined.len() >= 8 {
            let est = joined.estimate_mi().expect("estimate");
            assert!(
                est.mi >= 0.0 && est.mi.is_finite(),
                "{kind}: bad estimate {}",
                est.mi
            );
        }
        // Storage bound: at most 2n for the two-level sketches, n for others.
        let bound = match kind {
            SketchKind::Lv2sk | SketchKind::Prisk => 2 * cfg.size,
            // INDSK is a Bernoulli sample with expected size n; allow slack.
            SketchKind::Indsk => 2 * cfg.size,
            _ => cfg.size,
        };
        assert!(
            left.len() <= bound,
            "{kind}: left sketch too large ({})",
            left.len()
        );
        assert!(
            right.len() <= cfg.size,
            "{kind}: right sketch too large ({})",
            right.len()
        );
    }
}

#[test]
fn discovery_query_then_materialization_preserves_row_count() {
    let scenario = TaxiScenario::generate(50, 14, 21);
    let mut repo = TableRepository::new(RepositoryConfig {
        sketch: SketchConfig::new(512, 21),
        ..RepositoryConfig::default()
    });
    repo.add_table(scenario.weather.clone())
        .expect("ingest weather");
    repo.add_table(scenario.demographics.clone())
        .expect("ingest demographics");
    repo.add_table(scenario.inspections.clone())
        .expect("ingest inspections");

    let query = RelationshipQuery::new(scenario.taxi.clone(), "zipcode", "num_trips")
        .with_top_k(5)
        .with_min_join_size(20)
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 21));
    let ranking = query.execute(&repo).expect("query");
    assert!(
        !ranking.is_empty(),
        "the query should surface zipcode-keyed candidates"
    );

    for candidate in &ranking {
        assert_eq!(candidate.key_column, "zipcode");
        let plan = AugmentationPlan::new("zipcode", "num_trips", candidate.clone());
        let materialized = plan
            .materialize(&scenario.taxi, &repo)
            .expect("materialize");
        assert_eq!(materialized.table.num_rows(), scenario.taxi.num_rows());
        assert!(materialized
            .table
            .schema()
            .contains(&plan.feature_column_name()));
    }
}

#[test]
fn csv_round_trip_feeds_the_sketch_pipeline() {
    // Export a generated table to CSV, re-import it with type inference, and
    // verify the sketches built from both versions agree.
    let scenario = TaxiScenario::generate(20, 6, 77);
    let csv = joinmi::table::write_csv_string(&scenario.taxi);
    let reread =
        joinmi::table::read_csv_str("taxi_csv", &csv, &joinmi::table::CsvOptions::default())
            .expect("CSV parses");
    assert_eq!(reread.num_rows(), scenario.taxi.num_rows());

    // Join on the date column: unlike zip codes (which the type inference
    // legitimately reads back as integers), dates stay strings, so the two
    // sketches must be bit-identical.
    let cfg = SketchConfig::new(128, 1);
    let a = SketchKind::Tupsk
        .build_left(&scenario.taxi, "date", "num_trips", &cfg)
        .expect("sketch original");
    let b = SketchKind::Tupsk
        .build_left(&reread, "date", "num_trips", &cfg)
        .expect("sketch reread");
    assert_eq!(a.len(), b.len());
    let keys_a: Vec<u64> = a.rows().iter().map(|r| r.key.raw()).collect();
    let keys_b: Vec<u64> = b.rows().iter().map(|r| r.key.raw()).collect();
    assert_eq!(
        keys_a, keys_b,
        "sketches must be identical after a CSV round trip"
    );
}
