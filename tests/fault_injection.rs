//! The deterministic fault matrix: every fsync, rename, and write of
//! `append_to` and `compact` is failed (or silently corrupted) in its own
//! run, and the file must then reopen — directly, or after one
//! `recover_truncated` pass — to a ranking bit-for-bit equal to either the
//! pre-operation or the post-operation state. Never a hybrid.
//!
//! This is the same contract `joinmi_bench chaos` sweeps over the full
//! pipeline corpus in CI; here it is pinned as a test over the taxi
//! scenario, plus a proptest over random append histories × random faults.

use joinmi::discovery::persist::CompactMode;
use joinmi::discovery::RepositoryConfig;
use joinmi::prelude::*;
use joinmi::store::fault::{self, FaultAction, FaultKind, FaultPlan, Trigger};
use joinmi::synth::TaxiScenario;
use proptest::prelude::*;

fn scenario_query(scenario: &TaxiScenario) -> RelationshipQuery {
    RelationshipQuery::new(scenario.taxi.clone(), "zipcode", "num_trips")
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(128, 3))
        .with_min_join_size(8)
}

type Fp = Vec<(usize, u64, usize, usize)>;

fn fingerprint(results: &[joinmi::discovery::RankedCandidate]) -> Fp {
    results
        .iter()
        .map(|r| {
            (
                r.candidate_index,
                r.mi.to_bits(),
                r.sketch_join_size,
                r.key_overlap,
            )
        })
        .collect()
}

fn rank_file(path: &std::path::Path, query: &RelationshipQuery) -> Fp {
    let snapshot = TableRepository::load_mmap_like(path).unwrap();
    fingerprint(&query.execute(&snapshot).unwrap())
}

/// Reopen after a fault: a plain open, or `recover_truncated` then open.
/// Panics if the file is unrecoverable — that is itself a contract failure.
fn recovered_rank(path: &std::path::Path, query: &RelationshipQuery) -> Fp {
    if let Ok(snapshot) = TableRepository::load_mmap_like(path) {
        return fingerprint(&query.execute(&snapshot).unwrap());
    }
    TableRepository::recover_truncated(path).expect("recover_truncated after an injected fault");
    rank_file(path, query)
}

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "joinmi-faultmx-{tag}-{}-{:?}.jmi",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Base state on disk plus the chunk an append run would ingest.
struct Harness {
    scenario: TaxiScenario,
    query: RelationshipQuery,
    path: std::path::PathBuf,
    base_bytes: Vec<u8>,
    split: usize,
}

impl Harness {
    fn new(tag: &str, split_pct: usize) -> Self {
        let scenario = TaxiScenario::generate(30, 12, 3);
        let query = scenario_query(&scenario);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(128, 3),
            ..RepositoryConfig::default()
        };
        let demo = scenario.demographics.clone();
        let split = demo.num_rows() * split_pct / 100;
        let path = temp(tag);
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(demo.slice_rows(0..split)).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        repo.save(&path).unwrap();
        let base_bytes = std::fs::read(&path).unwrap();
        Harness {
            scenario,
            query,
            path,
            base_bytes,
            split,
        }
    }

    fn tail(&self) -> Table {
        let demo = &self.scenario.demographics;
        demo.slice_rows(self.split..demo.num_rows())
    }

    fn reset(&self) {
        std::fs::write(&self.path, &self.base_bytes).unwrap();
    }

    /// Run `append_to` under `plan` against a pristine base file. The load
    /// and the in-memory append happen before arming, so the injected fault
    /// lands in the durability path itself.
    fn append_under(&self, plan: FaultPlan) -> (Result<(), StoreError>, fault::FaultStats) {
        self.reset();
        let mut repo = TableRepository::load(&self.path).unwrap();
        repo.append_rows(&self.tail()).unwrap();
        let guard = fault::arm(plan);
        let result = repo.append_to(&self.path);
        (result, guard.stats())
    }

    /// Run `compact` under `plan` against a base + one-append-group file.
    fn compact_under(
        &self,
        appended_bytes: &[u8],
        plan: FaultPlan,
    ) -> (Result<(), StoreError>, fault::FaultStats) {
        std::fs::write(&self.path, appended_bytes).unwrap();
        let guard = fault::arm(plan);
        let result = TableRepository::compact(&self.path, CompactMode::Preserve).map(|_| ());
        (result, guard.stats())
    }

    fn cleanup(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn fail_nth(kind: FaultKind, nth: u64) -> FaultPlan {
    FaultPlan::observe().with(Trigger {
        kind,
        name: None,
        nth,
        action: FaultAction::Error,
    })
}

/// Satellite leg 1: every fsync of `append_to` fails in its own run; the
/// append reports the error and the file reopens to exactly the base or the
/// appended ranking.
#[test]
fn every_append_fsync_failure_recovers_to_pre_or_post() {
    let h = Harness::new("append-fsync", 60);
    let pre = rank_file(&h.path, &h.query);

    let (ok, stats) = h.append_under(FaultPlan::observe());
    ok.unwrap();
    let post = rank_file(&h.path, &h.query);
    assert_ne!(pre, post, "the append tail must move the ranking");
    let fsyncs = stats.count(FaultKind::Fsync);
    assert!(fsyncs >= 1, "append_to must fsync its commit");

    for nth in 0..fsyncs {
        let (result, _) = h.append_under(fail_nth(FaultKind::Fsync, nth));
        let err = result.unwrap_err();
        assert!(
            err.to_string().contains(fault::INJECTED_PREFIX),
            "fsync #{nth}: the injected failure must surface, got: {err}"
        );
        let reopened = recovered_rank(&h.path, &h.query);
        assert!(
            reopened == pre || reopened == post,
            "fsync #{nth}: reopened to a hybrid ranking"
        );
    }
    h.cleanup();
}

/// Satellite leg 2: every fsync and the rename of `compact` fail in their
/// own runs; the original file stays bit-for-bit readable (compaction never
/// touches it before the atomic swap), and a retry then succeeds — the
/// guardian's backoff-and-retry loop composes with these failures.
#[test]
fn every_compact_fsync_and_rename_failure_leaves_the_original_and_retries() {
    let h = Harness::new("compact-fault", 60);
    let (ok, _) = h.append_under(FaultPlan::observe());
    ok.unwrap();
    let appended_bytes = std::fs::read(&h.path).unwrap();
    let expected = rank_file(&h.path, &h.query);

    let (ok, stats) = h.compact_under(&appended_bytes, FaultPlan::observe());
    ok.unwrap();
    assert_eq!(
        rank_file(&h.path, &h.query),
        expected,
        "compaction must not move the ranking"
    );
    let fsyncs = stats.count(FaultKind::Fsync);
    let renames = stats.count(FaultKind::Rename);
    assert!(fsyncs >= 1, "compact must fsync before the swap");
    assert_eq!(renames, 1, "compact commits through exactly one rename");

    let legs: Vec<(FaultKind, u64)> = (0..fsyncs)
        .map(|n| (FaultKind::Fsync, n))
        .chain(std::iter::once((FaultKind::Rename, 0)))
        .collect();
    for (kind, nth) in legs {
        let (result, _) = h.compact_under(&appended_bytes, fail_nth(kind, nth));
        let err = result.unwrap_err();
        assert!(
            err.to_string().contains(fault::INJECTED_PREFIX),
            "{kind:?} #{nth}: the injected failure must surface, got: {err}"
        );
        // The served file is untouched: same bytes, same ranking, no
        // recovery pass needed.
        assert_eq!(
            std::fs::read(&h.path).unwrap(),
            appended_bytes,
            "{kind:?} #{nth}: a failed compaction must leave the original bytes"
        );
        // And the operation is retryable: the next attempt (no faults)
        // completes the fold.
        TableRepository::compact(&h.path, CompactMode::Preserve).unwrap();
        assert_eq!(rank_file(&h.path, &h.query), expected);
    }
    h.cleanup();
}

/// Satellite leg 3: a bit flipped inside any of `append_to`'s writes is
/// either detected at reopen (and `recover_truncated` restores the base
/// state exactly) or landed in the appended section without changing its
/// decoded meaning — the reopened ranking is pre or post, never a third
/// value.
#[test]
fn flipped_append_writes_never_yield_a_hybrid() {
    let h = Harness::new("append-flip", 60);
    let pre = rank_file(&h.path, &h.query);
    let (ok, stats) = h.append_under(FaultPlan::observe());
    ok.unwrap();
    let post = rank_file(&h.path, &h.query);
    let writes = stats.count(FaultKind::Write);
    assert!(
        writes >= 2,
        "append_to must write the group and its trailer"
    );

    // Exhaustive over write sites (small corpus), three bit positions each.
    for nth in 0..writes {
        for bit in [0u64, 13, 7777] {
            let plan = FaultPlan::observe().with(Trigger {
                kind: FaultKind::Write,
                name: None,
                nth,
                action: FaultAction::FlipBit(bit),
            });
            // The flip is silent: the append itself usually succeeds.
            let (_, _) = h.append_under(plan);
            let reopened = recovered_rank(&h.path, &h.query);
            assert!(
                reopened == pre || reopened == post,
                "write #{nth} bit {bit}: reopened to a hybrid ranking"
            );
        }
    }
    h.cleanup();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random append split × random fault site × random action: the
    /// pre-or-post contract holds across the whole matrix, not just the
    /// hand-picked legs above.
    #[test]
    fn any_single_fault_during_append_or_compact_recovers_exactly(
        split_pct in 30usize..80,
        against_compact in any::<bool>(),
        site in 0u64..10_000,
        flip in any::<bool>(),
        bit in 0u64..1_000_000,
    ) {
        let h = Harness::new("prop", split_pct);
        let pre_append = rank_file(&h.path, &h.query);
        let (ok, append_stats) = h.append_under(FaultPlan::observe());
        ok.unwrap();
        let post_append = rank_file(&h.path, &h.query);
        let appended_bytes = std::fs::read(&h.path).unwrap();

        // Pick the faulted operation and its (pre, post) states.
        let (stats, pre, post) = if against_compact {
            let (ok, stats) = h.compact_under(&appended_bytes, FaultPlan::observe());
            ok.unwrap();
            (stats, post_append.clone(), post_append.clone())
        } else {
            (append_stats, pre_append, post_append)
        };

        // Map the random site onto the op's real fault points: writes and
        // fsyncs for flips-or-errors; creates/renames/reads error-only.
        let error_kinds = [
            FaultKind::Create, FaultKind::Write, FaultKind::Fsync,
            FaultKind::Rename, FaultKind::Read,
        ];
        let kinds: &[FaultKind] = if flip { &[FaultKind::Write] } else { &error_kinds };
        let total: u64 = kinds.iter().map(|&k| stats.count(k)).sum();
        prop_assert!(total > 0, "every op writes and fsyncs, so the pool is never empty");
        let mut index = site % total;
        let mut chosen = (FaultKind::Write, 0u64);
        for &kind in kinds {
            let n = stats.count(kind);
            if index < n {
                chosen = (kind, index);
                break;
            }
            index -= n;
        }
        let action = if flip { FaultAction::FlipBit(bit) } else { FaultAction::Error };
        let plan = FaultPlan::observe().with(Trigger {
            kind: chosen.0, name: None, nth: chosen.1, action,
        });

        let (result, _) = if against_compact {
            h.compact_under(&appended_bytes, plan)
        } else {
            h.append_under(plan)
        };
        if !flip {
            prop_assert!(result.is_err(), "an injected error must fail the operation");
        }
        let reopened = recovered_rank(&h.path, &h.query);
        prop_assert!(
            reopened == pre || reopened == post,
            "{:?} #{} {:?} on {}: hybrid ranking after recovery",
            chosen.0, chosen.1, action,
            if against_compact { "compact" } else { "append_to" }
        );
        h.cleanup();
    }
}
