//! End-to-end parallel determinism: repository ingest, query ranking, and
//! k-NN distance kernels must be bit-for-bit identical across thread counts
//! (1 vs 4), which is the contract that makes `JOINMI_THREADS` a pure
//! performance knob.

use joinmi::discovery::{RepositoryConfig, TableRepository};
use joinmi::estimators::knn::{kth_nn_distances_1d, kth_nn_distances_chebyshev};
use joinmi::par::with_threads;
use joinmi::prelude::*;
use joinmi::synth::TaxiScenario;

fn scenario_repo(threads: usize) -> (TableRepository, Vec<joinmi::discovery::RankedCandidate>) {
    let scenario = TaxiScenario::generate(60, 20, 9);
    let config = RepositoryConfig {
        sketch: SketchConfig::new(512, 3),
        ..RepositoryConfig::default()
    };
    with_threads(threads, || {
        let mut repo = TableRepository::new(config);
        repo.add_tables(vec![
            scenario.weather.clone(),
            scenario.demographics.clone(),
            scenario.inspections.clone(),
        ])
        .unwrap();
        let ranking = RelationshipQuery::new(scenario.taxi.clone(), "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 3))
            .with_min_join_size(10)
            .with_top_k(0)
            .execute(&repo)
            .unwrap();
        (repo, ranking)
    })
}

#[test]
fn repository_ingest_is_bitwise_identical_across_thread_counts() {
    let (seq, _) = scenario_repo(1);
    let (par, _) = scenario_repo(4);
    assert_eq!(seq.num_tables(), par.num_tables());
    assert_eq!(seq.candidates().len(), par.candidates().len());
    for (a, b) in seq.candidates().iter().zip(par.candidates()) {
        assert_eq!(a.table_index, b.table_index);
        assert_eq!(a.label(), b.label());
        assert_eq!(a.aggregation, b.aggregation);
        assert_eq!(
            a.sketch.rows(),
            b.sketch.rows(),
            "sketch diverged: {}",
            a.label()
        );
    }
}

#[test]
fn query_ranking_is_bitwise_identical_across_thread_counts() {
    let (_, seq) = scenario_repo(1);
    let (_, par) = scenario_repo(4);
    assert!(!seq.is_empty());
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.candidate_index, b.candidate_index);
        assert_eq!(
            a.mi.to_bits(),
            b.mi.to_bits(),
            "MI bits diverged: {}",
            a.label()
        );
        assert_eq!(a.estimator, b.estimator);
        assert_eq!(a.sketch_join_size, b.sketch_join_size);
        assert_eq!(a.key_overlap, b.key_overlap);
    }
}

#[test]
fn knn_kernels_are_bitwise_identical_across_thread_counts() {
    let mut state = 77u64;
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as f64) / f64::from(u32::MAX)
    };
    let n = 1500;
    let xs: Vec<f64> = (0..n).map(|_| next()).collect();
    let ys: Vec<f64> = (0..n).map(|_| next() * 3.0).collect();
    for k in [1usize, 3, 5] {
        let seq = with_threads(1, || kth_nn_distances_chebyshev(&xs, &ys, k));
        let par = with_threads(4, || kth_nn_distances_chebyshev(&xs, &ys, k));
        assert!(
            seq.iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "2d k={k}"
        );
        let seq1 = with_threads(1, || kth_nn_distances_1d(&xs, k));
        let par1 = with_threads(4, || kth_nn_distances_1d(&xs, k));
        assert!(
            seq1.iter()
                .zip(&par1)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "1d k={k}"
        );
    }
}

#[test]
fn ksg_family_estimators_are_bitwise_identical_across_thread_counts() {
    // PR 4 made the estimator accumulation loops parallel (fixed chunks,
    // ordered reduction): the estimates must not move by a single bit when
    // the worker count changes.
    let mut state = 0xeb1_u64;
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as f64) / f64::from(u32::MAX)
    };
    let n = 3000;
    let xs: Vec<f64> = (0..n).map(|_| next()).collect();
    // Mixture column: heavy exact ties (the non-unique-join regime), so the
    // ρ_i = 0 fallback paths run too.
    let xs_tied: Vec<f64> = xs.iter().map(|v| (v * 12.0).floor()).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + next()).collect();
    let codes: Vec<u32> = xs.iter().map(|v| (v * 5.0) as u32).collect();

    for k in [1usize, 3, 5] {
        let seq = with_threads(1, || {
            (
                joinmi::estimators::ksg_mi(&xs, &ys, k).unwrap(),
                joinmi::estimators::mixed_ksg_mi(&xs_tied, &ys, k).unwrap(),
                joinmi::estimators::dc_ksg_mi(&codes, &ys, k).unwrap(),
            )
        });
        let par = with_threads(4, || {
            (
                joinmi::estimators::ksg_mi(&xs, &ys, k).unwrap(),
                joinmi::estimators::mixed_ksg_mi(&xs_tied, &ys, k).unwrap(),
                joinmi::estimators::dc_ksg_mi(&codes, &ys, k).unwrap(),
            )
        });
        assert_eq!(seq.0.to_bits(), par.0.to_bits(), "ksg k={k}");
        assert_eq!(seq.1.to_bits(), par.1.to_bits(), "mixed_ksg k={k}");
        assert_eq!(seq.2.to_bits(), par.2.to_bits(), "dc_ksg k={k}");
    }
}

#[test]
fn blocked_kernels_match_scalar_oracles_bitwise() {
    // The blocked, lane-widened window expansion must agree with the
    // pre-refactor scalar expansion to the last bit, including under heavy
    // ties, at every thread count.
    use joinmi::estimators::knn::{kth_nn_distances_1d_scalar, kth_nn_distances_chebyshev_scalar};
    let mut state = 0xb10c_u64;
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as f64) / f64::from(u32::MAX)
    };
    let n = 2000;
    let xs: Vec<f64> = (0..n).map(|_| (next() * 40.0).floor() / 4.0).collect();
    let ys: Vec<f64> = (0..n).map(|_| next() * 3.0).collect();
    for threads in [1usize, 4] {
        for k in [1usize, 3, 6] {
            let (blocked_2d, scalar_2d, blocked_1d, scalar_1d) = with_threads(threads, || {
                (
                    kth_nn_distances_chebyshev(&xs, &ys, k),
                    kth_nn_distances_chebyshev_scalar(&xs, &ys, k),
                    kth_nn_distances_1d(&xs, k),
                    kth_nn_distances_1d_scalar(&xs, k),
                )
            });
            assert!(
                blocked_2d
                    .iter()
                    .zip(&scalar_2d)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "2d threads={threads} k={k}"
            );
            assert!(
                blocked_1d
                    .iter()
                    .zip(&scalar_1d)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "1d threads={threads} k={k}"
            );
        }
    }
}

#[test]
fn mi_estimation_is_reproducible_bit_for_bit() {
    // The digest-keyed maps and fixed-hasher contingency tables make repeated
    // estimates identical — not merely approximately equal.
    let n = 4000i64;
    let train = Table::builder("train")
        .push_str_column(
            "k",
            (0..n)
                .map(|i| format!("k{}", i % 500))
                .collect::<Vec<String>>(),
        )
        .push_int_column("y", (0..n).map(|i| i % 17).collect::<Vec<i64>>())
        .build()
        .unwrap();
    let cand = Table::builder("cand")
        .push_str_column(
            "k",
            (0..n)
                .map(|i| format!("k{}", i % 500))
                .collect::<Vec<String>>(),
        )
        .push_float_column("z", (0..n).map(|i| (i % 13) as f64).collect::<Vec<f64>>())
        .build()
        .unwrap();
    let cfg = SketchConfig::new(512, 11);
    let estimate = |threads: usize| {
        with_threads(threads, || {
            let left = SketchKind::Tupsk
                .build_left(&train, "k", "y", &cfg)
                .unwrap();
            let right = SketchKind::Tupsk
                .build_right(&cand, "k", "z", SketchAggregation::Avg, &cfg)
                .unwrap();
            left.join(&right).estimate_mi().unwrap().mi
        })
    };
    let a = estimate(1);
    let b = estimate(1);
    let c = estimate(4);
    assert_eq!(a.to_bits(), b.to_bits(), "sequential runs diverged");
    assert_eq!(a.to_bits(), c.to_bits(), "parallel run diverged");
}
