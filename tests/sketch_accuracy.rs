//! Statistical integration tests: the headline claims of the paper, checked
//! end-to-end on the synthetic benchmark with fixed seeds.

use joinmi::eval::{full_join_estimate, sketch_estimate, EstimatorMode, SketchTrial};
use joinmi::prelude::*;
use joinmi::synth::decompose;

/// §V-B1: on the full data, every estimator tracks the analytical MI.
#[test]
fn full_data_estimates_are_accurate() {
    let gen = TrinomialConfig::with_random_target(64, 2.5, 5);
    let data = gen.generate(10_000, 17);
    for mode in EstimatorMode::TRINOMIAL {
        let est = full_join_estimate(&data.xs, &data.ys, mode, 1).expect("estimate");
        assert!(
            (est - data.true_mi).abs() < 0.12,
            "{}: {est} vs true {}",
            mode.name(),
            data.true_mi
        );
    }
}

/// Table I: TUPSK recovers the full sketch budget and beats INDSK join sizes.
#[test]
fn tupsk_join_size_dominates_indsk() {
    let gen = CdUnifConfig::new(64);
    let data = gen.generate(8_000, 3);
    let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyInd);
    let config = SketchConfig::new(256, 9);

    let tupsk = SketchTrial {
        kind: SketchKind::Tupsk,
        config,
        mode: EstimatorMode::MixedKsg,
    };
    let indsk = SketchTrial {
        kind: SketchKind::Indsk,
        config,
        mode: EstimatorMode::MixedKsg,
    };
    let t = sketch_estimate(&pair, &tupsk).expect("TUPSK trial");
    assert_eq!(
        t.join_size, 256,
        "coordinated unique-key join must recover the full budget"
    );
    // Independent sampling matches ~ n²/N keys — may even be too small to
    // estimate at all; either way it must recover far fewer pairs.
    if let Some(i) = sketch_estimate(&pair, &indsk) {
        assert!(
            i.join_size < 64,
            "INDSK join unexpectedly large: {}",
            i.join_size
        );
    }
}

/// §V-B3: the KeyDep regime hurts LV2SK more than TUPSK (averaged over a few
/// trials with the MLE estimator).
#[test]
fn key_dependence_hurts_lv2sk_more_than_tupsk() {
    let mut lv2_penalty = 0.0;
    let mut tup_penalty = 0.0;
    let trials = 8;
    for t in 0..trials {
        let gen = TrinomialConfig::with_random_target(512, 3.0, 100 + t);
        let data = gen.generate(10_000, 200 + t);
        let config = SketchConfig::new(256, 300 + t);
        for (kind, penalty) in [
            (SketchKind::Lv2sk, &mut lv2_penalty),
            (SketchKind::Tupsk, &mut tup_penalty),
        ] {
            let mut errors = [0.0f64; 2];
            for (slot, key_dist) in [KeyDistribution::KeyInd, KeyDistribution::KeyDep]
                .iter()
                .enumerate()
            {
                let pair = decompose(&data.xs, &data.ys, *key_dist);
                let trial = SketchTrial {
                    kind,
                    config,
                    mode: EstimatorMode::Mle,
                };
                if let Some(outcome) = sketch_estimate(&pair, &trial) {
                    errors[slot] = (outcome.estimate - data.true_mi).powi(2);
                }
            }
            *penalty += errors[1] - errors[0];
        }
    }
    lv2_penalty /= trials as f64;
    tup_penalty /= trials as f64;
    assert!(
        lv2_penalty > tup_penalty - 0.05,
        "KeyDep penalty: LV2SK {lv2_penalty:.3} should exceed TUPSK {tup_penalty:.3}"
    );
}

/// The LV2SK worked example of §IV-B: a sketch that misses the dominant key
/// collapses the entropy of the sample to zero; TUPSK cannot collapse because
/// it samples rows uniformly.
#[test]
fn tupsk_sample_reflects_row_frequencies_on_the_worked_example() {
    let mut keys: Vec<String> = vec!["a", "b", "c", "d", "e"]
        .into_iter()
        .map(String::from)
        .collect();
    keys.extend(std::iter::repeat_with(|| "f".to_owned()).take(95));
    let ys: Vec<i64> = (0..100).collect();
    let train = Table::builder("train")
        .push_str_column("k", keys)
        .push_int_column("y", ys)
        .build()
        .expect("table");

    let cfg = SketchConfig::new(50, 4);
    let sketch = SketchKind::Tupsk
        .build_left(&train, "k", "y", &cfg)
        .expect("sketch");
    // The dominant key must occupy roughly 95% of the TUPSK sample.
    let hasher = cfg.key_hasher();
    let f_hash = Value::from("f").key_hash(&hasher);
    let f_fraction =
        sketch.rows().iter().filter(|r| r.key == f_hash).count() as f64 / sketch.len() as f64;
    assert!(f_fraction > 0.8, "dominant key fraction {f_fraction}");
}

/// Sketch estimates converge toward the truth as the budget grows
/// (the near-√n error decay of §IV-B).
#[test]
fn error_decreases_with_sketch_size() {
    let gen = TrinomialConfig::new(64, 0.45, 0.4);
    let data = gen.generate(20_000, 8);
    let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyInd);

    let mut errors = Vec::new();
    for n in [64usize, 256, 1024, 4096] {
        let mut total = 0.0;
        let reps = 5;
        for seed in 0..reps {
            let trial = SketchTrial {
                kind: SketchKind::Tupsk,
                config: SketchConfig::new(n, seed),
                mode: EstimatorMode::Mle,
            };
            let outcome = sketch_estimate(&pair, &trial).expect("trial");
            total += (outcome.estimate - data.true_mi).abs();
        }
        errors.push(total / reps as f64);
    }
    assert!(
        errors[3] < errors[0],
        "error should shrink from n=64 ({:.3}) to n=4096 ({:.3})",
        errors[0],
        errors[3]
    );
}
