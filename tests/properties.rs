//! Property-based tests (proptest) over the core invariants of the library:
//! estimator invariants, sketch size bounds, join semantics, and the
//! relational substrate.

use joinmi::estimators::knn::{
    kth_nn_distances_1d, kth_nn_distances_1d_scalar, kth_nn_distances_chebyshev,
    kth_nn_distances_chebyshev_bruteforce, kth_nn_distances_chebyshev_scalar,
};
use joinmi::estimators::{mixed_ksg_mi, mle_mi, smoothed_mle_mi};
use joinmi::hash::{KeyHasher, UnitHasher};
use joinmi::par::with_threads;
use joinmi::prelude::*;
use joinmi::sketch::BoundedMinSet;
use joinmi::table::{
    group_by_aggregate, left_outer_join, read_csv_str, write_csv_string, CsvOptions,
};
use proptest::prelude::*;

/// Strategy for small categorical code vectors (paired X/Y of equal length).
fn paired_codes() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (2usize..200).prop_flat_map(|len| {
        (
            proptest::collection::vec(0u32..8, len),
            proptest::collection::vec(0u32..8, len),
        )
    })
}

/// Strategy for heavy-tie mixture coordinate pairs: the feature columns a
/// left join on non-unique keys produces — every value is drawn from a small
/// set of levels plus an optional continuous jitter, so many points coincide
/// exactly (`ρ_i = 0` for entire groups) while others stay distinct.
fn heavy_tie_points() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (8usize..120, 1u32..6, 0u8..2).prop_flat_map(|(len, levels, jitter)| {
        let coord = proptest::collection::vec((0u32..levels, 0u32..1000), len).prop_map(
            move |cells: Vec<(u32, u32)>| {
                cells
                    .into_iter()
                    .map(|(level, noise)| {
                        let base = f64::from(level);
                        if jitter == 1 {
                            base + f64::from(noise % 3) * 0.125
                        } else {
                            base
                        }
                    })
                    .collect::<Vec<f64>>()
            },
        );
        (coord.clone(), coord)
    })
}

/// Strategy for a small keyed table: (keys, values).
fn keyed_rows() -> impl Strategy<Value = Vec<(u8, i32)>> {
    proptest::collection::vec((0u8..40, -1000i32..1000), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- estimator invariants -------------------------------------------

    /// MI is non-negative and symmetric for the plug-in estimator.
    #[test]
    fn mle_mi_is_nonnegative_and_symmetric((x, y) in paired_codes()) {
        let forward = mle_mi(&x, &y).unwrap();
        let backward = mle_mi(&y, &x).unwrap();
        prop_assert!(forward >= 0.0);
        prop_assert!((forward - backward).abs() < 1e-9);
    }

    /// MI is bounded by each marginal entropy: I(X;Y) <= min(H(X), H(Y)).
    #[test]
    fn mle_mi_is_bounded_by_marginal_entropy((x, y) in paired_codes()) {
        let mi = mle_mi(&x, &y).unwrap();
        let hx = joinmi::estimators::mle_entropy(&x).unwrap();
        let hy = joinmi::estimators::mle_entropy(&y).unwrap();
        prop_assert!(mi <= hx.min(hy) + 1e-9, "mi={mi}, hx={hx}, hy={hy}");
    }

    /// MI is invariant under relabeling (bijection) of either variable.
    #[test]
    fn mle_mi_is_invariant_under_relabeling((x, y) in paired_codes()) {
        let relabeled: Vec<u32> = x.iter().map(|&v| 1000 - v).collect();
        let a = mle_mi(&x, &y).unwrap();
        let b = mle_mi(&relabeled, &y).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Laplace smoothing never increases the MI estimate of identical data
    /// and always produces a finite non-negative value.
    #[test]
    fn smoothed_mle_is_finite_and_nonnegative((x, y) in paired_codes()) {
        let smoothed = smoothed_mle_mi(&x, &y, 1.0).unwrap();
        prop_assert!(smoothed.is_finite());
        prop_assert!(smoothed >= 0.0);
    }

    // --- k-NN kernel engine (PR 4) --------------------------------------

    /// The blocked Chebyshev kernel is bit-for-bit equal to both the
    /// pre-refactor scalar expansion and the brute-force reference, for
    /// arbitrary heavy-tie mixture inputs (the `ρ_i = 0` regime of
    /// non-unique joins) and every k up to the sample size.
    #[test]
    fn knn_blocked_chebyshev_matches_oracles_on_heavy_ties((xs, ys) in heavy_tie_points(), k in 1usize..6) {
        // Strategy invariant: len >= 8 > k, so k is always valid.
        let blocked = kth_nn_distances_chebyshev(&xs, &ys, k);
        let scalar = kth_nn_distances_chebyshev_scalar(&xs, &ys, k);
        let brute = kth_nn_distances_chebyshev_bruteforce(&xs, &ys, k);
        for i in 0..xs.len() {
            prop_assert_eq!(blocked[i].to_bits(), scalar[i].to_bits(), "scalar i={}", i);
            prop_assert_eq!(blocked[i].to_bits(), brute[i].to_bits(), "brute i={}", i);
        }
    }

    /// Same for the 1-D window-scan kernel against its greedy scalar oracle.
    #[test]
    fn knn_blocked_1d_matches_scalar_oracle((xs, _ys) in heavy_tie_points(), k in 1usize..6) {
        // Strategy invariant: len >= 8 > k, so k is always valid.
        let blocked = kth_nn_distances_1d(&xs, k);
        let scalar = kth_nn_distances_1d_scalar(&xs, k);
        for i in 0..xs.len() {
            prop_assert_eq!(blocked[i].to_bits(), scalar[i].to_bits(), "i={}", i);
        }
    }

    /// MixedKSG on heavy-tie mixtures (exercising the tie fallback through
    /// the blocked kernel and the parallel accumulation) stays finite,
    /// non-negative, and bit-identical across thread counts.
    #[test]
    fn mixed_ksg_on_heavy_ties_is_finite_and_thread_invariant((xs, ys) in heavy_tie_points()) {
        let seq = with_threads(1, || mixed_ksg_mi(&xs, &ys, 3).unwrap());
        let par = with_threads(4, || mixed_ksg_mi(&xs, &ys, 3).unwrap());
        prop_assert!(seq.is_finite());
        prop_assert!(seq >= 0.0);
        prop_assert_eq!(seq.to_bits(), par.to_bits());
    }

    // --- hashing ---------------------------------------------------------

    /// Unit hashing stays in [0, 1) and is deterministic.
    #[test]
    fn unit_hash_is_deterministic_and_in_range(seed in any::<u64>(), key in any::<u64>()) {
        let h = UnitHasher::new(seed);
        let u = h.unit(key);
        prop_assert!((0.0..1.0).contains(&u));
        prop_assert_eq!(u, UnitHasher::new(seed).unit(key));
    }

    /// Key hashing is injective on realistic small domains (no 64-bit
    /// collisions among a few hundred distinct strings).
    #[test]
    fn key_hashing_has_no_collisions_on_small_domains(n in 1usize..500) {
        let hasher = KeyHasher::default_64();
        let mut digests: Vec<u64> = (0..n).map(|i| hasher.hash_str(&format!("key-{i}")).raw()).collect();
        digests.sort_unstable();
        digests.dedup();
        prop_assert_eq!(digests.len(), n);
    }

    // --- sketches --------------------------------------------------------

    /// The bounded-min-set always returns the k smallest digests.
    #[test]
    fn bounded_min_set_keeps_smallest(mut digests in proptest::collection::vec(any::<u64>(), 1..300), k in 1usize..50) {
        let mut set = BoundedMinSet::new(k);
        for &d in &digests {
            set.offer(d, d);
        }
        let kept: Vec<u64> = set.into_sorted().into_iter().map(|(d, _)| d).collect();
        digests.sort_unstable();
        digests.dedup();
        let expected: Vec<u64> = digests.into_iter().take(k).collect();
        // Duplicate digests may displace one another, so compare as sets of
        // values bounded by the k-th smallest distinct digest.
        prop_assert!(kept.len() <= k);
        if let (Some(&kept_max), Some(&exp_max)) = (kept.last(), expected.last()) {
            prop_assert!(kept_max <= exp_max);
        }
    }

    /// Every sketch kind respects its documented size bound and never stores
    /// NULL-keyed rows, for arbitrary keyed tables.
    #[test]
    fn sketch_size_bounds_hold(rows in keyed_rows(), n in 1usize..64, seed in 0u64..1000) {
        let keys: Vec<String> = rows.iter().map(|(k, _)| format!("k{k}")).collect();
        let values: Vec<i64> = rows.iter().map(|(_, v)| i64::from(*v)).collect();
        let table = Table::builder("t")
            .push_str_column("k", keys)
            .push_int_column("v", values)
            .build()
            .unwrap();
        let cfg = SketchConfig::new(n, seed);
        for kind in SketchKind::ALL {
            let left = kind.build_left(&table, "k", "v", &cfg).unwrap();
            let bound = match kind {
                SketchKind::Lv2sk | SketchKind::Prisk => 2 * n,
                SketchKind::Indsk => table.num_rows(), // Bernoulli: bounded by the table
                _ => n,
            };
            prop_assert!(left.len() <= bound, "{}: {} > {}", kind, left.len(), bound);

            let right = kind.build_right(&table, "k", "v", Aggregation::Avg, &cfg).unwrap();
            let right_bound = match kind {
                // Bernoulli sampling has expected size n but is only bounded
                // by the number of distinct keys.
                SketchKind::Indsk => right.source_distinct_keys(),
                _ => n,
            };
            prop_assert!(right.len() <= right_bound.max(1), "{}: right {} > {}", kind, right.len(), right_bound);
            prop_assert_eq!(right.len(), right.rows().iter().map(|r| r.key.raw()).collect::<std::collections::HashSet<_>>().len());
        }
    }

    /// The sketch join is always a subset of the exact join: every recovered
    /// pair has a key present in both tables, and the join size never exceeds
    /// the smaller sketch.
    #[test]
    fn sketch_join_is_bounded(rows in keyed_rows(), n in 4usize..64) {
        let keys: Vec<String> = rows.iter().map(|(k, _)| format!("k{k}")).collect();
        let values: Vec<i64> = rows.iter().map(|(_, v)| i64::from(*v)).collect();
        let table = Table::builder("t")
            .push_str_column("k", keys)
            .push_int_column("v", values)
            .build()
            .unwrap();
        let cfg = SketchConfig::new(n, 7);
        let left = SketchKind::Tupsk.build_left(&table, "k", "v", &cfg).unwrap();
        let right = SketchKind::Tupsk.build_right(&table, "k", "v", Aggregation::Avg, &cfg).unwrap();
        let joined = left.join(&right);
        prop_assert!(joined.len() <= left.len());
    }

    // --- relational substrate --------------------------------------------

    /// A left-outer join preserves the left row count, for arbitrary tables.
    #[test]
    fn left_join_preserves_row_count(left_rows in keyed_rows(), right_rows in keyed_rows()) {
        let train = Table::builder("l")
            .push_str_column("k", left_rows.iter().map(|(k, _)| format!("k{k}")).collect::<Vec<_>>())
            .push_int_column("y", left_rows.iter().map(|(_, v)| i64::from(*v)).collect::<Vec<_>>())
            .build()
            .unwrap();
        let cand = Table::builder("r")
            .push_str_column("k", right_rows.iter().map(|(k, _)| format!("k{k}")).collect::<Vec<_>>())
            .push_int_column("z", right_rows.iter().map(|(_, v)| i64::from(*v)).collect::<Vec<_>>())
            .build()
            .unwrap();
        let aggregated = group_by_aggregate(&cand, "k", "z", Aggregation::Avg).unwrap();
        let joined = left_outer_join(&train, "k", &aggregated, "k").unwrap();
        prop_assert_eq!(joined.table.num_rows(), train.num_rows());
        prop_assert!(joined.matched_rows <= train.num_rows());
    }

    /// AVG / MIN / MAX aggregation results always lie within the group range.
    #[test]
    fn aggregation_stays_within_range(values in proptest::collection::vec(-1000i64..1000, 1..50)) {
        let group: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        let min = *values.iter().min().unwrap() as f64;
        let max = *values.iter().max().unwrap() as f64;
        let avg = Aggregation::Avg.apply(&group).as_f64().unwrap();
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
        prop_assert_eq!(Aggregation::Min.apply(&group), Value::Int(min as i64));
        prop_assert_eq!(Aggregation::Max.apply(&group), Value::Int(max as i64));
        prop_assert_eq!(Aggregation::Count.apply(&group), Value::Int(values.len() as i64));
    }

    /// CSV writing followed by reading reproduces the table contents.
    #[test]
    fn csv_round_trip(rows in keyed_rows()) {
        let table = Table::builder("t")
            .push_str_column("k", rows.iter().map(|(k, _)| format!("k{k}")).collect::<Vec<_>>())
            .push_int_column("v", rows.iter().map(|(_, v)| i64::from(*v)).collect::<Vec<_>>())
            .build()
            .unwrap();
        let csv = write_csv_string(&table);
        let reread = read_csv_str("t2", &csv, &CsvOptions::default()).unwrap();
        prop_assert_eq!(reread.num_rows(), table.num_rows());
        for i in 0..table.num_rows() {
            prop_assert_eq!(reread.value(i, "v").unwrap(), table.value(i, "v").unwrap());
            prop_assert_eq!(reread.value(i, "k").unwrap(), table.value(i, "k").unwrap());
        }
    }
}
