#!/usr/bin/env bash
# Dead-link check for the repo's markdown docs.
#
# Scans every tracked *.md file for relative markdown links — `[text](path)`,
# optionally with a `#fragment` — and fails if the target file or directory
# does not exist. External links (http/https/mailto) and pure in-page
# fragments (`#section`) are skipped: this gate is about files moving out
# from under the docs, which is the failure mode a refactor-heavy repo
# actually hits.
#
# Usage: scripts/check_doc_links.sh   (from the repo root; CI's docs job runs it)
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
checked=0

# Tracked markdown only: temp files and build output are not docs.
files=$(git ls-files '*.md')

for file in $files; do
    dir=$(dirname "$file")
    # One inline link per line: `[text](target)`. Reference-style links and
    # autolinks are rare here; inline links are what the docs use.
    links=$(grep -oE '\[[^][]*\]\([^()[:space:]]+\)' "$file" 2>/dev/null |
        sed -E 's/^\[[^][]*\]\(//; s/\)$//') || true
    for link in $links; do
        case "$link" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        # Relative to the containing file, like a markdown renderer resolves it.
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "dead link in $file: ($link)" >&2
            status=1
        fi
        checked=$((checked + 1))
    done
done

echo "check_doc_links: $checked relative link(s) checked across $(echo "$files" | wc -w) markdown file(s)"
exit $status
