#!/usr/bin/env bash
# Dead-link check for the repo's markdown docs.
#
# Scans every tracked *.md file for relative markdown links — `[text](path)`,
# optionally with a `#fragment` — and fails if the target file or directory
# does not exist, or if a `#fragment` names no heading in the target file.
# Fragments are resolved the way GitHub slugs headings: lowercase, punctuation
# stripped (keeping alphanumerics, spaces, hyphens, underscores), spaces to
# hyphens, and `-N` suffixes for duplicate headings. External links
# (http/https/mailto) are skipped: this gate is about files and sections
# moving out from under the docs, which is the failure mode a refactor-heavy
# repo actually hits.
#
# Usage: scripts/check_doc_links.sh   (from the repo root; CI's docs job runs it)
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
checked=0
anchors_checked=0

# Tracked markdown only: temp files and build output are not docs.
files=$(git ls-files '*.md')

# GitHub-style heading slugs of a markdown file, one per line. Headings
# inside fenced code blocks do not anchor; duplicate headings get -1, -2, …
heading_slugs() {
    awk '
        /^(```|~~~)/ { fence = !fence; next }
        fence { next }
        /^#+[ \t]/ {
            depth = match($0, /[^#]/) - 1
            if (depth < 1 || depth > 6) next
            sub(/^#+[ \t]+/, "")
            sub(/[ \t]+#*[ \t]*$/, "")
            slug = tolower($0)
            gsub(/`/, "", slug)
            gsub(/[^a-z0-9 _-]/, "", slug)
            gsub(/ /, "-", slug)
            if (seen[slug]++) slug = slug "-" (seen[slug] - 1)
            print slug
        }
    ' "$1"
}

for file in $files; do
    dir=$(dirname "$file")
    # One inline link per line: `[text](target)`. Reference-style links and
    # autolinks are rare here; inline links are what the docs use.
    links=$(grep -oE '\[[^][]*\]\([^()[:space:]]+\)' "$file" 2>/dev/null |
        sed -E 's/^\[[^][]*\]\(//; s/\)$//') || true
    for link in $links; do
        case "$link" in
        http://* | https://* | mailto:*) continue ;;
        esac
        target=${link%%#*}
        fragment=""
        case "$link" in
        *\#*) fragment=${link#*#} ;;
        esac

        # Resolve the target file: an in-page fragment anchors the containing
        # file; a path resolves relative to it (or the repo root).
        if [ -z "$target" ]; then
            resolved=$file
        elif [ -e "$dir/$target" ]; then
            resolved="$dir/$target"
        elif [ -e "$target" ]; then
            resolved=$target
        else
            echo "dead link in $file: ($link)" >&2
            status=1
            checked=$((checked + 1))
            continue
        fi
        checked=$((checked + 1))

        # Validate the fragment against the target's heading slugs.
        if [ -n "$fragment" ] && [ -f "$resolved" ]; then
            case "$resolved" in
            *.md)
                if ! heading_slugs "$resolved" | grep -qxF "$fragment"; then
                    echo "dead anchor in $file: ($link) — no heading slugs to #$fragment in $resolved" >&2
                    status=1
                fi
                anchors_checked=$((anchors_checked + 1))
                ;;
            esac
        fi
    done
done

echo "check_doc_links: $checked relative link(s) ($anchors_checked anchor(s)) checked across $(echo "$files" | wc -w) markdown file(s)"
exit $status
