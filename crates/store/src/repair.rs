//! Torn-tail repair for append-extended store files.
//!
//! An appendable artifact (today: the v2 repository format) is a **base
//! payload** followed by zero or more **append groups**, each written by a
//! single `append_to` call. A writer that crashes mid-group leaves a torn
//! tail on disk, and the strict open path refuses the whole file with a
//! typed error — deliberately: open cannot distinguish "crash mid-append"
//! from "bit rot somewhere in the tail", so it never silently drops bytes.
//!
//! This module is the explicit repair step the operator (or a serving
//! daemon, at shard open) runs instead: [`scan_recoverable`] walks the
//! section stream, finds the last **durable boundary** — the end of the base
//! payload or the end of a complete append group — and reports exactly what
//! a truncation to that boundary would drop. [`recover_truncated`] applies
//! it, shrinking the file in place with `File::set_len` and returning the
//! same [`RecoveryReport`]. Repair never rewrites surviving bytes and never
//! invents data: the result is always a byte-prefix of the original file,
//! representing a prefix of its append history.
//!
//! The walker is format-agnostic: it understands the header and the section
//! framing (tag, length, checksum) and is told the group grammar — which tag
//! opens a group and which closes it — by the caller that knows the artifact
//! layout (`joinmi_discovery::persist` for repositories). A damaged *base*
//! payload is not recoverable and surfaces as the underlying scan error;
//! only a tail after at least one durable boundary is ever dropped.

use std::io::Read;
use std::path::Path;

use crate::error::{Result, StoreError};
use crate::format::{read_header, ArtifactKind};
use crate::section::scan_section_any;
use crate::wire::Reader;

/// The two tags that delimit one append group within a section stream.
///
/// A group is `start_tag`, any number of other sections, then `end_tag`;
/// groups do not nest. Everything before the first `start_tag` is the base
/// payload.
#[derive(Debug, Clone, Copy)]
pub struct GroupGrammar {
    /// Tag of the section that opens an append group.
    pub start_tag: u8,
    /// Tag of the section that closes an append group (the group's commit
    /// point: once it is fully on disk, the group is durable).
    pub end_tag: u8,
}

/// What a repair scan found, and what [`recover_truncated`] did with it.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Total length of the scanned file, in bytes.
    pub file_len: u64,
    /// Length of the valid prefix ending at the last durable boundary. Equal
    /// to [`RecoveryReport::file_len`] when the file needs no repair.
    pub recovered_len: u64,
    /// Number of complete append groups inside the valid prefix.
    pub complete_groups: usize,
    /// Bytes past the last durable boundary (`file_len - recovered_len`).
    pub dropped_bytes: u64,
    /// Whole valid sections inside the dropped tail (the torn group's
    /// already-written sections; the remainder of the tail is a partial
    /// frame or damaged payload).
    pub dropped_sections: usize,
    /// The scan error that terminated the walk, rendered for the report;
    /// `None` when the tail ended cleanly at a section boundary but
    /// mid-group (all sections whole, group incomplete).
    pub torn_error: Option<String>,
}

impl RecoveryReport {
    /// `true` when the file holds a torn tail (repair would, or did, drop
    /// bytes); `false` when the file is already fully valid.
    #[must_use]
    pub fn is_torn(&self) -> bool {
        self.dropped_bytes > 0
    }
}

/// Scans an in-memory copy of an appendable artifact and locates the last
/// durable boundary without modifying anything.
///
/// Returns a [`RecoveryReport`] describing the valid prefix. Errors:
///
/// * a damaged header, or damage inside the **base** payload (before any
///   durable boundary exists), is unrecoverable and returns the underlying
///   scan error — repair only ever drops an append tail, never base data;
/// * a file whose artifact kind differs from `expected` is rejected.
///
/// The scan is purely structural (framing + checksums). Callers that can
/// validate payload semantics should verify the recovered prefix actually
/// opens before truncating the file — `joinmi_discovery`'s
/// `TableRepository::recover_truncated` does exactly that.
pub fn scan_recoverable(
    buf: &[u8],
    expected: ArtifactKind,
    grammar: GroupGrammar,
) -> Result<RecoveryReport> {
    let mut header = Reader::new(buf);
    read_header(&mut header, expected)?;
    let mut pos = 8usize;

    // `boundary` tracks the byte offset of the last durable point: end of
    // the base payload once the first group-start tag is seen, then the end
    // of each completed group. While the base is still streaming by there is
    // no boundary, and any damage is unrecoverable.
    let mut boundary: Option<usize> = None;
    let mut complete_groups = 0usize;
    let mut in_group = false;
    let mut tail_sections = 0usize;
    let mut torn_error: Option<String> = None;

    while pos < buf.len() {
        let section_start = pos;
        match scan_section_any(buf, &mut pos) {
            Ok((tag, _payload)) => {
                if tag == grammar.start_tag {
                    if !in_group && boundary.is_none() {
                        // First group: the base payload ends where this
                        // section begins.
                        boundary = Some(section_start);
                    }
                    in_group = true;
                    tail_sections += 1;
                } else if tag == grammar.end_tag && in_group {
                    // Commit point: everything up to and including this
                    // section is durable.
                    in_group = false;
                    boundary = Some(pos);
                    complete_groups += 1;
                    tail_sections = 0;
                } else if in_group {
                    tail_sections += 1;
                }
                // Sections before the first group start are base payload and
                // never counted as droppable tail.
            }
            Err(e) => {
                // A torn section whose surviving tag byte is the group-start
                // tag marks a durable boundary right before it: the base (or
                // the previous group) completed, and only the new group is
                // incomplete. Without that tag there is no way to tell a
                // torn append from damage in the base payload, so the walk
                // stays conservative.
                if boundary.is_none() && buf.get(section_start) == Some(&grammar.start_tag) {
                    boundary = Some(section_start);
                }
                if boundary.is_none() {
                    // Damage inside the base payload: not a torn append.
                    return Err(e);
                }
                torn_error = Some(e.to_string());
                break;
            }
        }
    }

    let file_len = buf.len() as u64;
    let recovered_len = if !in_group && torn_error.is_none() {
        // Clean walk to EOF with no group open: the whole file is valid.
        file_len
    } else {
        // Torn tail (mid-group EOF or scan error) after a durable boundary.
        // A boundary always exists here: the error path above returns early
        // without one, and entering a group records one first.
        boundary.ok_or_else(|| {
            StoreError::corrupt("file ends inside the base payload; nothing to recover")
        })? as u64
    };
    Ok(RecoveryReport {
        file_len,
        recovered_len,
        complete_groups,
        dropped_bytes: file_len - recovered_len,
        dropped_sections: tail_sections,
        torn_error,
    })
}

/// Repairs a torn append tail in place: scans the file with
/// [`scan_recoverable`] and, when a torn tail is found, truncates the file
/// to the last durable boundary with `File::set_len`.
///
/// A no-op (no write at all) when the file is already fully valid. Returns
/// the [`RecoveryReport`] either way; unrecoverable damage (header or base
/// payload) is a typed error and the file is left untouched.
pub fn recover_truncated<P: AsRef<Path>>(
    path: P,
    expected: ArtifactKind,
    grammar: GroupGrammar,
) -> Result<RecoveryReport> {
    let mut buf = Vec::new();
    std::fs::File::open(&path)?.read_to_end(&mut buf)?;
    let report = scan_recoverable(&buf, expected, grammar)?;
    if report.is_torn() {
        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(report.recovered_len)?;
        file.sync_all()?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::write_header;
    use crate::section::write_section;
    use crate::wire::Writer;

    const GRAMMAR: GroupGrammar = GroupGrammar {
        start_tag: 0x15,
        end_tag: 0x17,
    };

    /// A synthetic artifact: 3 base sections, then `groups` append groups of
    /// (start, middle, end). Returns the bytes and the durable boundaries
    /// (end of base, end of each group).
    fn artifact(groups: usize) -> (Vec<u8>, Vec<usize>) {
        let mut buf = Vec::new();
        {
            let mut wr = Writer::new(&mut buf);
            write_header(&mut wr, ArtifactKind::Repository).unwrap();
            for tag in [0x10u8, 0x11, 0x12] {
                write_section(&mut wr, tag, &[tag; 9]).unwrap();
            }
        }
        let mut boundaries = vec![buf.len()];
        for g in 0..groups {
            {
                let mut wr = Writer::new(&mut buf);
                write_section(&mut wr, GRAMMAR.start_tag, &[g as u8; 4]).unwrap();
                write_section(&mut wr, 0x16, &[g as u8; 12]).unwrap();
                write_section(&mut wr, GRAMMAR.end_tag, &[g as u8; 6]).unwrap();
            }
            boundaries.push(buf.len());
        }
        (buf, boundaries)
    }

    #[test]
    fn valid_files_need_no_repair() {
        for groups in [0, 1, 3] {
            let (buf, boundaries) = artifact(groups);
            let report = scan_recoverable(&buf, ArtifactKind::Repository, GRAMMAR).unwrap();
            assert!(!report.is_torn());
            assert_eq!(report.recovered_len, buf.len() as u64);
            assert_eq!(report.complete_groups, groups);
            assert_eq!(report.dropped_bytes, 0);
            let _ = boundaries;
        }
    }

    #[test]
    fn every_torn_offset_recovers_to_the_last_boundary() {
        let (buf, boundaries) = artifact(2);
        let base_end = boundaries[0];
        for cut in base_end + 1..buf.len() {
            let report = scan_recoverable(&buf[..cut], ArtifactKind::Repository, GRAMMAR).unwrap();
            let expected = *boundaries.iter().rfind(|&&b| b <= cut).unwrap() as u64;
            assert_eq!(report.recovered_len, expected, "cut at {cut}");
            assert_eq!(report.is_torn(), (cut as u64) != expected, "cut at {cut}");
        }
    }

    #[test]
    fn damage_in_the_base_is_unrecoverable() {
        let (buf, boundaries) = artifact(1);
        // Truncation inside the base payload: no boundary yet.
        assert!(
            scan_recoverable(&buf[..boundaries[0] - 3], ArtifactKind::Repository, GRAMMAR).is_err()
        );
        // A flipped bit inside a base section is damage, not a torn tail.
        let mut flipped = buf.clone();
        flipped[20] ^= 0x01;
        assert!(scan_recoverable(&flipped, ArtifactKind::Repository, GRAMMAR).is_err());
    }

    #[test]
    fn flipped_bit_inside_a_group_truncates_to_the_previous_boundary() {
        let (buf, boundaries) = artifact(2);
        // Damage the second group's payload: recovery keeps base + group 1.
        let target = boundaries[1] + (boundaries[2] - boundaries[1]) / 2;
        let mut flipped = buf.clone();
        flipped[target] ^= 0x40;
        let report = scan_recoverable(&flipped, ArtifactKind::Repository, GRAMMAR).unwrap();
        assert!(report.is_torn());
        assert_eq!(report.recovered_len, boundaries[1] as u64);
        assert_eq!(report.complete_groups, 1);
        assert!(report.torn_error.is_some());
    }

    #[test]
    fn mid_group_eof_at_a_section_boundary_is_still_torn() {
        // All sections whole, but the last group never reached its end tag.
        let (buf, boundaries) = artifact(1);
        let mut extended = buf.clone();
        {
            let mut wr = Writer::new(&mut extended);
            write_section(&mut wr, GRAMMAR.start_tag, &[9; 4]).unwrap();
            write_section(&mut wr, 0x16, &[9; 12]).unwrap();
        }
        let report = scan_recoverable(&extended, ArtifactKind::Repository, GRAMMAR).unwrap();
        assert!(report.is_torn());
        assert_eq!(report.recovered_len, *boundaries.last().unwrap() as u64);
        assert_eq!(report.dropped_sections, 2);
        assert!(report.torn_error.is_none());
    }

    #[test]
    fn recover_truncated_shrinks_the_file_in_place() {
        let (buf, boundaries) = artifact(2);
        let path = std::env::temp_dir().join(format!("joinmi-repair-{}.jmi", std::process::id()));
        // Torn mid-second-group: keep base + group 1.
        let cut = boundaries[1] + 5;
        std::fs::write(&path, &buf[..cut]).unwrap();
        let report = recover_truncated(&path, ArtifactKind::Repository, GRAMMAR).unwrap();
        assert!(report.is_torn());
        let repaired = std::fs::read(&path).unwrap();
        assert_eq!(repaired, &buf[..boundaries[1]]);
        // Idempotent: a second run is a no-op.
        let again = recover_truncated(&path, ArtifactKind::Repository, GRAMMAR).unwrap();
        assert!(!again.is_torn());
        assert_eq!(std::fs::read(&path).unwrap(), &buf[..boundaries[1]]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_artifact_kind_is_rejected() {
        let (buf, _) = artifact(1);
        assert!(matches!(
            scan_recoverable(&buf, ArtifactKind::Sketch, GRAMMAR),
            Err(StoreError::WrongArtifact { .. })
        ));
    }
}
