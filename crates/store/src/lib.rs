//! Versioned on-disk binary format for `joinmi` sketches and repositories.
//!
//! The paper's efficiency claim rests on sketches being built **once**,
//! offline, and reused across many online queries. This crate supplies the
//! durable half of that split: a compact, versioned, checksummed binary
//! format with no external serialization dependencies (the workspace builds
//! offline; everything is hand-rolled over `std::io`).
//!
//! # File layout
//!
//! ```text
//! file     = header, section*
//! header   = magic b"JMIS" | format version (u16 LE) | artifact kind | reserved
//! section  = tag (u8) | payload length (u64 LE) | checksum (u64 LE) | payload
//! ```
//!
//! * All integers are little-endian; floats are IEEE-754 bit patterns (exact
//!   round-trip, including NaN payloads).
//! * Each section's payload carries a 64-bit MurmurHash3 checksum (reusing
//!   [`joinmi_hash`]) verified **before** any structural decoding.
//! * Readers reject wrong magic, future format versions, wrong artifact
//!   kinds, truncation, and checksum mismatches with typed [`StoreError`]s —
//!   decoding untrusted bytes never panics.
//!
//! # The v2 append-group layout
//!
//! Format v2 made repository artifacts **appendable**: after the base
//! payload (meta, profiles, index, candidates with their incremental-builder
//! state), a writer may extend the file in place with **append groups**,
//! never rewriting an existing byte:
//!
//! ```text
//! v2 repository = header, base payload, append group*
//! base payload  = REPO_META, PROFILES, INDEX,
//!                 (CANDIDATE, CANDIDATE_STATE)*          one pair per candidate
//! append group  = APPEND_META                            update count + refreshed profiles
//!                 (CANDIDATE_UPDATE, CANDIDATE_STATE)*   refreshed sketch + builder state
//!                 INDEX_DELTA                            ordered postings deltas
//! ```
//!
//! Every section of a group is checksummed like any other, and the group's
//! closing `INDEX_DELTA` section is its **commit point**: a reader replays a
//! group only when the whole group is on disk. A writer crash mid-group
//! therefore leaves the base payload and all previously committed groups
//! byte-identical, and the torn tail surfaces at the next open as a typed
//! [`StoreError`] — the strict read path is never silently tolerant, because
//! it cannot distinguish a torn append from bit rot in the tail. The
//! explicit repair step lives in [`repair`]: [`repair::recover_truncated`]
//! drops an incomplete trailing group at a durable boundary and reports
//! exactly what it dropped. v1 readers reject v2 files cleanly via the
//! header version; v2 readers still accept v1 files (which simply carry no
//! builder state and no groups).
//!
//! The concrete artifact encodings live next to the types they persist:
//! sketch columns in `joinmi_sketch::persist`, repositories in
//! `joinmi_discovery::persist` (which also wraps the repair API with
//! repository-aware verification). This crate only owns the format
//! plumbing, so it sits below both in the dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod format;
pub mod repair;
pub mod section;
pub mod wire;

pub use error::{Result, StoreError};
pub use fault::{FaultAction, FaultKind, FaultPlan};
pub use format::{
    read_header, write_header, write_header_with_version, ArtifactKind, FORMAT_VERSION,
    FORMAT_VERSION_V1, MAGIC,
};
pub use repair::{recover_truncated, scan_recoverable, GroupGrammar, RecoveryReport};
pub use section::{
    checksum, read_section, scan_section, scan_section_any, write_section, SectionBuilder,
};
pub use wire::{Reader, SliceReader, Writer};
