//! Versioned on-disk binary format for `joinmi` sketches and repositories.
//!
//! The paper's efficiency claim rests on sketches being built **once**,
//! offline, and reused across many online queries. This crate supplies the
//! durable half of that split: a compact, versioned, checksummed binary
//! format with no external serialization dependencies (the workspace builds
//! offline; everything is hand-rolled over `std::io`).
//!
//! # File layout
//!
//! ```text
//! file     = header, section*
//! header   = magic b"JMIS" | format version (u16 LE) | artifact kind | reserved
//! section  = tag (u8) | payload length (u64 LE) | checksum (u64 LE) | payload
//! ```
//!
//! * All integers are little-endian; floats are IEEE-754 bit patterns (exact
//!   round-trip, including NaN payloads).
//! * Each section's payload carries a 64-bit MurmurHash3 checksum (reusing
//!   [`joinmi_hash`]) verified **before** any structural decoding.
//! * Readers reject wrong magic, future format versions, wrong artifact
//!   kinds, truncation, and checksum mismatches with typed [`StoreError`]s —
//!   decoding untrusted bytes never panics.
//!
//! The concrete artifact encodings live next to the types they persist:
//! sketch columns in `joinmi_sketch::persist`, repositories in
//! `joinmi_discovery::persist`. This crate only owns the format plumbing, so
//! it sits below both in the dependency graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod section;
pub mod wire;

pub use error::{Result, StoreError};
pub use format::{
    read_header, write_header, write_header_with_version, ArtifactKind, FORMAT_VERSION,
    FORMAT_VERSION_V1, MAGIC,
};
pub use section::{checksum, read_section, scan_section, write_section, SectionBuilder};
pub use wire::{Reader, SliceReader, Writer};
