//! File header: magic, format version, artifact kind.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"JMIS"
//! 4       2     format version (u16 LE)
//! 6       1     artifact kind tag
//! 7       1     reserved (must be 0)
//! ```
//!
//! The version is bumped on any incompatible layout change; readers reject
//! files with a version greater than [`FORMAT_VERSION`] with a typed
//! [`StoreError::UnsupportedVersion`] so an old binary never misreads a new
//! file.

use std::io::{Read, Write};

use crate::error::{Result, StoreError};
use crate::wire::{Reader, Writer};

/// Magic bytes identifying a `joinmi` store file.
pub const MAGIC: [u8; 4] = *b"JMIS";

/// Current (highest understood) format version.
///
/// * **v1** — the original repository layout: REPO_META, PROFILES, INDEX,
///   one CANDIDATE section per candidate, end of file.
/// * **v2** — the appendable layout: every CANDIDATE is followed by a
///   CANDIDATE_STATE section carrying its incremental-builder state, and the
///   base payload may be followed by append groups (APPEND_META, updated
///   candidates, INDEX_DELTA) written by `TableRepository::append_to`
///   without rewriting the file. v1 readers reject v2 files cleanly with
///   [`StoreError::UnsupportedVersion`]; v2 readers still accept v1 files
///   (whose candidates are simply not appendable).
/// * **v3** — the compactable layout: REPO_META gains the per-column
///   distinct-sketch capacity and a flags byte (bit 0 = **sealed**), a
///   FEATURE_DISTINCT section after PROFILES carries one bounded KMV
///   distinct sketch per profiled column, and every APPEND_META payload
///   carries the refreshed sketches alongside the refreshed profiles.
///   Sealed files are flat (no append groups, no builder state) and reject
///   appends with [`StoreError::Sealed`]. Earlier readers reject v3 files
///   via the version check; v3 readers still accept v1 and v2 files.
///
/// The full byte-level specification lives in `docs/FORMAT.md`.
pub const FORMAT_VERSION: u16 = 3;

/// The last pre-append format version (see [`FORMAT_VERSION`]).
pub const FORMAT_VERSION_V1: u16 = 1;

/// The last pre-compaction format version — appendable, but without
/// per-column distinct sketches or the sealed flag (see [`FORMAT_VERSION`]).
pub const FORMAT_VERSION_V2: u16 = 2;

/// What a store file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A single serialized column sketch.
    Sketch,
    /// A full table repository: config, profiles, index postings, candidates.
    Repository,
}

impl ArtifactKind {
    /// The on-disk tag byte.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Self::Sketch => 1,
            Self::Repository => 2,
        }
    }

    /// Decodes a tag byte.
    pub fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(Self::Sketch),
            2 => Ok(Self::Repository),
            other => Err(StoreError::corrupt(format!(
                "unknown artifact kind tag {other}"
            ))),
        }
    }
}

/// Writes the 8-byte file header at the current [`FORMAT_VERSION`].
pub fn write_header<W: Write>(w: &mut Writer<W>, kind: ArtifactKind) -> Result<()> {
    write_header_with_version(w, kind, FORMAT_VERSION)
}

/// Writes the 8-byte file header with an explicit version — for artifact
/// kinds whose wire format did not change in a bump (standalone sketches are
/// still written as v1 so pre-v2 readers keep reading them).
pub fn write_header_with_version<W: Write>(
    w: &mut Writer<W>,
    kind: ArtifactKind,
    version: u16,
) -> Result<()> {
    debug_assert!((1..=FORMAT_VERSION).contains(&version));
    w.write_raw(&MAGIC)?;
    w.write_u16(version)?;
    w.write_u8(kind.tag())?;
    w.write_u8(0) // reserved
}

/// Reads and validates the file header, checking magic, version, and that the
/// file holds the expected artifact kind.
pub fn read_header<R: Read>(r: &mut Reader<R>, expected: ArtifactKind) -> Result<u16> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic, "file header magic")?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = r.read_u16("file header version")?;
    if version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind_tag = r.read_u8("file header artifact kind")?;
    let kind = ArtifactKind::from_tag(kind_tag)?;
    if kind != expected {
        return Err(StoreError::WrongArtifact {
            expected: expected.tag(),
            found: kind_tag,
        });
    }
    let _reserved = r.read_u8("file header reserved byte")?;
    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_bytes(kind: ArtifactKind) -> Vec<u8> {
        let mut w = Writer::new(Vec::new());
        write_header(&mut w, kind).unwrap();
        w.into_inner()
    }

    #[test]
    fn header_round_trips() {
        for kind in [ArtifactKind::Sketch, ArtifactKind::Repository] {
            let bytes = header_bytes(kind);
            assert_eq!(bytes.len(), 8);
            let mut r = Reader::new(bytes.as_slice());
            assert_eq!(read_header(&mut r, kind).unwrap(), FORMAT_VERSION);
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = header_bytes(ArtifactKind::Sketch);
        bytes[0] = b'X';
        let mut r = Reader::new(bytes.as_slice());
        assert!(matches!(
            read_header(&mut r, ArtifactKind::Sketch),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = header_bytes(ArtifactKind::Sketch);
        bytes[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let mut r = Reader::new(bytes.as_slice());
        match read_header(&mut r, ArtifactKind::Sketch) {
            Err(StoreError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn artifact_kind_mismatch_is_rejected() {
        let bytes = header_bytes(ArtifactKind::Sketch);
        let mut r = Reader::new(bytes.as_slice());
        assert!(matches!(
            read_header(&mut r, ArtifactKind::Repository),
            Err(StoreError::WrongArtifact { .. })
        ));
    }

    #[test]
    fn truncated_header_is_typed() {
        let bytes = header_bytes(ArtifactKind::Sketch);
        let mut r = Reader::new(&bytes[..3]);
        assert!(matches!(
            read_header(&mut r, ArtifactKind::Sketch),
            Err(StoreError::Truncated { .. })
        ));
    }
}
