//! Checksummed section framing.
//!
//! After the file header, a store artifact is a sequence of sections:
//!
//! ```text
//! section = tag (u8) | payload length (u64 LE) | checksum (u64 LE) | payload
//! ```
//!
//! The checksum is the low 64 bits of MurmurHash3 x64/128 over the payload
//! (reusing [`joinmi_hash::murmur3_x64_128`] rather than pulling in a CRC
//! dependency), salted with a fixed seed so a section of zeros does not
//! checksum to zero. Readers verify the checksum before any payload decoding,
//! so structural decoders only ever run over integrity-checked bytes.

use std::io::{Read, Write};

use joinmi_hash::murmur3_x64_128;

use crate::error::{Result, StoreError};
use crate::wire::{Reader, Writer};

/// Seed for the section checksum hash.
const CHECKSUM_SEED: u64 = 0x6A6D_6931_5345_4354; // "jmi1SECT"

/// Computes the checksum of a section payload.
#[must_use]
pub fn checksum(payload: &[u8]) -> u64 {
    murmur3_x64_128(payload, CHECKSUM_SEED).0
}

/// Writes one framed section: tag, length, checksum, payload.
pub fn write_section<W: Write>(w: &mut Writer<W>, tag: u8, payload: &[u8]) -> Result<()> {
    w.write_u8(tag)?;
    w.write_len(payload.len())?;
    w.write_u64(checksum(payload))?;
    w.write_raw(payload)
}

/// A convenience builder: encode a section payload into an in-memory buffer
/// with the full [`Writer`] API, then frame-and-flush it in one call.
#[derive(Debug)]
pub struct SectionBuilder {
    payload: Writer<Vec<u8>>,
}

impl Default for SectionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SectionBuilder {
    /// Creates an empty section payload.
    #[must_use]
    pub fn new() -> Self {
        Self {
            payload: Writer::new(Vec::new()),
        }
    }

    /// The payload writer.
    pub fn writer(&mut self) -> &mut Writer<Vec<u8>> {
        &mut self.payload
    }

    /// Frames the accumulated payload under `tag` and writes it to `out`.
    pub fn finish<W: Write>(self, tag: u8, out: &mut Writer<W>) -> Result<()> {
        write_section(out, tag, &self.payload.into_inner())
    }
}

/// Reads one framed section, requiring `expected_tag`, verifying the checksum
/// and returning the payload bytes.
pub fn read_section<R: Read>(r: &mut Reader<R>, expected_tag: u8) -> Result<Vec<u8>> {
    let tag = r.read_u8("section tag")?;
    if tag != expected_tag {
        return Err(StoreError::UnexpectedSection {
            expected: expected_tag,
            found: tag,
        });
    }
    let len = r.read_len("section length")?;
    let stored = r.read_u64("section checksum")?;
    let payload = r.read_bytes(len, "section payload")?;
    let actual = checksum(&payload);
    if actual != stored {
        return Err(StoreError::ChecksumMismatch {
            section: tag,
            expected: stored,
            actual,
        });
    }
    Ok(payload)
}

/// Walks one framed section inside an in-memory buffer without copying the
/// payload: verifies the tag and checksum, advances `pos` past the section,
/// and returns the payload's byte range within `buf`.
///
/// This is the "mmap-like" read path: the whole file sits in one buffer and
/// consumers decode payload slices lazily, on first access.
pub fn scan_section(
    buf: &[u8],
    pos: &mut usize,
    expected_tag: u8,
) -> Result<std::ops::Range<usize>> {
    let (tag, range) = scan_section_any(buf, pos)?;
    if tag != expected_tag {
        return Err(StoreError::UnexpectedSection {
            expected: expected_tag,
            found: tag,
        });
    }
    Ok(range)
}

/// Like [`scan_section`], but accepts any tag and returns it alongside the
/// payload range. This is the walker used by tag-driven consumers — append
/// groups whose section sequence depends on counts inside earlier payloads,
/// and the [`repair`](crate::repair) scanner that must classify a file's
/// sections without assuming which one comes next.
///
/// `pos` is only advanced when the whole section (frame **and** payload,
/// checksum verified) is present, so a failed scan leaves `pos` at the start
/// of the damaged tail.
pub fn scan_section_any(buf: &[u8], pos: &mut usize) -> Result<(u8, std::ops::Range<usize>)> {
    let header_end = pos
        .checked_add(1 + 8 + 8)
        .filter(|&end| end <= buf.len())
        .ok_or(StoreError::Truncated {
            context: "section frame",
        })?;
    let tag = buf[*pos];
    let len_bytes: [u8; 8] = buf[*pos + 1..*pos + 9].try_into().expect("8-byte slice");
    let len = usize::try_from(u64::from_le_bytes(len_bytes))
        .map_err(|_| StoreError::corrupt("section length exceeds usize"))?;
    let stored = u64::from_le_bytes(buf[*pos + 9..*pos + 17].try_into().expect("8-byte slice"));
    let payload_end = header_end
        .checked_add(len)
        .filter(|&end| end <= buf.len())
        .ok_or(StoreError::Truncated {
            context: "section payload",
        })?;
    let payload = &buf[header_end..payload_end];
    let actual = checksum(payload);
    if actual != stored {
        return Err(StoreError::ChecksumMismatch {
            section: tag,
            expected: stored,
            actual,
        });
    }
    *pos = payload_end;
    Ok((tag, header_end..payload_end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_read() {
        let mut w = Writer::new(Vec::new());
        write_section(&mut w, 5, b"first").unwrap();
        write_section(&mut w, 6, b"second payload").unwrap();
        let buf = w.into_inner();

        let mut pos = 0usize;
        let a = scan_section(&buf, &mut pos, 5).unwrap();
        assert_eq!(&buf[a], b"first");
        let b = scan_section(&buf, &mut pos, 6).unwrap();
        assert_eq!(&buf[b], b"second payload");
        assert_eq!(pos, buf.len());

        // Scanning past the end is a typed truncation.
        assert!(matches!(
            scan_section(&buf, &mut pos, 7),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn scan_detects_corruption_and_truncation() {
        let mut w = Writer::new(Vec::new());
        write_section(&mut w, 5, b"payload under test").unwrap();
        let buf = w.into_inner();

        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x80;
        let mut pos = 0usize;
        assert!(matches!(
            scan_section(&flipped, &mut pos, 5),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        let mut pos = 0usize;
        assert!(matches!(
            scan_section(&buf[..buf.len() - 2], &mut pos, 5),
            Err(StoreError::Truncated { .. })
        ));

        let mut pos = 0usize;
        assert!(matches!(
            scan_section(&buf, &mut pos, 9),
            Err(StoreError::UnexpectedSection { .. })
        ));
    }

    #[test]
    fn section_round_trips() {
        let mut w = Writer::new(Vec::new());
        write_section(&mut w, 7, b"hello section").unwrap();
        let bytes = w.into_inner();
        let mut r = Reader::new(bytes.as_slice());
        assert_eq!(read_section(&mut r, 7).unwrap(), b"hello section");
    }

    #[test]
    fn builder_matches_direct_framing() {
        let mut direct = Writer::new(Vec::new());
        write_section(&mut direct, 3, &5u64.to_le_bytes()).unwrap();

        let mut built = Writer::new(Vec::new());
        let mut section = SectionBuilder::new();
        section.writer().write_u64(5).unwrap();
        section.finish(3, &mut built).unwrap();

        assert_eq!(direct.into_inner(), built.into_inner());
    }

    #[test]
    fn empty_payload_checksum_is_nonzero() {
        assert_ne!(checksum(&[]), 0);
    }

    #[test]
    fn wrong_tag_is_typed() {
        let mut w = Writer::new(Vec::new());
        write_section(&mut w, 1, b"x").unwrap();
        let bytes = w.into_inner();
        let mut r = Reader::new(bytes.as_slice());
        assert!(matches!(
            read_section(&mut r, 2),
            Err(StoreError::UnexpectedSection {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut w = Writer::new(Vec::new());
        write_section(&mut w, 1, b"sensitive payload").unwrap();
        let mut bytes = w.into_inner();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let mut r = Reader::new(bytes.as_slice());
        assert!(matches!(
            read_section(&mut r, 1),
            Err(StoreError::ChecksumMismatch { section: 1, .. })
        ));
    }

    #[test]
    fn truncated_payload_is_typed() {
        let mut w = Writer::new(Vec::new());
        write_section(&mut w, 1, b"0123456789").unwrap();
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes[..bytes.len() - 4]);
        assert!(matches!(
            read_section(&mut r, 1),
            Err(StoreError::Truncated { .. })
        ));
    }
}
