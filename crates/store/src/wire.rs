//! Hand-rolled little-endian wire primitives.
//!
//! The store deliberately avoids external serialization dependencies (the
//! workspace builds offline; see `vendor/README.md`): every artifact is
//! encoded through this [`Writer`] / [`Reader`] pair over `std::io`. All
//! multi-byte integers are little-endian; strings are UTF-8 with a `u32`
//! length prefix; bulk columns are length-prefixed element runs.

use std::io::{Read, Write};

use crate::error::{Result, StoreError};

/// Writes wire primitives to an underlying `std::io::Write`.
#[derive(Debug)]
pub struct Writer<W: Write> {
    inner: W,
}

impl<W: Write> Writer<W> {
    /// Wraps an output stream.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Unwraps the underlying stream.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Writes raw bytes verbatim.
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.inner.write_all(bytes)?;
        Ok(())
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) -> Result<()> {
        self.write_raw(&[v])
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, v: u16) -> Result<()> {
        self.write_raw(&v.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) -> Result<()> {
        self.write_raw(&v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> Result<()> {
        self.write_raw(&v.to_le_bytes())
    }

    /// Writes a little-endian `i64`.
    pub fn write_i64(&mut self, v: i64) -> Result<()> {
        self.write_raw(&v.to_le_bytes())
    }

    /// Writes an `f64` as its little-endian IEEE-754 bit pattern. The exact
    /// bits round-trip, including NaN payloads and signed zeros.
    pub fn write_f64(&mut self, v: f64) -> Result<()> {
        self.write_u64(v.to_bits())
    }

    /// Writes a `usize` as a `u64` (the on-disk format is width-independent).
    pub fn write_len(&mut self, v: usize) -> Result<()> {
        self.write_u64(v as u64)
    }

    /// Writes a length-prefixed UTF-8 string (`u32` length + bytes).
    pub fn write_str(&mut self, s: &str) -> Result<()> {
        let len = u32::try_from(s.len())
            .map_err(|_| StoreError::corrupt(format!("string of {} bytes too long", s.len())))?;
        self.write_u32(len)?;
        self.write_raw(s.as_bytes())
    }
}

/// Reads wire primitives from an underlying `std::io::Read`.
#[derive(Debug)]
pub struct Reader<R: Read> {
    inner: R,
}

impl<R: Read> Reader<R> {
    /// Wraps an input stream.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Unwraps the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads exactly `buf.len()` bytes, mapping EOF to a typed truncation
    /// error naming what was being decoded.
    pub fn read_exact(&mut self, buf: &mut [u8], context: &'static str) -> Result<()> {
        self.inner.read_exact(buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::UnexpectedEof => StoreError::Truncated { context },
            _ => StoreError::Io(e),
        })
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, context: &'static str) -> Result<u8> {
        let mut buf = [0u8; 1];
        self.read_exact(&mut buf, context)?;
        Ok(buf[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self, context: &'static str) -> Result<u16> {
        let mut buf = [0u8; 2];
        self.read_exact(&mut buf, context)?;
        Ok(u16::from_le_bytes(buf))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, context: &'static str) -> Result<u32> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf, context)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, context: &'static str) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf, context)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a little-endian `i64`.
    pub fn read_i64(&mut self, context: &'static str) -> Result<i64> {
        Ok(self.read_u64(context)? as i64)
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn read_f64(&mut self, context: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64(context)?))
    }

    /// Reads a `u64` length and narrows it to `usize`.
    pub fn read_len(&mut self, context: &'static str) -> Result<usize> {
        let v = self.read_u64(context)?;
        usize::try_from(v)
            .map_err(|_| StoreError::corrupt(format!("{context}: length {v} exceeds usize")))
    }

    /// Reads `len` bytes into a fresh buffer.
    ///
    /// Allocation is driven by the bytes actually present, not by the claimed
    /// length, so a corrupt length prefix cannot trigger a huge up-front
    /// allocation — it surfaces as [`StoreError::Truncated`] instead.
    pub fn read_bytes(&mut self, len: usize, context: &'static str) -> Result<Vec<u8>> {
        let mut buf = Vec::new();
        let got = (&mut self.inner)
            .take(len as u64)
            .read_to_end(&mut buf)
            .map_err(StoreError::Io)?;
        if got < len {
            return Err(StoreError::Truncated { context });
        }
        Ok(buf)
    }

    /// Reads a length-prefixed UTF-8 string written by [`Writer::write_str`].
    pub fn read_string(&mut self, context: &'static str) -> Result<String> {
        let len = self.read_u32(context)? as usize;
        let bytes = self.read_bytes(len, context)?;
        String::from_utf8(bytes)
            .map_err(|_| StoreError::corrupt(format!("{context}: string is not valid UTF-8")))
    }
}

/// Zero-copy reads over a borrowed byte slice.
///
/// The complement of [`Reader`] for buffer-resident decoding: the structural
/// validators walk entire artifacts with borrowed strings and skipped runs,
/// allocating nothing — which is what lets a lazy snapshot prove a file is
/// well-formed at open without paying for materialization.
#[derive(Debug)]
pub struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    /// Wraps a byte slice, starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset from the start of the slice.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Borrows the next `n` bytes and advances past them.
    pub fn read_slice(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(StoreError::Truncated { context })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.read_slice(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, context: &'static str) -> Result<u32> {
        let bytes = self.read_slice(4, context)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, context: &'static str) -> Result<u64> {
        let bytes = self.read_slice(8, context)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Reads a `u64` length and narrows it to `usize`.
    pub fn read_len(&mut self, context: &'static str) -> Result<usize> {
        let v = self.read_u64(context)?;
        usize::try_from(v)
            .map_err(|_| StoreError::corrupt(format!("{context}: length {v} exceeds usize")))
    }

    /// Reads a length-prefixed UTF-8 string as a borrowed `&str`.
    pub fn read_str(&mut self, context: &'static str) -> Result<&'a str> {
        let len = self.read_u32(context)? as usize;
        let bytes = self.read_slice(len, context)?;
        std::str::from_utf8(bytes)
            .map_err(|_| StoreError::corrupt(format!("{context}: string is not valid UTF-8")))
    }

    /// Errors with [`StoreError::Corrupt`] unless every byte was consumed —
    /// the canonical-encoding guard: no payload may carry trailing bytes.
    pub fn expect_consumed(&self, context: &'static str) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::corrupt(format!(
                "{context}: {} trailing bytes in payload",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(write: impl FnOnce(&mut Writer<Vec<u8>>)) -> Reader<std::io::Cursor<Vec<u8>>> {
        let mut w = Writer::new(Vec::new());
        write(&mut w);
        Reader::new(std::io::Cursor::new(w.into_inner()))
    }

    #[test]
    fn scalars_round_trip() {
        let mut r = round_trip(|w| {
            w.write_u8(0xAB).unwrap();
            w.write_u16(0xBEEF).unwrap();
            w.write_u32(0xDEAD_BEEF).unwrap();
            w.write_u64(u64::MAX - 1).unwrap();
            w.write_i64(-42).unwrap();
            w.write_f64(-0.0).unwrap();
            w.write_len(7).unwrap();
        });
        assert_eq!(r.read_u8("t").unwrap(), 0xAB);
        assert_eq!(r.read_u16("t").unwrap(), 0xBEEF);
        assert_eq!(r.read_u32("t").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64("t").unwrap(), u64::MAX - 1);
        assert_eq!(r.read_i64("t").unwrap(), -42);
        assert_eq!(r.read_f64("t").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.read_len("t").unwrap(), 7);
    }

    #[test]
    fn nan_bits_round_trip_exactly() {
        let weird_nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut r = round_trip(|w| w.write_f64(weird_nan).unwrap());
        assert_eq!(r.read_f64("nan").unwrap().to_bits(), weird_nan.to_bits());
    }

    #[test]
    fn strings_round_trip() {
        let mut r = round_trip(|w| {
            w.write_str("").unwrap();
            w.write_str("zip-codes: ünïcode").unwrap();
        });
        assert_eq!(r.read_string("s").unwrap(), "");
        assert_eq!(r.read_string("s").unwrap(), "zip-codes: ünïcode");
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut w = Writer::new(Vec::new());
        w.write_u64(12345).unwrap();
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes[..5]);
        match r.read_u64("u64 under test") {
            Err(StoreError::Truncated { context }) => assert_eq!(context, "u64 under test"),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn huge_claimed_length_does_not_allocate() {
        // A corrupt 1 GiB length prefix over a 3-byte payload must fail with
        // Truncated (after reading only 3 bytes), not try to allocate 1 GiB.
        let mut w = Writer::new(Vec::new());
        w.write_u32(1 << 30).unwrap();
        w.write_raw(b"abc").unwrap();
        let bytes = w.into_inner();
        let mut r = Reader::new(bytes.as_slice());
        assert!(matches!(
            r.read_string("huge"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn slice_reader_walks_and_guards() {
        let mut w = Writer::new(Vec::new());
        w.write_u8(7).unwrap();
        w.write_u64(999).unwrap();
        w.write_str("borrowed").unwrap();
        let buf = w.into_inner();

        let mut r = SliceReader::new(&buf);
        assert_eq!(r.read_u8("a").unwrap(), 7);
        assert_eq!(r.read_u64("b").unwrap(), 999);
        assert!(r.expect_consumed("early").is_err());
        assert_eq!(r.read_str("c").unwrap(), "borrowed");
        r.expect_consumed("done").unwrap();
        assert_eq!(r.position(), buf.len());

        // Over-reads are typed truncations, including overflow-sized ones.
        let mut r = SliceReader::new(&buf[..2]);
        assert!(matches!(
            r.read_u64("short"),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            r.read_slice(usize::MAX, "overflow"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = Writer::new(Vec::new());
        w.write_u32(2).unwrap();
        w.write_raw(&[0xFF, 0xFE]).unwrap();
        let bytes = w.into_inner();
        let mut r = Reader::new(bytes.as_slice());
        assert!(matches!(r.read_string("utf8"), Err(StoreError::Corrupt(_))));
    }
}
