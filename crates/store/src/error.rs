//! The typed error surface of the store.
//!
//! Every malformed input — truncation, a foreign file, a file written by a
//! future version of the library, bit rot — maps to a [`StoreError`] variant.
//! Decoders never panic on untrusted bytes; the corrupt-input test suite pins
//! that contract.

use std::fmt;
use std::io;

/// Errors produced while encoding or decoding store artifacts.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with the `joinmi` store magic bytes.
    BadMagic {
        /// The bytes actually found where the magic was expected.
        found: [u8; 4],
    },
    /// The file was written by a format version this library cannot read.
    UnsupportedVersion {
        /// Version recorded in the file header.
        found: u16,
        /// Highest version this library understands.
        supported: u16,
    },
    /// The file holds a different artifact kind than the caller asked for
    /// (e.g. a single sketch where a repository was expected).
    WrongArtifact {
        /// Artifact tag expected by the caller.
        expected: u8,
        /// Artifact tag recorded in the header.
        found: u8,
    },
    /// The input ended before a complete value / section could be read.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A section's stored checksum does not match its payload.
    ChecksumMismatch {
        /// Tag of the offending section.
        section: u8,
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// A section appeared with an unexpected tag.
    UnexpectedSection {
        /// Tag expected by the decoder.
        expected: u8,
        /// Tag actually read.
        found: u8,
    },
    /// A structurally invalid encoding: unknown enum tag, impossible length,
    /// non-UTF-8 string bytes, and similar.
    Corrupt(String),
    /// The target artifact is sealed (frozen by a seal-mode compaction) and
    /// rejects the attempted mutation — appending to a sealed repository
    /// file, for example. Distinct from [`StoreError::Corrupt`]: the file is
    /// perfectly valid, the *operation* is what is disallowed.
    Sealed {
        /// What was attempted against the sealed artifact.
        operation: &'static str,
    },
}

impl StoreError {
    /// Convenience constructor for [`StoreError::Corrupt`].
    #[must_use]
    pub fn corrupt(message: impl Into<String>) -> Self {
        Self::Corrupt(message.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O error: {e}"),
            Self::BadMagic { found } => {
                write!(f, "not a joinmi store file (magic bytes {found:02x?})")
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "store format version {found} is newer than the supported version {supported}"
            ),
            Self::WrongArtifact { expected, found } => write!(
                f,
                "wrong artifact kind: expected tag {expected}, file holds tag {found}"
            ),
            Self::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            Self::ChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in section {section}: stored {expected:#018x}, computed {actual:#018x}"
            ),
            Self::UnexpectedSection { expected, found } => write!(
                f,
                "unexpected section tag {found} (expected {expected})"
            ),
            Self::Corrupt(message) => write!(f, "corrupt store data: {message}"),
            Self::Sealed { operation } => {
                write!(f, "artifact is sealed: {operation} is not allowed")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        // An EOF surfacing as a raw I/O error is still a truncation from the
        // caller's point of view; keep the richer variant when we can tell.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            Self::Truncated { context: "input" }
        } else {
            Self::Io(e)
        }
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::BadMagic {
            found: *b"PK\x03\x04",
        };
        assert!(e.to_string().contains("not a joinmi store file"));
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = StoreError::ChecksumMismatch {
            section: 3,
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("section 3"));
    }

    #[test]
    fn unexpected_eof_maps_to_truncated() {
        let io = io::Error::new(io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(StoreError::from(io), StoreError::Truncated { .. }));
        let io = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        assert!(matches!(StoreError::from(io), StoreError::Io(_)));
    }
}
