//! Deterministic fault injection for the store's IO seam.
//!
//! Every durable write path in the workspace (`save`, `append_to`,
//! `compact`, snapshot open, torn-tail repair) routes its filesystem
//! operations through the wrappers in this module instead of calling
//! `std::fs` directly. With no plan armed the wrappers are pass-throughs; a
//! test or a chaos drill arms a [`FaultPlan`] that deterministically fails
//! the Nth operation of a kind, flips a bit in the Nth write/read buffer, or
//! panics at a named [`failpoint`] — which is how the chaos sweeps prove the
//! format's crash-safety claims (`docs/FORMAT.md`) instead of merely
//! asserting them.
//!
//! # Scopes
//!
//! Two arming scopes, checked in order:
//!
//! * **Thread-local** ([`arm`]): visible only to IO performed on the arming
//!   thread, so parallel tests cannot interfere with each other. Disarmed
//!   when the returned [`FaultGuard`] drops; the guard also reports how many
//!   operations of each kind ran, which is how a sweep learns its size.
//! * **Process-global** ([`arm_global`], or the `JOINMI_FAILPOINTS`
//!   environment variable parsed on first use): visible to every thread that
//!   has no thread-local plan. This is the scope daemon-side chaos needs —
//!   the serve worker that should panic runs on its own thread.
//!
//! # The `JOINMI_FAILPOINTS` spec
//!
//! Semicolon-separated entries, each `kind[@name][#nth]=action`:
//!
//! ```text
//! JOINMI_FAILPOINTS='write#3=err;fsync=err;read=flip:13;failpoint@serve.worker.panic=panic'
//! ```
//!
//! * `kind` — one of `create`, `write`, `fsync`, `rename`, `read`,
//!   `setlen`, `failpoint`;
//! * `@name` — required for `failpoint` entries, rejected elsewhere;
//! * `#nth` — zero-based match index (default `0`): the action fires on the
//!   Nth operation of that kind only;
//! * `action` — `err` (typed `io::Error`), `panic`, or `flip:<bit>`
//!   (corrupt bit `<bit> % buffer_bits` of that operation's buffer, then
//!   succeed — only meaningful for `write` and `read`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs::{File, Metadata};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock, PoisonError};

/// The prefix every injected `io::Error` message carries, so tests can tell
/// an injected failure from a real one.
pub const INJECTED_PREFIX: &str = "joinmi fault injection";

/// The IO operation classes the seam distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Opening a file for writing (`File::create`, append/rw opens).
    Create,
    /// One `write` call on a fault-wrapped file.
    Write,
    /// `File::sync_all`.
    Fsync,
    /// `fs::rename`.
    Rename,
    /// Reading a whole file (`fs::read`).
    Read,
    /// `File::set_len` (torn-tail repair truncation).
    SetLen,
    /// A named code-site checkpoint (see [`failpoint`]).
    Failpoint,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "create" => Self::Create,
            "write" => Self::Write,
            "fsync" => Self::Fsync,
            "rename" => Self::Rename,
            "read" => Self::Read,
            "setlen" => Self::SetLen,
            "failpoint" => Self::Failpoint,
            _ => return None,
        })
    }
}

/// What a matched trigger does to its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with a typed `io::Error` before it touches disk.
    Error,
    /// Flip one bit of the operation's buffer (`bit % buffer_bits`), then
    /// let it succeed — silent in-flight corruption. Ignored by operations
    /// that carry no buffer.
    FlipBit(u64),
    /// Panic at the operation — how chaos drills exercise `catch_unwind`
    /// isolation in the serve daemon.
    Panic,
}

/// One armed trigger: fire `action` on the `nth` (zero-based) operation of
/// `kind` — for [`FaultKind::Failpoint`], of the checkpoint named `name`.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Operation class to match.
    pub kind: FaultKind,
    /// Checkpoint name; `None` for every kind except `Failpoint`.
    pub name: Option<String>,
    /// Zero-based operation index the action fires on.
    pub nth: u64,
    /// What to do when it fires.
    pub action: FaultAction,
}

/// A set of triggers armed together. An empty plan is still useful: arming
/// it counts operations (observe mode), which is how a sweep learns how many
/// fault points an operation has.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The armed triggers.
    pub triggers: Vec<Trigger>,
}

impl FaultPlan {
    /// An empty (observe-only) plan.
    #[must_use]
    pub fn observe() -> Self {
        Self::default()
    }

    /// A single-trigger plan failing the `nth` operation of `kind`.
    #[must_use]
    pub fn fail_nth(kind: FaultKind, nth: u64) -> Self {
        Self::default().with(Trigger {
            kind,
            name: None,
            nth,
            action: FaultAction::Error,
        })
    }

    /// A single-trigger plan flipping bit `bit` of the `nth` operation of
    /// `kind` (meaningful for `Write` and `Read`).
    #[must_use]
    pub fn flip_nth(kind: FaultKind, nth: u64, bit: u64) -> Self {
        Self::default().with(Trigger {
            kind,
            name: None,
            nth,
            action: FaultAction::FlipBit(bit),
        })
    }

    /// A single-trigger plan acting on the `nth` hit of the checkpoint
    /// named `name`.
    #[must_use]
    pub fn at_failpoint(name: &str, nth: u64, action: FaultAction) -> Self {
        Self::default().with(Trigger {
            kind: FaultKind::Failpoint,
            name: Some(name.to_owned()),
            nth,
            action,
        })
    }

    /// Adds a trigger (builder style).
    #[must_use]
    pub fn with(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }

    /// Parses a `JOINMI_FAILPOINTS` spec (grammar in the module docs).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (lhs, action) = entry
                .split_once('=')
                .ok_or_else(|| format!("'{entry}': missing '=action'"))?;
            let (lhs, nth) = match lhs.split_once('#') {
                Some((head, n)) => (
                    head,
                    n.parse::<u64>()
                        .map_err(|_| format!("'{entry}': bad index '#{n}'"))?,
                ),
                None => (lhs, 0),
            };
            let (kind_str, name) = match lhs.split_once('@') {
                Some((k, name)) => (k, Some(name.to_owned())),
                None => (lhs, None),
            };
            let kind = FaultKind::parse(kind_str.trim())
                .ok_or_else(|| format!("'{entry}': unknown kind '{kind_str}'"))?;
            if (kind == FaultKind::Failpoint) != name.is_some() {
                return Err(format!(
                    "'{entry}': '@name' is required for failpoint entries and invalid elsewhere"
                ));
            }
            let action = action.trim();
            let action = if action == "err" {
                FaultAction::Error
            } else if action == "panic" {
                FaultAction::Panic
            } else if let Some(bit) = action.strip_prefix("flip:") {
                FaultAction::FlipBit(
                    bit.parse()
                        .map_err(|_| format!("'{entry}': bad flip bit '{bit}'"))?,
                )
            } else {
                return Err(format!("'{entry}': unknown action '{action}'"));
            };
            plan = plan.with(Trigger {
                kind,
                name,
                nth,
                action,
            });
        }
        Ok(plan)
    }
}

/// Per-kind (and per-failpoint-name) operation counters of an armed plan.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    counts: HashMap<(FaultKind, Option<String>), u64>,
}

impl FaultStats {
    /// Operations of `kind` observed while the plan was armed (failpoint
    /// hits are counted per name; see [`FaultStats::failpoint_count`]).
    #[must_use]
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, n)| n)
            .sum()
    }

    /// Hits of the checkpoint named `name`.
    #[must_use]
    pub fn failpoint_count(&self, name: &str) -> u64 {
        self.counts
            .get(&(FaultKind::Failpoint, Some(name.to_owned())))
            .copied()
            .unwrap_or(0)
    }
}

#[derive(Debug)]
struct ActivePlan {
    plan: FaultPlan,
    stats: FaultStats,
}

enum Outcome {
    Pass,
    Flip(u64),
}

impl ActivePlan {
    fn hit(&mut self, kind: FaultKind, name: Option<&str>) -> io::Result<Outcome> {
        let key = (kind, name.map(str::to_owned));
        let counter = self.stats.counts.entry(key).or_insert(0);
        let n = *counter;
        *counter += 1;
        let matched = self
            .plan
            .triggers
            .iter()
            .find(|t| t.kind == kind && t.nth == n && t.name.as_deref() == name);
        match matched.map(|t| t.action) {
            None => Ok(Outcome::Pass),
            Some(FaultAction::Error) => Err(io::Error::other(format!(
                "{INJECTED_PREFIX}: {kind:?}{} #{n} failed",
                name.map(|s| format!("@{s}")).unwrap_or_default()
            ))),
            Some(FaultAction::FlipBit(bit)) => Ok(Outcome::Flip(bit)),
            Some(FaultAction::Panic) => panic!(
                "{INJECTED_PREFIX}: injected panic at {kind:?}{} #{n}",
                name.map(|s| format!("@{s}")).unwrap_or_default()
            ),
        }
    }
}

thread_local! {
    static THREAD_PLAN: RefCell<Option<ActivePlan>> = const { RefCell::new(None) };
}

fn global_plan() -> &'static Mutex<Option<ActivePlan>> {
    static GLOBAL: OnceLock<Mutex<Option<ActivePlan>>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let from_env = std::env::var("JOINMI_FAILPOINTS").ok().and_then(|spec| {
            match FaultPlan::from_spec(&spec) {
                Ok(plan) if !plan.triggers.is_empty() => Some(ActivePlan {
                    plan,
                    stats: FaultStats::default(),
                }),
                Ok(_) => None,
                Err(e) => {
                    eprintln!("joinmi: ignoring invalid JOINMI_FAILPOINTS: {e}");
                    None
                }
            }
        });
        Mutex::new(from_env)
    })
}

/// The central checkpoint every seam wrapper funnels through: consults the
/// thread-local plan first, then the process-global one. Unarmed, it is a
/// few nanoseconds of thread-local access.
fn hit(kind: FaultKind, name: Option<&str>) -> io::Result<Outcome> {
    let thread_outcome = THREAD_PLAN.with(|slot| {
        slot.borrow_mut()
            .as_mut()
            .map(|active| active.hit(kind, name))
    });
    if let Some(outcome) = thread_outcome {
        return outcome;
    }
    let mut global = global_plan().lock().unwrap_or_else(PoisonError::into_inner);
    match global.as_mut() {
        Some(active) => active.hit(kind, name),
        None => Ok(Outcome::Pass),
    }
}

fn flip_bit(buf: &mut [u8], bit: u64) {
    if buf.is_empty() {
        return;
    }
    let bit = bit % (buf.len() as u64 * 8);
    buf[(bit / 8) as usize] ^= 1 << (bit % 8);
}

/// Arms `plan` for the current thread; disarmed when the guard drops.
///
/// # Panics
///
/// Panics if a thread-local plan is already armed (arming is not reentrant —
/// a nested sweep would silently corrupt the outer sweep's counters).
#[must_use]
pub fn arm(plan: FaultPlan) -> FaultGuard {
    THREAD_PLAN.with(|slot| {
        let mut slot = slot.borrow_mut();
        assert!(slot.is_none(), "a thread-local fault plan is already armed");
        *slot = Some(ActivePlan {
            plan,
            stats: FaultStats::default(),
        });
    });
    FaultGuard { _priv: () }
}

/// Arms `plan` process-globally (for threads with no thread-local plan);
/// replaced by `None` when the guard drops. Used by daemon-side chaos tests
/// whose fault must fire on a worker thread the test does not own.
#[must_use]
pub fn arm_global(plan: FaultPlan) -> GlobalFaultGuard {
    *global_plan().lock().unwrap_or_else(PoisonError::into_inner) = Some(ActivePlan {
        plan,
        stats: FaultStats::default(),
    });
    GlobalFaultGuard { _priv: () }
}

/// RAII guard for a thread-local plan (see [`arm`]).
#[derive(Debug)]
pub struct FaultGuard {
    _priv: (),
}

impl FaultGuard {
    /// Snapshot of the operation counters accumulated so far — how a sweep
    /// learns the number of fault points in an operation.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        THREAD_PLAN.with(|slot| {
            slot.borrow()
                .as_ref()
                .map(|active| active.stats.clone())
                .unwrap_or_default()
        })
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        THREAD_PLAN.with(|slot| slot.borrow_mut().take());
    }
}

/// RAII guard for the process-global plan (see [`arm_global`]).
#[derive(Debug)]
pub struct GlobalFaultGuard {
    _priv: (),
}

impl GlobalFaultGuard {
    /// Snapshot of the global plan's operation counters.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        global_plan()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|active| active.stats.clone())
            .unwrap_or_default()
    }
}

impl Drop for GlobalFaultGuard {
    fn drop(&mut self) {
        global_plan()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }
}

// ---------------------------------------------------------------------------
// The seam: fault-aware filesystem wrappers
// ---------------------------------------------------------------------------

/// A writable file whose `write`/`sync_all`/`set_len` calls route through
/// the fault seam. Obtained from [`create`], [`open_append`] or [`open_rw`].
#[derive(Debug)]
pub struct FaultFile {
    inner: File,
}

impl FaultFile {
    /// `File::sync_all` behind the [`FaultKind::Fsync`] checkpoint.
    pub fn sync_all(&self) -> io::Result<()> {
        let _ = hit(FaultKind::Fsync, None)?;
        self.inner.sync_all()
    }

    /// `File::set_len` behind the [`FaultKind::SetLen`] checkpoint.
    pub fn set_len(&self, len: u64) -> io::Result<()> {
        let _ = hit(FaultKind::SetLen, None)?;
        self.inner.set_len(len)
    }

    /// `File::metadata` (not a fault point: it writes nothing).
    pub fn metadata(&self) -> io::Result<Metadata> {
        self.inner.metadata()
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match hit(FaultKind::Write, None)? {
            Outcome::Pass => self.inner.write(buf),
            Outcome::Flip(bit) => {
                let mut mutated = buf.to_vec();
                flip_bit(&mut mutated, bit);
                self.inner.write_all(&mutated)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// `File::create` behind the [`FaultKind::Create`] checkpoint.
pub fn create<P: AsRef<Path>>(path: P) -> io::Result<FaultFile> {
    let _ = hit(FaultKind::Create, None)?;
    Ok(FaultFile {
        inner: File::create(path)?,
    })
}

/// Open for appending, behind the [`FaultKind::Create`] checkpoint.
pub fn open_append<P: AsRef<Path>>(path: P) -> io::Result<FaultFile> {
    let _ = hit(FaultKind::Create, None)?;
    Ok(FaultFile {
        inner: std::fs::OpenOptions::new().append(true).open(path)?,
    })
}

/// Open for in-place writing (repair truncation), behind the
/// [`FaultKind::Create`] checkpoint.
pub fn open_rw<P: AsRef<Path>>(path: P) -> io::Result<FaultFile> {
    let _ = hit(FaultKind::Create, None)?;
    Ok(FaultFile {
        inner: std::fs::OpenOptions::new().write(true).open(path)?,
    })
}

/// `File::open` for streaming reads, behind the [`FaultKind::Read`]
/// checkpoint (an `Error` trigger fails the open; flips are ignored — use
/// [`read`] where buffer corruption should be injectable).
pub fn open_read<P: AsRef<Path>>(path: P) -> io::Result<File> {
    let _ = hit(FaultKind::Read, None)?;
    File::open(path)
}

/// `fs::read` behind the [`FaultKind::Read`] checkpoint: an `Error` trigger
/// fails before touching disk; a `FlipBit` trigger corrupts the returned
/// buffer (the on-disk file is untouched).
pub fn read<P: AsRef<Path>>(path: P) -> io::Result<Vec<u8>> {
    let outcome = hit(FaultKind::Read, None)?;
    let mut buf = std::fs::read(path)?;
    if let Outcome::Flip(bit) = outcome {
        flip_bit(&mut buf, bit);
    }
    Ok(buf)
}

/// `fs::rename` behind the [`FaultKind::Rename`] checkpoint.
pub fn rename<P: AsRef<Path>, Q: AsRef<Path>>(from: P, to: Q) -> io::Result<()> {
    let _ = hit(FaultKind::Rename, None)?;
    std::fs::rename(from, to)
}

/// A named checkpoint for injecting failures at arbitrary code sites (the
/// serve daemon's worker and shard-scoring paths). Unarmed it is a no-op;
/// an `Error` trigger returns the injected `io::Error`, a `Panic` trigger
/// panics, and a `FlipBit` trigger is ignored (no buffer).
pub fn failpoint(name: &str) -> io::Result<()> {
    let _ = hit(FaultKind::Failpoint, Some(name))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "joinmi-fault-{tag}-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn unarmed_seam_is_a_passthrough() {
        let path = temp("passthrough");
        let mut file = create(&path).unwrap();
        file.write_all(b"hello").unwrap();
        file.sync_all().unwrap();
        assert_eq!(read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn nth_write_fails_and_stats_count_operations() {
        let path = temp("nthwrite");
        let guard = arm(FaultPlan::fail_nth(FaultKind::Write, 1));
        let mut file = create(&path).unwrap();
        file.write_all(b"first").unwrap();
        let err = file.write_all(b"second").unwrap_err();
        assert!(err.to_string().contains(INJECTED_PREFIX), "{err}");
        // The third write is past the trigger and succeeds again.
        file.write_all(b"third").unwrap();
        let stats = guard.stats();
        assert_eq!(stats.count(FaultKind::Write), 3);
        assert_eq!(stats.count(FaultKind::Create), 1);
        drop(guard);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flip_corrupts_exactly_one_bit_of_the_nth_write() {
        let path = temp("flip");
        {
            let _guard = arm(FaultPlan::flip_nth(FaultKind::Write, 0, 9));
            let mut file = create(&path).unwrap();
            file.write_all(&[0u8; 4]).unwrap();
        }
        // Bit 9 = byte 1, bit 1.
        assert_eq!(std::fs::read(&path).unwrap(), vec![0, 2, 0, 0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_flip_corrupts_the_buffer_not_the_file() {
        let path = temp("readflip");
        std::fs::write(&path, [0xFFu8; 2]).unwrap();
        {
            let _guard = arm(FaultPlan::flip_nth(FaultKind::Read, 0, 0));
            assert_eq!(read(&path).unwrap(), vec![0xFE, 0xFF]);
        }
        assert_eq!(std::fs::read(&path).unwrap(), vec![0xFF, 0xFF]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_and_rename_triggers_fire() {
        let path = temp("fsync");
        let to = temp("fsync-renamed");
        {
            let _guard = arm(FaultPlan::fail_nth(FaultKind::Fsync, 0).with(Trigger {
                kind: FaultKind::Rename,
                name: None,
                nth: 0,
                action: FaultAction::Error,
            }));
            let mut file = create(&path).unwrap();
            file.write_all(b"x").unwrap();
            assert!(file.sync_all().is_err());
            assert!(rename(&path, &to).is_err());
        }
        assert!(path.exists() && !to.exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failpoints_match_by_name_and_index() {
        let guard = arm(FaultPlan::at_failpoint("site.a", 1, FaultAction::Error));
        assert!(failpoint("site.a").is_ok(), "nth=1 spares the first hit");
        assert!(failpoint("site.b").is_ok(), "other names never match");
        assert!(failpoint("site.a").is_err(), "second hit fires");
        assert!(failpoint("site.a").is_ok(), "third hit is past the trigger");
        let stats = guard.stats();
        assert_eq!(stats.failpoint_count("site.a"), 3);
        assert_eq!(stats.failpoint_count("site.b"), 1);
    }

    #[test]
    #[should_panic(expected = "joinmi fault injection")]
    fn panic_action_panics() {
        let _guard = arm(FaultPlan::at_failpoint("boom", 0, FaultAction::Panic));
        let _ = failpoint("boom");
    }

    #[test]
    fn spec_grammar_round_trips() {
        let plan = FaultPlan::from_spec(
            "write#3=err; fsync=err; read=flip:13; failpoint@serve.worker.panic#2=panic",
        )
        .unwrap();
        assert_eq!(plan.triggers.len(), 4);
        assert_eq!(plan.triggers[0].kind, FaultKind::Write);
        assert_eq!(plan.triggers[0].nth, 3);
        assert_eq!(plan.triggers[0].action, FaultAction::Error);
        assert_eq!(plan.triggers[1].nth, 0, "#nth defaults to 0");
        assert_eq!(plan.triggers[2].action, FaultAction::FlipBit(13));
        assert_eq!(plan.triggers[3].name.as_deref(), Some("serve.worker.panic"));
        assert_eq!(plan.triggers[3].action, FaultAction::Panic);

        for bad in [
            "write",                // no action
            "write=explode",        // unknown action
            "wrote=err",            // unknown kind
            "write#x=err",          // bad index
            "write@name=err",       // name on a non-failpoint kind
            "failpoint=err",        // failpoint without a name
            "read=flip:notanumber", // bad flip bit
        ] {
            assert!(FaultPlan::from_spec(bad).is_err(), "{bad} should fail");
        }

        // Empty entries are tolerated (trailing semicolons).
        assert!(FaultPlan::from_spec("").unwrap().triggers.is_empty());
        assert!(FaultPlan::from_spec("write=err;").unwrap().triggers.len() == 1);
    }

    #[test]
    fn thread_local_plan_shadows_the_global_plan() {
        // A thread with its own plan never consults the global one; a thread
        // without one does. (Serialized against other global-arming tests by
        // the distinct failpoint name.)
        let _global = arm_global(FaultPlan::at_failpoint(
            "shadow.test",
            0,
            FaultAction::Error,
        ));
        {
            let _local = arm(FaultPlan::observe());
            assert!(
                failpoint("shadow.test").is_ok(),
                "thread plan shadows global"
            );
        }
        assert!(
            failpoint("shadow.test").is_err(),
            "global plan visible once the thread plan is gone"
        );
    }
}
