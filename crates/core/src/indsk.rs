//! INDSK — independent Bernoulli sampling (no coordination), the weak
//! baseline of Section IV / Table I.
//!
//! Each row of the base table is kept independently with probability
//! `n / N`; each (aggregated) key of the candidate table is kept with
//! probability `n / m`. Because the two samples are independent, the
//! expected number of matching keys in the sketch join is quadratically
//! smaller than for coordinated sampling, which is exactly the failure mode
//! the paper's Table I demonstrates (small "Avg. Sketch Join Size", large
//! MSE).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinmi_hash::SplitMix64;
use joinmi_table::{Aggregation, Table};

use crate::config::{Side, SketchConfig};
use crate::kind::SketchKind;
use crate::prep::{prepare_left, prepare_right};
use crate::row::{ColumnSketch, SketchRow};
use crate::Result;

/// Seed-derivation index of the right-side Bernoulli stream. Shared with the
/// incremental builder (`crate::incremental`), whose INDSK finalization must
/// replay exactly this stream to stay bit-for-bit with [`build_right`].
pub(crate) const RIGHT_STREAM_INDEX: u64 = 0xB0B_CA7;

/// Builds an INDSK sketch of the base table (independent Bernoulli row
/// sample with expected size `n`).
pub fn build_left(
    table: &Table,
    key: &str,
    value: &str,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let prep = prepare_left(table, key, value, &hasher)?;
    let p = sampling_probability(cfg.size, prep.n_rows);
    let mut rng = StdRng::seed_from_u64(SplitMix64::derive_seed(cfg.seed, 0xA11CE));
    let rows: Vec<SketchRow> = prep
        .rows
        .iter()
        .filter(|_| rng.gen::<f64>() < p)
        .map(|(digest, val)| SketchRow::new(*digest, val.clone()))
        .collect();
    Ok(ColumnSketch::new(
        SketchKind::Indsk,
        Side::Left,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

/// Builds an INDSK sketch of the candidate table (aggregate, then keep each
/// key independently with probability `n / m`).
pub fn build_right(
    table: &Table,
    key: &str,
    value: &str,
    agg: Aggregation,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let prep = prepare_right(table, key, value, agg, &hasher)?;
    let p = sampling_probability(cfg.size, prep.rows.len());
    // A *different* stream from the left side: the whole point of INDSK is
    // the absence of coordination.
    let mut rng = StdRng::seed_from_u64(SplitMix64::derive_seed(cfg.seed, RIGHT_STREAM_INDEX));
    let rows: Vec<SketchRow> = prep
        .rows
        .iter()
        .filter(|_| rng.gen::<f64>() < p)
        .map(|(digest, val)| SketchRow::new(*digest, val.clone()))
        .collect();
    Ok(ColumnSketch::new(
        SketchKind::Indsk,
        Side::Right,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

pub(crate) fn sampling_probability(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        (n as f64 / total as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tables(n: i64) -> (Table, Table) {
        let train = Table::builder("train")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_int_column("y", (0..n).collect::<Vec<i64>>())
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_float_column("z", (0..n).map(|i| i as f64).collect::<Vec<f64>>())
            .build()
            .unwrap();
        (train, cand)
    }

    #[test]
    fn expected_size_is_close_to_n() {
        let (train, _) = tables(10_000);
        let cfg = SketchConfig::new(256, 3);
        let sketch = build_left(&train, "k", "y", &cfg).unwrap();
        let size = sketch.len() as f64;
        assert!((size - 256.0).abs() < 80.0, "size {size}");
    }

    #[test]
    fn small_tables_are_fully_kept() {
        let (train, _) = tables(50);
        let cfg = SketchConfig::new(256, 3);
        let sketch = build_left(&train, "k", "y", &cfg).unwrap();
        assert_eq!(sketch.len(), 50);
    }

    #[test]
    fn join_size_is_quadratically_smaller_than_coordinated() {
        // With N = 10k unique keys and n = 256, independent sampling matches
        // on only ~ n²/N ≈ 6.5 keys in expectation, whereas TUPSK recovers
        // ~256. This is the Table I phenomenon.
        let (train, cand) = tables(10_000);
        let cfg = SketchConfig::new(256, 11);
        let ind_join = build_left(&train, "k", "y", &cfg)
            .unwrap()
            .join(&build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap());
        let tup_join = crate::tupsk::build_left(&train, "k", "y", &cfg)
            .unwrap()
            .join(&crate::tupsk::build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap());
        assert!(
            ind_join.len() < 40,
            "INDSK join unexpectedly large: {}",
            ind_join.len()
        );
        assert!(
            tup_join.len() > 200,
            "TUPSK join unexpectedly small: {}",
            tup_join.len()
        );
    }

    #[test]
    fn deterministic_per_seed_but_uncoordinated() {
        let (train, _) = tables(1000);
        let cfg = SketchConfig::new(64, 5);
        let a = build_left(&train, "k", "y", &cfg).unwrap();
        let b = build_left(&train, "k", "y", &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
    }
}
