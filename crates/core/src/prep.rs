//! Shared preparation helpers for the sketch builders.
//!
//! Every builder starts the same way: hash the join-key column, drop NULL
//! keys, and (for the right-hand side) aggregate repeated keys with the
//! featurization function. These helpers centralize that logic so the
//! builders only differ in their *sampling strategy*, mirroring the way the
//! paper presents them.

use joinmi_hash::{digest_map_with_capacity, DigestHashMap, KeyHash, KeyHasher};
use joinmi_table::{group_by_aggregate, Aggregation, DataType, Table, Value};

use crate::Result;

/// The key/value rows of a table prepared for sketching (left side: one entry
/// per row with a non-NULL key, in table order).
#[derive(Debug, Clone)]
pub struct PreparedRows {
    /// Hashed key and value for each usable row, in table order.
    pub rows: Vec<(KeyHash, Value)>,
    /// Data type of the value column.
    pub value_dtype: DataType,
    /// Number of usable rows (`N` in the paper's analysis).
    pub n_rows: usize,
    /// Number of distinct key digests (`m_K`).
    pub distinct_keys: usize,
    /// Frequency of each key digest (`N_k`), keyed by the already-hashed
    /// digest (Fibonacci-hashed map, no second SipHash pass).
    pub key_counts: DigestHashMap<usize>,
}

/// Prepares the left (training) side: hash keys, keep values as-is.
pub fn prepare_left(
    table: &Table,
    key: &str,
    value: &str,
    hasher: &KeyHasher,
) -> Result<PreparedRows> {
    let key_col = table.column(key)?;
    let value_col = table.column(value)?;

    let mut rows = Vec::with_capacity(table.num_rows());
    // Distinct keys are bounded by the row count but often far fewer; a
    // capped pre-size avoids both early rehashes and pathological
    // over-allocation on large low-cardinality tables.
    let mut key_counts = digest_map_with_capacity(table.num_rows().min(1 << 12));
    for i in 0..table.num_rows() {
        let k = key_col.value(i);
        if k.is_null() {
            continue;
        }
        let digest = k.key_hash(hasher);
        *key_counts.entry(digest.raw()).or_default() += 1;
        rows.push((digest, value_col.value(i)));
    }

    Ok(PreparedRows {
        n_rows: rows.len(),
        distinct_keys: key_counts.len(),
        value_dtype: value_col.dtype(),
        rows,
        key_counts,
    })
}

/// Prepares the right (candidate) side: aggregate repeated keys with the
/// featurization function, then hash the now-unique keys.
///
/// Returns the prepared (unique-key) rows; `n_rows` is the number of rows of
/// the *original* candidate table with a non-NULL key, so sketch metadata
/// reflects the true source size.
pub fn prepare_right(
    table: &Table,
    key: &str,
    value: &str,
    agg: Aggregation,
    hasher: &KeyHasher,
) -> Result<PreparedRows> {
    let aggregated = group_by_aggregate(table, key, value, agg)?;
    let agg_value_name = format!("{}({value})", agg.name());
    let key_col = aggregated.column(key)?;
    let value_col = aggregated.column(&agg_value_name)?;

    let mut rows = Vec::with_capacity(aggregated.num_rows());
    let mut key_counts = digest_map_with_capacity(aggregated.num_rows());
    for i in 0..aggregated.num_rows() {
        let k = key_col.value(i);
        if k.is_null() {
            continue;
        }
        let digest = k.key_hash(hasher);
        *key_counts.entry(digest.raw()).or_default() += 1;
        rows.push((digest, value_col.value(i)));
    }

    // Count non-NULL-key rows of the original table for metadata.
    let original_key_col = table.column(key)?;
    let source_rows = (0..table.num_rows())
        .filter(|&i| !original_key_col.value(i).is_null())
        .count();

    Ok(PreparedRows {
        n_rows: source_rows,
        distinct_keys: rows.len(),
        value_dtype: value_col.dtype(),
        rows,
        key_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand() -> Table {
        Table::builder("cand")
            .push_str_column("k", vec!["a", "b", "b", "b", "c", "c", "c"])
            .push_int_column("z", vec![1, 2, 2, 5, 0, 3, 3])
            .build()
            .unwrap()
    }

    #[test]
    fn prepare_left_counts_keys() {
        let hasher = KeyHasher::default_64();
        let prep = prepare_left(&cand(), "k", "z", &hasher).unwrap();
        assert_eq!(prep.n_rows, 7);
        assert_eq!(prep.distinct_keys, 3);
        assert_eq!(prep.rows.len(), 7);
        let a_digest = Value::from("a").key_hash(&hasher).raw();
        let b_digest = Value::from("b").key_hash(&hasher).raw();
        assert_eq!(prep.key_counts[&a_digest], 1);
        assert_eq!(prep.key_counts[&b_digest], 3);
    }

    #[test]
    fn prepare_right_aggregates_to_unique_keys() {
        let hasher = KeyHasher::default_64();
        let prep = prepare_right(&cand(), "k", "z", Aggregation::Avg, &hasher).unwrap();
        assert_eq!(prep.rows.len(), 3);
        assert_eq!(prep.distinct_keys, 3);
        assert_eq!(prep.n_rows, 7);
        assert_eq!(prep.value_dtype, DataType::Float);
        // Aggregated values are {a:1, b:3, c:2}.
        let b_digest = Value::from("b").key_hash(&hasher).raw();
        let b_value = prep
            .rows
            .iter()
            .find(|(k, _)| k.raw() == b_digest)
            .unwrap()
            .1
            .clone();
        assert_eq!(b_value, Value::Float(3.0));
    }

    #[test]
    fn null_keys_are_dropped() {
        let t = Table::builder("t")
            .push_value_column(
                "k",
                DataType::Str,
                &[Value::from("a"), Value::Null, Value::from("b")],
            )
            .unwrap()
            .push_int_column("z", vec![1, 2, 3])
            .build()
            .unwrap();
        let hasher = KeyHasher::default_64();
        let prep = prepare_left(&t, "k", "z", &hasher).unwrap();
        assert_eq!(prep.n_rows, 2);
        let prep_r = prepare_right(&t, "k", "z", Aggregation::Count, &hasher).unwrap();
        assert_eq!(prep_r.rows.len(), 2);
        assert_eq!(prep_r.n_rows, 2);
    }
}
