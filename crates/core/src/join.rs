//! Sketch joins and MI estimation over the recovered sample.
//!
//! Joining two column sketches on their hashed keys recovers a subset of the
//! full join's `(x, y)` pairs (Section IV, "Approach Overview"). The paired
//! sample is then handed to one of the estimators of `joinmi-estimators`,
//! selected from the value data types exactly as in the paper's experiments.

use joinmi_estimators::{
    mi_interval, pearson, select_estimator, spearman, EstimatorError, EstimatorKind,
    EstimatorWorkspace, MiEstimate, MiInterval, Variable, DEFAULT_K,
};
use joinmi_hash::{digest_map_with_capacity, DigestHashMap};
use joinmi_table::{DataType, Value};

use crate::row::ColumnSketch;

/// The paired sample recovered by joining a left sketch with a right sketch.
#[derive(Debug, Clone)]
pub struct JoinedSketch {
    /// Feature values (from the right / augmentation sketch), aligned with `ys`.
    xs: Vec<Value>,
    /// Target values (from the left / training sketch), aligned with `xs`.
    ys: Vec<Value>,
    x_dtype: DataType,
    y_dtype: DataType,
}

impl JoinedSketch {
    /// Joins a left sketch with a right sketch on the hashed join keys.
    #[must_use]
    pub fn from_sketches(left: &ColumnSketch, right: &ColumnSketch) -> Self {
        // Right side: unique keys (first row wins if the builder somehow kept
        // duplicates, mirroring many-to-one semantics). Keys are already
        // 64-bit digests, so the probe map skips SipHash entirely.
        let mut right_map: DigestHashMap<&Value> = digest_map_with_capacity(right.len());
        for row in right.rows() {
            right_map.entry(row.key.raw()).or_insert(&row.value);
        }

        // Coordinated sketches typically match most of the smaller side, so
        // min(|left|, |right|) is a tight pre-size that avoids the doubling
        // reallocations on the hot scoring path.
        let reserve = left.len().min(right.len());
        let mut xs = Vec::with_capacity(reserve);
        let mut ys = Vec::with_capacity(reserve);
        for row in left.rows() {
            if let Some(&x) = right_map.get(&row.key.raw()) {
                if row.value.is_null() || x.is_null() {
                    continue;
                }
                xs.push(x.clone());
                ys.push(row.value.clone());
            }
        }
        Self {
            xs,
            ys,
            x_dtype: right.value_dtype(),
            y_dtype: left.value_dtype(),
        }
    }

    /// Builds a joined sample directly from paired value columns (used for
    /// the full-join baseline, which shares the estimation path with the
    /// sketches).
    #[must_use]
    pub fn from_pairs(
        xs: Vec<Value>,
        ys: Vec<Value>,
        x_dtype: DataType,
        y_dtype: DataType,
    ) -> Self {
        // Keep only pairs where both sides are non-NULL. A single pre-sized
        // pass (instead of zip + unzip) avoids the two incrementally grown
        // intermediate vectors unzip would allocate.
        let n = xs.len().min(ys.len());
        let mut kept_xs = Vec::with_capacity(n);
        let mut kept_ys = Vec::with_capacity(n);
        for (x, y) in xs.into_iter().zip(ys) {
            if !x.is_null() && !y.is_null() {
                kept_xs.push(x);
                kept_ys.push(y);
            }
        }
        Self {
            xs: kept_xs,
            ys: kept_ys,
            x_dtype,
            y_dtype,
        }
    }

    /// Number of recovered pairs (the paper's "sketch join size").
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if no pairs were recovered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Approximate resident heap + inline size of this joined sample, in
    /// bytes.
    ///
    /// Counts the struct itself, both value vectors at their allocated
    /// capacity, and the heap payload of any string values. Used by the
    /// cross-query stage cache to bound resident memory rather than entry
    /// count alone.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        let value_heap: usize = self
            .xs
            .iter()
            .chain(self.ys.iter())
            .map(|v| match v {
                Value::Str(s) => s.len(),
                _ => 0,
            })
            .sum();
        std::mem::size_of::<Self>()
            + (self.xs.capacity() + self.ys.capacity()) * std::mem::size_of::<Value>()
            + value_heap
    }

    /// The feature values.
    #[must_use]
    pub fn xs(&self) -> &[Value] {
        &self.xs
    }

    /// The target values.
    #[must_use]
    pub fn ys(&self) -> &[Value] {
        &self.ys
    }

    /// Data type of the feature values.
    #[must_use]
    pub fn x_dtype(&self) -> DataType {
        self.x_dtype
    }

    /// Data type of the target values.
    #[must_use]
    pub fn y_dtype(&self) -> DataType {
        self.y_dtype
    }

    /// Converts both sides to estimator variables (strings → discrete codes,
    /// numerics → continuous coordinates).
    pub fn variables(&self) -> Result<(Variable, Variable), EstimatorError> {
        let x = Variable::from_values(&self.xs, self.x_dtype)?;
        let y = Variable::from_values(&self.ys, self.y_dtype)?;
        Ok((x, y))
    }

    /// The estimator that the data-type rule would select for this sample.
    pub fn selected_estimator(&self) -> Result<EstimatorKind, EstimatorError> {
        let (x, y) = self.variables()?;
        Ok(select_estimator(&x, &y))
    }

    /// Estimates `I(X; Y)` from the recovered pairs with the automatically
    /// selected estimator and the default `k`.
    pub fn estimate_mi(&self) -> Result<MiEstimate, EstimatorError> {
        self.estimate_mi_with_k(DEFAULT_K)
    }

    /// Estimates MI with the automatically selected estimator and a custom
    /// neighbour count `k` for the KSG-family estimators.
    pub fn estimate_mi_with_k(&self, k: usize) -> Result<MiEstimate, EstimatorError> {
        self.estimate_mi_in(&mut EstimatorWorkspace::new(), k)
    }

    /// Estimates MI with the automatically selected estimator against a
    /// caller-owned [`EstimatorWorkspace`], so callers scoring many joins
    /// (e.g. query candidate ranking) reuse the estimator sort buffers.
    pub fn estimate_mi_in(
        &self,
        ws: &mut EstimatorWorkspace,
        k: usize,
    ) -> Result<MiEstimate, EstimatorError> {
        let (x, y) = self.variables()?;
        let kind = select_estimator(&x, &y);
        joinmi_estimators::estimate_mi_with_workspace(ws, &x, &y, kind, k)
    }

    /// Estimates MI like [`Self::estimate_mi_in`] and additionally computes a
    /// Hutter–Zaffalon posterior credible interval around the point estimate
    /// at the given two-sided `level`.
    ///
    /// The point estimate is produced by exactly the same code path as
    /// [`Self::estimate_mi_in`] — same estimator selection, same workspace
    /// reuse — so its value is bit-for-bit identical to the point-only call;
    /// the interval is pure decoration computed from the contingency table of
    /// the same sample (continuous sides grouped by exact equality).
    pub fn estimate_mi_interval_in(
        &self,
        ws: &mut EstimatorWorkspace,
        k: usize,
        level: f64,
    ) -> Result<(MiEstimate, MiInterval), EstimatorError> {
        let (x, y) = self.variables()?;
        let kind = select_estimator(&x, &y);
        let est = joinmi_estimators::estimate_mi_with_workspace(ws, &x, &y, kind, k)?;
        let interval = mi_interval(&x, &y, est.mi, level)?;
        Ok((est, interval))
    }

    /// Estimates MI with an explicitly chosen estimator.
    pub fn estimate_mi_with(
        &self,
        kind: EstimatorKind,
        k: usize,
    ) -> Result<MiEstimate, EstimatorError> {
        let (x, y) = self.variables()?;
        joinmi_estimators::select::estimate_mi_with(&x, &y, kind, k)
    }

    /// Pearson correlation of the recovered pairs (what the CSK baseline
    /// estimates); `None` when either side is non-numeric or degenerate.
    #[must_use]
    pub fn estimate_pearson(&self) -> Option<f64> {
        let xs: Option<Vec<f64>> = self.xs.iter().map(Value::as_f64).collect();
        let ys: Option<Vec<f64>> = self.ys.iter().map(Value::as_f64).collect();
        pearson(&xs?, &ys?)
    }

    /// Spearman rank correlation of the recovered pairs; `None` when either
    /// side is non-numeric or degenerate.
    #[must_use]
    pub fn estimate_spearman(&self) -> Option<f64> {
        let xs: Option<Vec<f64>> = self.xs.iter().map(Value::as_f64).collect();
        let ys: Option<Vec<f64>> = self.ys.iter().map(Value::as_f64).collect();
        spearman(&xs?, &ys?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Side, SketchConfig};
    use crate::kind::SketchKind;
    use crate::row::SketchRow;
    use joinmi_hash::KeyHash;

    fn sketch(side: Side, dtype: DataType, rows: Vec<(u64, Value)>) -> ColumnSketch {
        ColumnSketch::new(
            SketchKind::Tupsk,
            side,
            rows.into_iter()
                .map(|(k, v)| SketchRow::new(KeyHash(k), v))
                .collect(),
            dtype,
            100,
            10,
            SketchConfig::default(),
        )
    }

    #[test]
    fn join_pairs_by_key_hash() {
        let left = sketch(
            Side::Left,
            DataType::Int,
            vec![
                (1, Value::Int(10)),
                (1, Value::Int(11)),
                (2, Value::Int(20)),
                (9, Value::Int(90)),
            ],
        );
        let right = sketch(
            Side::Right,
            DataType::Float,
            vec![
                (1, Value::Float(0.5)),
                (2, Value::Float(0.7)),
                (3, Value::Float(0.9)),
            ],
        );
        let joined = left.join(&right);
        assert_eq!(joined.len(), 3);
        assert_eq!(
            joined.ys(),
            &[Value::Int(10), Value::Int(11), Value::Int(20)]
        );
        assert_eq!(
            joined.xs(),
            &[Value::Float(0.5), Value::Float(0.5), Value::Float(0.7)]
        );
    }

    #[test]
    fn null_values_are_dropped_from_pairs() {
        let left = sketch(
            Side::Left,
            DataType::Int,
            vec![(1, Value::Null), (2, Value::Int(2))],
        );
        let right = sketch(
            Side::Right,
            DataType::Float,
            vec![(1, Value::Float(1.0)), (2, Value::Float(2.0))],
        );
        let joined = left.join(&right);
        assert_eq!(joined.len(), 1);
    }

    #[test]
    fn estimate_mi_selects_by_type() {
        // Numeric-numeric → MixedKSG; string-string → MLE.
        let n = 64u64;
        let left_rows: Vec<(u64, Value)> =
            (0..n).map(|i| (i, Value::Int((i % 8) as i64))).collect();
        let right_rows: Vec<(u64, Value)> = (0..n)
            .map(|i| (i, Value::Float((i % 8) as f64 * 2.0)))
            .collect();
        let joined = sketch(Side::Left, DataType::Int, left_rows.clone()).join(&sketch(
            Side::Right,
            DataType::Float,
            right_rows,
        ));
        assert_eq!(
            joined.selected_estimator().unwrap(),
            EstimatorKind::MixedKsg
        );
        assert!(joined.estimate_mi().unwrap().mi > 0.5);

        let right_str: Vec<(u64, Value)> = (0..n)
            .map(|i| (i, Value::from(format!("cat{}", i % 8))))
            .collect();
        let left_str: Vec<(u64, Value)> = (0..n)
            .map(|i| (i, Value::from(format!("tag{}", i % 8))))
            .collect();
        let joined = sketch(Side::Left, DataType::Str, left_str).join(&sketch(
            Side::Right,
            DataType::Str,
            right_str,
        ));
        assert_eq!(joined.selected_estimator().unwrap(), EstimatorKind::Mle);
        let est = joined.estimate_mi().unwrap();
        assert_eq!(est.estimator, EstimatorKind::Mle);
        assert!((est.mi - 8.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn from_pairs_filters_nulls_and_estimates() {
        let xs = vec![
            Value::Float(1.0),
            Value::Null,
            Value::Float(3.0),
            Value::Float(4.0),
            Value::Float(5.0),
        ];
        let ys = vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Null,
            Value::Int(5),
        ];
        let j = JoinedSketch::from_pairs(xs, ys, DataType::Float, DataType::Int);
        assert_eq!(j.len(), 3);
        assert!(j.estimate_pearson().unwrap() > 0.99);
        assert!(j.estimate_spearman().unwrap() > 0.99);
    }

    #[test]
    fn correlations_are_none_for_string_data() {
        let j = JoinedSketch::from_pairs(
            vec![Value::from("a")],
            vec![Value::Int(1)],
            DataType::Str,
            DataType::Int,
        );
        assert!(j.estimate_pearson().is_none());
    }

    #[test]
    fn resident_bytes_counts_vectors_and_string_heap() {
        let empty = JoinedSketch::from_pairs(vec![], vec![], DataType::Int, DataType::Int);
        assert!(empty.resident_bytes() >= std::mem::size_of::<JoinedSketch>());

        let ints = JoinedSketch::from_pairs(
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(3), Value::Int(4)],
            DataType::Int,
            DataType::Int,
        );
        let strs = JoinedSketch::from_pairs(
            vec![Value::from("a-reasonably-long-string"), Value::from("x")],
            vec![Value::Int(3), Value::Int(4)],
            DataType::Str,
            DataType::Int,
        );
        assert!(ints.resident_bytes() > empty.resident_bytes());
        // Same pair count, but string payloads add heap bytes.
        assert!(strs.resident_bytes() > ints.resident_bytes());
    }

    #[test]
    fn interval_estimate_reproduces_point_estimate_bit_for_bit() {
        let n = 64u64;
        let left_rows: Vec<(u64, Value)> =
            (0..n).map(|i| (i, Value::Int((i % 8) as i64))).collect();
        let right_rows: Vec<(u64, Value)> = (0..n)
            .map(|i| (i, Value::Float((i % 8) as f64 * 2.0)))
            .collect();
        let joined = sketch(Side::Left, DataType::Int, left_rows).join(&sketch(
            Side::Right,
            DataType::Float,
            right_rows,
        ));
        let mut ws = EstimatorWorkspace::new();
        let point = joined.estimate_mi_in(&mut ws, 3).unwrap();
        let (est, iv) = joined.estimate_mi_interval_in(&mut ws, 3, 0.95).unwrap();
        assert_eq!(point.mi.to_bits(), est.mi.to_bits());
        assert_eq!(point.estimator, est.estimator);
        assert!(iv.ci_lo >= 0.0);
        assert!(iv.ci_lo <= est.mi && est.mi <= iv.ci_hi);
        assert!(iv.variance >= 0.0);
        // A bad confidence level is rejected.
        assert!(joined.estimate_mi_interval_in(&mut ws, 3, 1.5).is_err());
    }

    #[test]
    fn empty_join_estimation_errors() {
        let j = JoinedSketch::from_pairs(vec![], vec![], DataType::Int, DataType::Int);
        assert!(j.is_empty());
        assert!(j.estimate_mi().is_err());
    }
}
