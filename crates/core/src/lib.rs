//! Fixed-size coordinated-sampling sketches for join-free mutual-information
//! estimation — the primary contribution of the paper (Section IV).
//!
//! # The problem
//!
//! Given a base table `Ttrain[K_Y, Y]` and a candidate table `Tcand[K_Z, Z]`,
//! estimate `I(X; Y)` where `X = AGG(Z) GROUP BY K_Z` joined back onto
//! `Ttrain` with a left-outer many-to-one join — *without* materializing the
//! join. Sketches are built per column offline; at query time two sketches
//! are joined on their hashed keys and the recovered paired sample is fed to
//! an off-the-shelf MI estimator.
//!
//! # The sketches
//!
//! | Kind | Sampling frame | Coordination | Size bound | Notes |
//! |---|---|---|---|---|
//! | [`SketchKind::Tupsk`] | individual rows `⟨k, j⟩` | on `⟨k, 1⟩` | `n` | **proposed method** — uniform inclusion probability `1/N`, i.i.d.-like samples |
//! | [`SketchKind::Lv2sk`] | distinct keys, then rows | on `k` | `2n` | two-level baseline; inclusion probability depends on the key-frequency distribution |
//! | [`SketchKind::Prisk`] | distinct keys (priority sampling), then rows | on `k` | `2n` | weighted first level; behaves like LV2SK in practice |
//! | [`SketchKind::Indsk`] | rows, independent Bernoulli | none | expected `n` | no coordination → tiny sketch-join sizes |
//! | [`SketchKind::Csk`] | distinct keys (KMV), first value per key | on `k` | `n` | Correlation-Sketches extension; ignores key multiplicity |
//!
//! # Quick example
//!
//! ```
//! use joinmi_table::{Aggregation, Table};
//! use joinmi_sketch::{SketchConfig, SketchKind};
//!
//! let train = Table::builder("train")
//!     .push_str_column("k", vec!["a", "a", "b", "c"])
//!     .push_int_column("y", vec![1, 2, 3, 4])
//!     .build()
//!     .unwrap();
//! let cand = Table::builder("cand")
//!     .push_str_column("k", vec!["a", "b", "b", "c"])
//!     .push_float_column("z", vec![0.5, 1.0, 2.0, 3.0])
//!     .build()
//!     .unwrap();
//!
//! let cfg = SketchConfig::new(128, 7);
//! let left = SketchKind::Tupsk.build_left(&train, "k", "y", &cfg).unwrap();
//! let right = SketchKind::Tupsk
//!     .build_right(&cand, "k", "z", Aggregation::Avg, &cfg)
//!     .unwrap();
//! let joined = left.join(&right);
//! assert_eq!(joined.len(), 4); // small tables: the sketch recovers the full join
//! let est = joined.estimate_mi().unwrap();
//! assert!(est.mi >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod csk;
pub mod distinct;
pub mod incremental;
pub mod indsk;
pub mod join;
pub mod kind;
pub mod kmv;
pub mod lv2sk;
pub mod persist;
pub mod prep;
pub mod prisk;
pub mod row;
pub mod tupsk;

pub use config::{Side, SketchConfig};
pub use distinct::DistinctSketch;
pub use incremental::RightSketchBuilder;
pub use join::JoinedSketch;
pub use kind::SketchKind;
pub use kmv::BoundedMinSet;
pub use row::{ColumnSketch, SketchRow};

// Re-exported so sketch users do not need a direct dependency on the table
// crate for the common case.
pub use joinmi_table::Aggregation;

/// Result alias using the table error type (sketches operate on tables).
pub type Result<T> = std::result::Result<T, joinmi_table::TableError>;
