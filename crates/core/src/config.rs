//! Sketch configuration.

use joinmi_hash::{KeyHasher, UnitHasher};

/// Which side of the augmentation join a sketch was built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The base / training table (`Ttrain[K_Y, Y]`): repeated keys are
    /// *sampled*, never aggregated.
    Left,
    /// The candidate / augmentation table (`Tcand[K_Z, Z]`): repeated keys
    /// are aggregated with the featurization function before sampling.
    Right,
}

/// Configuration shared by all sketching strategies.
///
/// The single tuning parameter of the paper's method is the maximum sketch
/// size `n`; the seed exists so experiments can repeat trials with
/// independent hash functions while remaining reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Maximum number of sampled rows kept in the sketch (`n`).
    pub size: usize,
    /// Seed for the hash functions and any auxiliary randomness.
    pub seed: u64,
}

impl SketchConfig {
    /// Creates a configuration with the given sketch size and seed.
    #[must_use]
    pub fn new(size: usize, seed: u64) -> Self {
        Self { size, seed }
    }

    /// The key hasher (`h` in the paper): 64-bit MurmurHash3 digests of key
    /// values. The same hasher must be used for both tables of a pair, which
    /// is guaranteed because it only depends on the seed.
    #[must_use]
    pub fn key_hasher(&self) -> KeyHasher {
        // The key hasher is deliberately *not* salted with the seed: sketches
        // built at different times (and by different parties) must agree on
        // key digests to stay coordinated. The seed only affects the
        // unit-range hash below.
        KeyHasher::default_64()
    }

    /// The unit-range hasher (`h_u` in the paper), salted with the seed.
    #[must_use]
    pub fn unit_hasher(&self) -> UnitHasher {
        UnitHasher::new(self.seed)
    }
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self { size: 256, seed: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_experiments() {
        let cfg = SketchConfig::default();
        assert_eq!(cfg.size, 256);
        assert_eq!(cfg.seed, 0);
    }

    #[test]
    fn key_hasher_is_seed_independent_but_unit_hasher_is_not() {
        let a = SketchConfig::new(64, 1);
        let b = SketchConfig::new(64, 2);
        let key = a.key_hasher().hash_str("x");
        assert_eq!(key, b.key_hasher().hash_str("x"));
        assert_ne!(
            a.unit_hasher().unit(key.raw()),
            b.unit_hasher().unit(key.raw())
        );
    }
}
