//! PRISK — two-level sampling with a weighted (priority-sampling) first
//! level.
//!
//! Identical to LV2SK except that the first-level key selection uses
//! priority sampling (Duffield, Lund, Thorup 2007): key `k` with frequency
//! `N_k` receives priority `q_k = N_k / u_k` where `u_k = h_u(k) ∈ (0, 1)`,
//! and the `n` keys with the *largest* priorities are kept. Frequent keys are
//! therefore much more likely to enter the sketch, which avoids LV2SK's
//! "all the mass was in an unselected key" failure mode but still leads to
//! non-uniform tuple inclusion probabilities. The paper reports results that
//! are nearly indistinguishable from LV2SK, which our experiments reproduce.
//!
//! On the aggregated right side all weights are 1, so priority order is the
//! reverse of `u_k` order and PRISK selects exactly the same keys as LV2SK —
//! coordination between the two levels is preserved.

use joinmi_table::{Aggregation, Table};

use crate::config::{Side, SketchConfig};
use crate::kind::SketchKind;
use crate::kmv::BoundedMinSet;
use crate::lv2sk::sample_selected_keys;
use crate::prep::{prepare_left, prepare_right};
use crate::row::{ColumnSketch, SketchRow};
use crate::Result;

/// Builds a PRISK sketch of the base table's `(key, target)` pair.
pub fn build_left(
    table: &Table,
    key: &str,
    value: &str,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let unit = cfg.unit_hasher();
    let prep = prepare_left(table, key, value, &hasher)?;

    // First level: keep the n keys with the largest priority N_k / u_k.
    // Equivalently the n smallest values of u_k / N_k, which lets us reuse
    // the bounded *min* set; the score is mapped to ordered u64 bits.
    let mut key_set = BoundedMinSet::new(cfg.size);
    for (&key_digest, &count) in &prep.key_counts {
        let u = unit.unit(key_digest).max(f64::MIN_POSITIVE);
        let score = u / count as f64;
        key_set.offer(score.to_bits(), key_digest);
    }
    let selected: Vec<u64> = key_set.into_sorted().into_iter().map(|(_, k)| k).collect();

    let rows = sample_selected_keys(&prep, cfg, &selected);
    Ok(ColumnSketch::new(
        SketchKind::Prisk,
        Side::Left,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

/// Builds a PRISK sketch of the candidate table (aggregated side). With unit
/// weights this selects exactly the keys LV2SK would select, so the right
/// sketch stays coordinated with both PRISK and LV2SK left sketches.
pub fn build_right(
    table: &Table,
    key: &str,
    value: &str,
    agg: Aggregation,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let unit = cfg.unit_hasher();
    let prep = prepare_right(table, key, value, agg, &hasher)?;

    let mut set = BoundedMinSet::new(cfg.size);
    set.offer_batch(prep.rows.iter().map(|(digest, val)| {
        (
            unit.digest(digest.raw()),
            SketchRow::new(*digest, val.clone()),
        )
    }));
    let rows: Vec<SketchRow> = set.into_sorted().into_iter().map(|(_, row)| row).collect();
    Ok(ColumnSketch::new(
        SketchKind::Prisk,
        Side::Right,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::Value;

    fn skewed() -> Table {
        // "hot" occupies 95 of 100 rows.
        let mut keys: Vec<String> = vec!["a", "b", "c", "d", "e"]
            .into_iter()
            .map(String::from)
            .collect();
        keys.extend(std::iter::repeat_with(|| "hot".to_owned()).take(95));
        let ys: Vec<i64> = (0..100).collect();
        Table::builder("t")
            .push_str_column("k", keys)
            .push_int_column("y", ys)
            .build()
            .unwrap()
    }

    #[test]
    fn frequent_keys_are_always_selected() {
        // Unlike LV2SK, the hot key's priority is ~95x larger than the
        // singletons', so it should be selected for every seed.
        let hasher = SketchConfig::new(5, 0).key_hasher();
        let hot = Value::from("hot").key_hash(&hasher);
        for seed in 0..50u64 {
            let cfg = SketchConfig::new(5, seed);
            let sketch = build_left(&skewed(), "k", "y", &cfg).unwrap();
            assert!(
                sketch.rows().iter().any(|r| r.key == hot),
                "seed {seed}: hot key missing from PRISK sketch"
            );
        }
    }

    #[test]
    fn size_bound_of_2n_holds() {
        for n in [2usize, 5, 16, 64] {
            let cfg = SketchConfig::new(n, 7);
            let sketch = build_left(&skewed(), "k", "y", &cfg).unwrap();
            assert!(sketch.len() <= 2 * n, "n={n}: {}", sketch.len());
        }
    }

    #[test]
    fn right_side_matches_lv2sk_selection() {
        let cand = Table::builder("cand")
            .push_int_column("k", (0..500).collect::<Vec<i64>>())
            .push_float_column("z", (0..500).map(|i| i as f64).collect::<Vec<f64>>())
            .build()
            .unwrap();
        let cfg = SketchConfig::new(32, 13);
        let prisk = build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap();
        let lv2 = crate::lv2sk::build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap();
        let mut a: Vec<u64> = prisk.rows().iter().map(|r| r.key.raw()).collect();
        let mut b: Vec<u64> = lv2.rows().iter().map(|r| r.key.raw()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SketchConfig::new(16, 21);
        let a = build_left(&skewed(), "k", "y", &cfg).unwrap();
        let b = build_left(&skewed(), "k", "y", &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
    }
}
