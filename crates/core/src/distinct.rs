//! Bounded KMV distinct-count sketch.
//!
//! [`DistinctSketch`] keeps the `k` **smallest distinct** digests observed so
//! far — the classic k-minimum-values estimator, the same selection principle
//! as [`BoundedMinSet`](crate::BoundedMinSet) specialised to deduplicated
//! digests. Under capacity the count is exact; once full, the `k`-th minimum
//! value estimates the distinct cardinality as `(k - 1) / U(k)` where `U(k)`
//! is the `k`-th smallest digest normalised to the unit interval.
//!
//! The repository uses one sketch per profiled column so that
//! `append_rows` can keep per-column distinct counts **fresh forever** in
//! `O(chunk)` time and `O(k)` space, instead of either retaining every value
//! ever seen (unbounded) or letting the counts go stale (the PR 5 trade-off
//! this module removes).
//!
//! # Determinism
//!
//! The state is a pure function of the *set* of digests observed — insertion
//! order never matters — so an in-memory ingest-plus-append, a
//! load-then-append, and a single bulk ingest of the concatenated rows all
//! produce bit-identical sketch state and estimates. The estimator itself is
//! integer-only (`u128` widening, no floats), so estimates are reproducible
//! across platforms.

use std::collections::BTreeSet;

/// A bounded distinct-count sketch over 64-bit digests (KMV estimator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    capacity: usize,
    /// The `≤ capacity` smallest distinct digests seen so far (a `BTreeSet`
    /// gives dedup, ordered iteration, and O(log k) max eviction at once).
    digests: BTreeSet<u64>,
}

impl DistinctSketch {
    /// Creates an empty sketch keeping at most `capacity` distinct digests.
    /// A capacity of 0 is clamped to 1 (the estimator needs one minimum).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            digests: BTreeSet::new(),
        }
    }

    /// The sketch's capacity (`k` of the KMV estimator).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of digests currently kept.
    #[must_use]
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// `true` when no digest has been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// `true` once the sketch holds `capacity` digests (estimates switch from
    /// exact to approximate).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.digests.len() >= self.capacity
    }

    /// Observes one digest. Returns `true` when the kept set changed. A digest
    /// already present, or one not beating the current `k`-th minimum of a
    /// full sketch, costs one `BTreeSet` probe.
    pub fn observe(&mut self, digest: u64) -> bool {
        if self.digests.contains(&digest) {
            return false;
        }
        if self.digests.len() < self.capacity {
            self.digests.insert(digest);
            return true;
        }
        let &max = self.digests.iter().next_back().expect("full sketch");
        if digest < max {
            self.digests.remove(&max);
            self.digests.insert(digest);
            true
        } else {
            false
        }
    }

    /// The estimated number of distinct digests observed: exact while under
    /// capacity, `(k - 1) / U(k)` once full (integer arithmetic, never less
    /// than `k`).
    #[must_use]
    pub fn estimate(&self) -> usize {
        let k = self.digests.len();
        if k < self.capacity {
            return k;
        }
        let kth = *self.digests.iter().next_back().expect("full sketch");
        // (k - 1) / ((kth + 1) / 2^64)  ==  (k - 1) * 2^64 / (kth + 1),
        // computed in u128 so the scale never overflows.
        let est = ((k as u128 - 1) << 64) / (u128::from(kth) + 1);
        usize::try_from(est).unwrap_or(usize::MAX).max(k)
    }

    /// The kept digests in increasing order (persistence).
    pub fn digests(&self) -> impl Iterator<Item = u64> + '_ {
        self.digests.iter().copied()
    }

    /// Rebuilds a sketch from persisted parts. `digests` must be strictly
    /// increasing and at most `capacity` long (the decoder enforces both, so
    /// encode(decode(x)) == x).
    #[must_use]
    pub fn from_parts(capacity: usize, digests: BTreeSet<u64>) -> Self {
        debug_assert!(digests.len() <= capacity.max(1));
        Self {
            capacity: capacity.max(1),
            digests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(i: u64) -> u64 {
        // Cheap SplitMix64-style scramble: well-spread, deterministic.
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn exact_under_capacity() {
        let mut s = DistinctSketch::new(64);
        for i in 0..40 {
            s.observe(digest(i));
            s.observe(digest(i)); // duplicates never count twice
        }
        assert_eq!(s.estimate(), 40);
        assert!(!s.is_full());
    }

    #[test]
    fn estimate_is_close_once_full() {
        for n in [500usize, 5_000, 50_000] {
            let mut s = DistinctSketch::new(256);
            for i in 0..n as u64 {
                s.observe(digest(i));
            }
            assert!(s.is_full());
            let est = s.estimate() as f64;
            let err = (est - n as f64).abs() / n as f64;
            // KMV standard error is ~1/sqrt(k) ≈ 6.3% at k = 256; allow 4σ.
            assert!(err < 0.25, "n={n} est={est} err={err}");
        }
    }

    #[test]
    fn state_is_order_independent() {
        let mut forward = DistinctSketch::new(32);
        let mut backward = DistinctSketch::new(32);
        for i in 0..1000 {
            forward.observe(digest(i));
        }
        for i in (0..1000).rev() {
            backward.observe(digest(i));
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.estimate(), backward.estimate());
    }

    #[test]
    fn estimate_never_below_kept_count() {
        let mut s = DistinctSketch::new(8);
        for d in [u64::MAX, u64::MAX - 1, u64::MAX - 2] {
            s.observe(d);
        }
        assert_eq!(s.estimate(), 3);
        for i in 0..100 {
            s.observe(digest(i));
        }
        assert!(s.estimate() >= 8);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut s = DistinctSketch::new(0);
        assert_eq!(s.capacity(), 1);
        s.observe(7);
        s.observe(3);
        assert_eq!(s.len(), 1);
        assert!(s.estimate() >= 1);
    }

    #[test]
    fn round_trips_through_parts() {
        let mut s = DistinctSketch::new(16);
        for i in 0..200 {
            s.observe(digest(i));
        }
        let rebuilt = DistinctSketch::from_parts(s.capacity(), s.digests().collect());
        assert_eq!(s, rebuilt);
    }
}
