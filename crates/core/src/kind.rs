//! Dynamic dispatch over the sketching strategies.

use std::fmt;
use std::str::FromStr;

use joinmi_table::{Aggregation, Table};

use crate::config::SketchConfig;
use crate::row::ColumnSketch;
use crate::Result;
use crate::{csk, indsk, lv2sk, prisk, tupsk};

/// The sketching strategies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SketchKind {
    /// Tuple-based sampling — the proposed method (Section IV-B).
    Tupsk,
    /// Two-level sampling baseline (Section IV-A).
    Lv2sk,
    /// Two-level sampling with a priority-sampling first level.
    Prisk,
    /// Independent Bernoulli sampling (no coordination).
    Indsk,
    /// Correlation Sketches extended to MI estimation.
    Csk,
}

impl SketchKind {
    /// All strategies, in the order used by the paper's tables.
    pub const ALL: [Self; 5] = [
        Self::Csk,
        Self::Indsk,
        Self::Lv2sk,
        Self::Prisk,
        Self::Tupsk,
    ];

    /// The strategies compared on real data in Table II.
    pub const TABLE2: [Self; 3] = [Self::Lv2sk, Self::Prisk, Self::Tupsk];

    /// Upper-case name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Tupsk => "TUPSK",
            Self::Lv2sk => "LV2SK",
            Self::Prisk => "PRISK",
            Self::Indsk => "INDSK",
            Self::Csk => "CSK",
        }
    }

    /// Builds a sketch of the base (training) table's `(key, target)` pair.
    pub fn build_left(
        self,
        table: &Table,
        key: &str,
        value: &str,
        cfg: &SketchConfig,
    ) -> Result<ColumnSketch> {
        match self {
            Self::Tupsk => tupsk::build_left(table, key, value, cfg),
            Self::Lv2sk => lv2sk::build_left(table, key, value, cfg),
            Self::Prisk => prisk::build_left(table, key, value, cfg),
            Self::Indsk => indsk::build_left(table, key, value, cfg),
            Self::Csk => csk::build_left(table, key, value, cfg),
        }
    }

    /// Builds a sketch of the candidate table's `(key, feature)` pair,
    /// aggregating repeated keys with `agg` (except CSK, which keeps the
    /// first value per key by construction).
    pub fn build_right(
        self,
        table: &Table,
        key: &str,
        value: &str,
        agg: Aggregation,
        cfg: &SketchConfig,
    ) -> Result<ColumnSketch> {
        match self {
            Self::Tupsk => tupsk::build_right(table, key, value, agg, cfg),
            Self::Lv2sk => lv2sk::build_right(table, key, value, agg, cfg),
            Self::Prisk => prisk::build_right(table, key, value, agg, cfg),
            Self::Indsk => indsk::build_right(table, key, value, agg, cfg),
            Self::Csk => csk::build_right(table, key, value, agg, cfg),
        }
    }
}

impl fmt::Display for SketchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SketchKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "TUPSK" => Ok(Self::Tupsk),
            "LV2SK" => Ok(Self::Lv2sk),
            "PRISK" => Ok(Self::Prisk),
            "INDSK" => Ok(Self::Indsk),
            "CSK" => Ok(Self::Csk),
            other => Err(format!("unknown sketch kind `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tables() -> (Table, Table) {
        let train = Table::builder("train")
            .push_str_column("k", vec!["a", "a", "b", "c", "d", "e"])
            .push_int_column("y", vec![1, 2, 3, 4, 5, 6])
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_str_column("k", vec!["a", "b", "b", "c", "d", "e", "e"])
            .push_float_column("z", vec![1.0, 2.0, 4.0, 3.0, 4.0, 5.0, 7.0])
            .build()
            .unwrap();
        (train, cand)
    }

    #[test]
    fn every_kind_builds_and_joins() {
        let (train, cand) = tiny_tables();
        let cfg = SketchConfig::new(8, 1);
        for kind in SketchKind::ALL {
            let left = kind.build_left(&train, "k", "y", &cfg).unwrap();
            let right = kind
                .build_right(&cand, "k", "z", Aggregation::Avg, &cfg)
                .unwrap();
            assert_eq!(left.kind(), kind);
            assert_eq!(right.kind(), kind);
            let joined = left.join(&right);
            assert!(joined.len() <= 6, "{kind}: {}", joined.len());
            if kind != SketchKind::Indsk {
                assert!(
                    joined.len() >= 5,
                    "{kind}: join too small ({})",
                    joined.len()
                );
            }
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for kind in SketchKind::ALL {
            let parsed: SketchKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
            let parsed_lower: SketchKind = kind.name().to_lowercase().parse().unwrap();
            assert_eq!(parsed_lower, kind);
        }
        assert!("BOGUS".parse::<SketchKind>().is_err());
    }
}
