//! Incremental (appendable) construction of right-side sketches.
//!
//! The paper's coordinated sketches are one-pass, bounded-state KMV
//! selections, which makes them incremental *by construction*: the selection
//! frame of a right-side (aggregated) sketch is the set of distinct join-key
//! digests, and a key's digest never changes. Appending rows therefore only
//! has to
//!
//! 1. update the aggregation state of keys currently **in** the selection
//!    (at most `n` of them — evicted keys can never return, rejected keys
//!    can never enter, because the KMV threshold only decreases), and
//! 2. offer the digests of **newly seen** keys, which the selection
//!    threshold rejects with a single comparison once the set is full.
//!
//! That is the `O(changed)` append path: work proportional to the appended
//! rows, never to the table already ingested. The pinned invariant — tested
//! per sketch kind below and property-tested over arbitrary row splits — is
//! that *append-then-finalize is bit-for-bit identical to from-scratch
//! sketching of the concatenated table*.
//!
//! Per-kind notes:
//!
//! * **TUPSK / LV2SK / PRISK / CSK** (right side): all four select whole
//!   aggregated keys by a digest derived only from the key, so the scheme
//!   above applies directly. They differ only in the selection digest
//!   (TUPSK samples on `h_u(⟨k, 1⟩)`, the others on `h_u(k)`) and in the
//!   featurization (CSK always keeps the first value per key).
//! * **INDSK** keeps each aggregated key with probability `n / m`, where `m`
//!   is the *final* distinct-key count — there is no threshold, so the
//!   builder retains aggregation state for every key and replays the
//!   Bernoulli stream at [`RightSketchBuilder::finish`]. Appends are still
//!   `O(changed)`, but finalization is `O(m)`: the price of no coordination.
//!
//! Left-side sketches have no incremental builder: they are query-side
//! artifacts, rebuilt from the (small) query table at query time, while
//! right-side sketches are the durable repository artifact an ingest daemon
//! keeps appending to.
//!
//! # Exactness of incremental aggregation
//!
//! [`AggState`] mirrors [`Aggregation::apply`] operation by operation:
//! running float sums fold in row-arrival order (the same order
//! `group_by_aggregate` feeds `apply`), `MIN` keeps the first minimum and
//! `MAX` the last maximum (matching `Iterator::min`/`max` tie behaviour),
//! and `MODE` maintains the full value-count map so the deterministic
//! `(count desc, value asc)` tie-break sees exactly the counts a one-shot
//! build would. `MEDIAN` necessarily retains the group's numeric values.
//!
//! Keys are identified by their 64-bit Murmur digests here, as everywhere
//! else in the system (sketch joins, the joinability index); two distinct
//! key values colliding in 64 bits would merge their groups, the same
//! standing assumption the rest of the pipeline already makes.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinmi_hash::{
    digest_map_with_capacity, digest_set_with_capacity, DigestHashMap, DigestHashSet, KeyHash,
    SplitMix64, UnitHasher,
};
use joinmi_store::{Result as StoreResult, SliceReader, StoreError};
use joinmi_table::{Aggregation, DataType, Table, TableError, Value};

use crate::config::{Side, SketchConfig};
use crate::kind::SketchKind;
use crate::kmv::{BoundedMinSet, Offer};
use crate::persist::{
    aggregation_from_tag, aggregation_tag, dtype_from_tag, dtype_tag, read_value,
    sketch_kind_from_tag, sketch_kind_tag, write_value,
};
use crate::row::{ColumnSketch, SketchRow};
use crate::Result;

// ---------------------------------------------------------------------------
// Incremental aggregation state.
// ---------------------------------------------------------------------------

/// Exact incremental state of one key group under one [`Aggregation`].
///
/// Feeding values in row-arrival order and finalizing yields the same
/// [`Value`] — bit for bit, including float rounding — as
/// [`Aggregation::apply`] over the whole group at once.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Running numeric sum and count (`AVG`).
    Avg {
        /// Left-fold sum in arrival order.
        sum: f64,
        /// Number of numeric (non-NULL) values folded in.
        count: u64,
    },
    /// Running numeric sum (`SUM`).
    Sum {
        /// Left-fold sum in arrival order.
        sum: f64,
        /// Number of numeric (non-NULL) values folded in.
        count: u64,
    },
    /// Non-NULL row count (`COUNT`).
    Count {
        /// Number of non-NULL values seen.
        count: u64,
    },
    /// Distinct non-NULL values (`COUNT_DISTINCT`).
    CountDistinct {
        /// The distinct values seen so far.
        distinct: std::collections::HashSet<Value>,
    },
    /// Running minimum (`MIN`; first of equal minima wins).
    Min {
        /// Smallest value seen, if any non-NULL value arrived.
        best: Option<Value>,
    },
    /// Running maximum (`MAX`; last of equal maxima wins).
    Max {
        /// Largest value seen, if any non-NULL value arrived.
        best: Option<Value>,
    },
    /// Full value-count map (`MODE`).
    Mode {
        /// Occurrences of each distinct non-NULL value.
        counts: HashMap<Value, u64>,
    },
    /// All numeric values in arrival order (`MEDIAN` has no bounded state).
    Median {
        /// The group's numeric values, in arrival order.
        values: Vec<f64>,
    },
    /// First non-NULL value (`FIRST`).
    First {
        /// The first non-NULL value seen, if any.
        first: Option<Value>,
    },
}

impl AggState {
    /// Empty state for the given aggregation.
    #[must_use]
    pub fn new(agg: Aggregation) -> Self {
        match agg {
            Aggregation::Avg => Self::Avg { sum: 0.0, count: 0 },
            Aggregation::Sum => Self::Sum { sum: 0.0, count: 0 },
            Aggregation::Count => Self::Count { count: 0 },
            Aggregation::CountDistinct => Self::CountDistinct {
                distinct: std::collections::HashSet::new(),
            },
            Aggregation::Min => Self::Min { best: None },
            Aggregation::Max => Self::Max { best: None },
            Aggregation::Mode => Self::Mode {
                counts: HashMap::new(),
            },
            Aggregation::Median => Self::Median { values: Vec::new() },
            Aggregation::First => Self::First { first: None },
        }
    }

    /// Folds one group value into the state (NULLs are ignored, exactly as
    /// [`Aggregation::apply`] filters them out).
    pub fn update(&mut self, value: &Value) {
        if value.is_null() {
            return;
        }
        match self {
            Self::Avg { sum, count } | Self::Sum { sum, count } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            Self::Count { count } => *count += 1,
            Self::CountDistinct { distinct } => {
                if !distinct.contains(value) {
                    distinct.insert(value.clone());
                }
            }
            Self::Min { best } => {
                // Strict `<` keeps the first of equal minima, matching
                // `Iterator::min`.
                if !best.as_ref().is_some_and(|b| value >= b) {
                    *best = Some(value.clone());
                }
            }
            Self::Max { best } => {
                // `>=` keeps the *last* of equal maxima, matching
                // `Iterator::max`.
                if !best.as_ref().is_some_and(|b| value < b) {
                    *best = Some(value.clone());
                }
            }
            Self::Mode { counts } => {
                if let Some(c) = counts.get_mut(value) {
                    *c += 1;
                } else {
                    counts.insert(value.clone(), 1);
                }
            }
            Self::Median { values } => {
                if let Some(x) = value.as_f64() {
                    values.push(x);
                }
            }
            Self::First { first } => {
                if first.is_none() {
                    *first = Some(value.clone());
                }
            }
        }
    }

    /// The aggregated value of the group so far — identical to
    /// [`Aggregation::apply`] over the values fed in.
    #[must_use]
    pub fn finalize(&self) -> Value {
        match self {
            Self::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
            Self::Sum { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum)
                }
            }
            Self::Count { count } => Value::Int(*count as i64),
            Self::CountDistinct { distinct } => Value::Int(distinct.len() as i64),
            Self::Min { best } | Self::Max { best } => best.clone().unwrap_or(Value::Null),
            Self::Mode { counts } => {
                let mut best: Option<(&Value, u64)> = None;
                for (v, &c) in counts {
                    best = match best {
                        None => Some((v, c)),
                        Some((bv, bc)) => {
                            if c > bc || (c == bc && v < bv) {
                                Some((v, c))
                            } else {
                                Some((bv, bc))
                            }
                        }
                    };
                }
                best.map_or(Value::Null, |(v, _)| v.clone())
            }
            Self::Median { values } => {
                if values.is_empty() {
                    return Value::Null;
                }
                let mut nums = values.clone();
                nums.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN medians"));
                let mid = nums.len() / 2;
                if nums.len() % 2 == 1 {
                    Value::Float(nums[mid])
                } else {
                    Value::Float((nums[mid - 1] + nums[mid]) / 2.0)
                }
            }
            Self::First { first } => first.clone().unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// The appendable right-side sketch builder.
// ---------------------------------------------------------------------------

/// Per-kind selection state of a [`RightSketchBuilder`].
#[derive(Debug, Clone)]
enum SelectionState {
    /// Coordinated KMV selection over distinct key digests (TUPSK, LV2SK,
    /// PRISK, CSK right sides).
    Kmv {
        /// Every distinct key digest ever seen (exact distinct-key count and
        /// the double-offer guard).
        seen: DigestHashSet,
        /// The `n` keys with the smallest selection digests; payload is the
        /// raw key digest.
        set: BoundedMinSet<u64>,
        /// Aggregation state for exactly the keys currently in `set`.
        states: DigestHashMap<AggState>,
    },
    /// Uncoordinated Bernoulli selection (INDSK): every key's state is
    /// retained and the stream is replayed at finish time.
    Independent {
        /// Key digests in first-appearance order (the replay order).
        order: Vec<u64>,
        /// Aggregation state for every key.
        states: DigestHashMap<AggState>,
    },
}

/// What one [`RightSketchBuilder::append_table_diff`] call changed about the
/// builder's *selection membership* — the inputs an index maintainer needs to
/// patch postings in `O(changed)` instead of re-diffing whole sketches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppendDiff {
    /// Rows absorbed (non-NULL join key).
    pub rows: usize,
    /// Key digests that entered the selection during this append.
    pub added: Vec<u64>,
    /// Key digests that were evicted from the selection during this append.
    pub removed: Vec<u64>,
    /// `true` when `added`/`removed` describe the membership change exactly
    /// (all KMV kinds). `false` for INDSK, whose Bernoulli selection is only
    /// determined at finish time — callers must diff the finished sketches.
    pub exact_membership: bool,
}

/// Incrementally builds a right-side (aggregated candidate) sketch that can
/// absorb appended rows in `O(changed)` and finalize — repeatedly — to a
/// [`ColumnSketch`] bit-for-bit identical to
/// [`SketchKind::build_right`] over everything appended so far.
#[derive(Debug, Clone)]
pub struct RightSketchBuilder {
    kind: SketchKind,
    /// The aggregation as requested by the caller (recorded, persisted).
    requested_agg: Aggregation,
    /// The effective aggregation (CSK always uses `FIRST`).
    agg: Aggregation,
    cfg: SketchConfig,
    key_column: String,
    value_column: String,
    key_dtype: DataType,
    input_dtype: DataType,
    value_dtype: DataType,
    source_rows: usize,
    state: SelectionState,
    /// Finished-row cache for [`Self::finish_cached`] (KMV kinds only;
    /// derived state — never persisted, rebuilt on demand).
    cache: Option<RowCache>,
    /// Selected keys whose aggregation state changed since the cache was
    /// built.
    dirty_values: DigestHashSet,
    /// Set when keys entered or left the selection since the cache was
    /// built (row order may have changed — the cache must be rebuilt).
    membership_dirty: bool,
}

/// Cached finished rows plus a key-digest → row-position map.
#[derive(Debug, Clone)]
struct RowCache {
    rows: Vec<SketchRow>,
    position: DigestHashMap<usize>,
}

impl RightSketchBuilder {
    /// Creates an empty builder for a `(key, value)` column pair with the
    /// given physical types. Fails like [`SketchKind::build_right`] would if
    /// the aggregation is incompatible with the value type.
    pub fn new(
        kind: SketchKind,
        key_column: &str,
        key_dtype: DataType,
        value_column: &str,
        input_dtype: DataType,
        agg: Aggregation,
        cfg: &SketchConfig,
    ) -> Result<Self> {
        // CSK keeps the first value seen per key by construction; the
        // requested aggregation is recorded but not applied.
        let effective = if kind == SketchKind::Csk {
            Aggregation::First
        } else {
            agg
        };
        let value_dtype = effective.output_dtype(input_dtype)?;
        let state = if kind == SketchKind::Indsk {
            SelectionState::Independent {
                order: Vec::new(),
                states: digest_map_with_capacity(cfg.size),
            }
        } else {
            SelectionState::Kmv {
                seen: digest_set_with_capacity(cfg.size),
                set: BoundedMinSet::new(cfg.size),
                states: digest_map_with_capacity(cfg.size),
            }
        };
        Ok(Self {
            kind,
            requested_agg: agg,
            agg: effective,
            cfg: *cfg,
            key_column: key_column.to_owned(),
            value_column: value_column.to_owned(),
            key_dtype,
            input_dtype,
            value_dtype,
            source_rows: 0,
            state,
            cache: None,
            dirty_values: DigestHashSet::default(),
            membership_dirty: false,
        })
    }

    /// Creates a builder from a table's column pair and ingests the whole
    /// table — the bulk-ingest entry point.
    pub fn start(
        kind: SketchKind,
        table: &Table,
        key: &str,
        value: &str,
        agg: Aggregation,
        cfg: &SketchConfig,
    ) -> Result<Self> {
        let key_dtype = table.column(key)?.dtype();
        let input_dtype = table.column(value)?.dtype();
        let mut builder = Self::new(kind, key, key_dtype, value, input_dtype, agg, cfg)?;
        builder.append_table(table)?;
        Ok(builder)
    }

    /// Appends a chunk of rows (a table with the builder's key and value
    /// columns, same physical types). Returns the number of rows absorbed
    /// (rows with a NULL key are dropped, as at build time).
    ///
    /// Work is `O(chunk rows)`: rows of keys already outside the selection
    /// cost one hash probe; new keys that do not beat the KMV threshold cost
    /// one comparison.
    pub fn append_table(&mut self, chunk: &Table) -> Result<usize> {
        self.append_table_diff(chunk).map(|diff| diff.rows)
    }

    /// Like [`Self::append_table`], additionally reporting the *net*
    /// selection-membership change (see [`AppendDiff`]) so callers
    /// maintaining an inverted index over the selected keys can patch it in
    /// `O(changed)` rather than diffing whole sketches.
    pub fn append_table_diff(&mut self, chunk: &Table) -> Result<AppendDiff> {
        let key_col = chunk.column(&self.key_column)?;
        let value_col = chunk.column(&self.value_column)?;
        for (name, expected, actual) in [
            (&self.key_column, self.key_dtype, key_col.dtype()),
            (&self.value_column, self.input_dtype, value_col.dtype()),
        ] {
            if expected != actual {
                return Err(TableError::Unsupported(format!(
                    "append chunk column `{name}` has dtype {actual}, expected {expected}"
                )));
            }
        }

        let hasher = self.cfg.key_hasher();
        let unit = self.cfg.unit_hasher();
        let mut diff = AppendDiff {
            exact_membership: !matches!(self.state, SelectionState::Independent { .. }),
            ..AppendDiff::default()
        };
        // Net membership change of this call: a key both added and evicted
        // within the chunk must not surface in either list.
        let mut added: DigestHashSet = DigestHashSet::default();
        let mut removed: DigestHashSet = DigestHashSet::default();
        for i in 0..chunk.num_rows() {
            let k = key_col.value(i);
            if k.is_null() {
                continue;
            }
            diff.rows += 1;
            let digest = k.key_hash(&hasher).raw();
            let value = value_col.value(i);
            match &mut self.state {
                SelectionState::Kmv { seen, set, states } => {
                    if let Some(state) = states.get_mut(&digest) {
                        // Key currently selected: fold the value in.
                        state.update(&value);
                        self.dirty_values.insert(digest);
                    } else if seen.insert(digest) {
                        // New distinct key: offer its selection digest. The
                        // threshold comparison inside `offer_evicting` is the
                        // O(changed) fast path — a non-qualifying key costs
                        // exactly one compare.
                        let sel = selection_digest(self.kind, &unit, digest);
                        match set.offer_evicting(sel, digest) {
                            Offer::Kept(evicted) => {
                                added.insert(digest);
                                self.membership_dirty = true;
                                if let Some((_, old_key)) = evicted {
                                    states.remove(&old_key);
                                    // An eviction of a key added earlier in
                                    // this same chunk nets out to nothing.
                                    if !added.remove(&old_key) {
                                        removed.insert(old_key);
                                    }
                                }
                                let mut state = AggState::new(self.agg);
                                state.update(&value);
                                states.insert(digest, state);
                            }
                            Offer::Rejected => {}
                        }
                    }
                    // else: seen before but not selected — it can never enter
                    // the selection (the threshold only decreases), so the
                    // row is skipped entirely.
                }
                SelectionState::Independent { order, states } => {
                    if let Some(state) = states.get_mut(&digest) {
                        state.update(&value);
                    } else {
                        order.push(digest);
                        let mut state = AggState::new(self.agg);
                        state.update(&value);
                        states.insert(digest, state);
                    }
                }
            }
        }
        self.source_rows += diff.rows;
        diff.added = added.into_iter().collect();
        diff.removed = removed.into_iter().collect();
        diff.added.sort_unstable();
        diff.removed.sort_unstable();
        Ok(diff)
    }

    /// Number of keys currently in the selection — for KMV kinds, exactly the
    /// distinct key digests the finished sketch will hold.
    #[must_use]
    pub fn selection_len(&self) -> usize {
        match &self.state {
            SelectionState::Kmv { set, .. } => set.len(),
            SelectionState::Independent { order, .. } => order.len(),
        }
    }

    /// Finalizes the current state into a [`ColumnSketch`] — callable any
    /// number of times; the builder keeps accepting appends afterwards.
    ///
    /// Bit-for-bit identical to [`SketchKind::build_right`] over the
    /// concatenation of everything appended so far.
    #[must_use]
    pub fn finish(&self) -> ColumnSketch {
        let (rows, distinct) = match &self.state {
            SelectionState::Kmv { seen, set, states } => {
                let rows: Vec<SketchRow> = set
                    .sorted()
                    .into_iter()
                    .map(|(_, &digest)| {
                        let value = states
                            .get(&digest)
                            .expect("selected key has aggregation state")
                            .finalize();
                        SketchRow::new(KeyHash(digest), value)
                    })
                    .collect();
                (rows, seen.len())
            }
            SelectionState::Independent { order, states } => {
                let p = crate::indsk::sampling_probability(self.cfg.size, order.len());
                let mut rng = StdRng::seed_from_u64(SplitMix64::derive_seed(
                    self.cfg.seed,
                    crate::indsk::RIGHT_STREAM_INDEX,
                ));
                let rows: Vec<SketchRow> = order
                    .iter()
                    .filter(|_| rng.gen::<f64>() < p)
                    .map(|&digest| {
                        let value = states
                            .get(&digest)
                            .expect("every INDSK key has aggregation state")
                            .finalize();
                        SketchRow::new(KeyHash(digest), value)
                    })
                    .collect();
                (rows, order.len())
            }
        };
        ColumnSketch::new(
            self.kind,
            Side::Right,
            rows,
            self.value_dtype,
            self.source_rows,
            distinct,
            self.cfg,
        )
    }

    /// [`Self::finish`] with an `O(changed)` fast path: when no key entered
    /// or left the selection since the last finish, only the rows of keys
    /// with updated aggregation state are re-finalized; the rest come from a
    /// cached copy. Bit-for-bit identical to [`Self::finish`] (pinned by
    /// tests) — the cache is derived state, never persisted.
    ///
    /// This is what keeps the repository append path proportional to the
    /// appended rows end to end: for a small append the full rebuild's
    /// sort-and-refinalize over all `n` selected keys is the dominant cost.
    pub fn finish_cached(&mut self) -> ColumnSketch {
        let SelectionState::Kmv { states, .. } = &self.state else {
            // INDSK has no incremental representation of its selection.
            return self.finish();
        };
        // Rebuild when there is no cache, membership changed, or — defense
        // in depth — a dirty key is somehow absent from the cached rows (a
        // correctly primed or built cache always covers the selection).
        let must_rebuild = match &self.cache {
            None => true,
            Some(_) if self.membership_dirty => true,
            Some(cache) => self
                .dirty_values
                .iter()
                .any(|d| !cache.position.contains_key(d)),
        };
        if must_rebuild {
            let sketch = self.finish();
            let rows = sketch.rows().to_vec();
            let mut position = digest_map_with_capacity(rows.len());
            for (i, row) in rows.iter().enumerate() {
                position.insert(row.key.raw(), i);
            }
            self.cache = Some(RowCache { rows, position });
            self.membership_dirty = false;
            self.dirty_values.clear();
            return sketch;
        }
        let cache = self.cache.as_mut().expect("checked above");
        for &digest in &self.dirty_values {
            let row = &mut cache.rows[cache.position[&digest]];
            row.value = states
                .get(&digest)
                .expect("dirty key has aggregation state")
                .finalize();
        }
        self.dirty_values.clear();
        let rows = cache.rows.clone();
        ColumnSketch::new(
            self.kind,
            Side::Right,
            rows,
            self.value_dtype,
            self.source_rows,
            self.distinct_keys(),
            self.cfg,
        )
    }

    /// Primes the [`Self::finish_cached`] row cache from an already-finished
    /// sketch of this builder's exact current state — the repository loader
    /// uses the persisted candidate sketch (written from the same builder
    /// state, canonically) so the first append after a reload skips the full
    /// rebuild. A sketch that does not match the current selection is
    /// ignored; the cache is then simply rebuilt on the next finish.
    pub fn prime_cache(&mut self, sketch: &ColumnSketch) {
        let SelectionState::Kmv { states, .. } = &self.state else {
            return;
        };
        if sketch.kind() != self.kind
            || sketch.config() != &self.cfg
            || sketch.source_rows() != self.source_rows
            || sketch.len() != self.selection_len()
        {
            return;
        }
        // Every sketch row must correspond to a selected key (same length +
        // every key selected ⇒ bijection); a same-shape sketch of different
        // keys would otherwise make the patch path serve foreign rows.
        if !sketch
            .rows()
            .iter()
            .all(|r| states.contains_key(&r.key.raw()))
        {
            return;
        }
        let rows = sketch.rows().to_vec();
        let mut position = digest_map_with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            position.insert(row.key.raw(), i);
        }
        self.cache = Some(RowCache { rows, position });
        self.membership_dirty = false;
        self.dirty_values.clear();
    }

    /// The sketching strategy being built.
    #[must_use]
    pub fn kind(&self) -> SketchKind {
        self.kind
    }

    /// The aggregation as requested (CSK records it but applies `FIRST`).
    #[must_use]
    pub fn aggregation(&self) -> Aggregation {
        self.requested_agg
    }

    /// Join-key column name.
    #[must_use]
    pub fn key_column(&self) -> &str {
        &self.key_column
    }

    /// Value (feature) column name.
    #[must_use]
    pub fn value_column(&self) -> &str {
        &self.value_column
    }

    /// Number of non-NULL-key source rows absorbed so far.
    #[must_use]
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// Number of distinct key digests seen so far.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        match &self.state {
            SelectionState::Kmv { seen, .. } => seen.len(),
            SelectionState::Independent { order, .. } => order.len(),
        }
    }
}

/// The digest a right-side key is selected by, per kind. TUPSK samples rows
/// on `h_u(⟨k, j⟩)` — on the aggregated side all keys are unique, so `j = 1`;
/// the two-level and CSK baselines sample keys on `h_u(k)`.
fn selection_digest(kind: SketchKind, unit: &UnitHasher, key_digest: u64) -> u64 {
    match kind {
        SketchKind::Tupsk => unit.pair_digest(key_digest, 1),
        SketchKind::Lv2sk | SketchKind::Prisk | SketchKind::Csk => unit.digest(key_digest),
        SketchKind::Indsk => unreachable!("INDSK has no selection digest"),
    }
}

// ---------------------------------------------------------------------------
// Builder-state persistence (used by the repository's appendable format).
// ---------------------------------------------------------------------------

/// Encoding tags of the two selection-state variants.
const STATE_KMV: u8 = 1;
const STATE_INDEPENDENT: u8 = 2;

fn write_agg_state<W: std::io::Write>(
    w: &mut joinmi_store::Writer<W>,
    state: &AggState,
) -> StoreResult<()> {
    match state {
        AggState::Avg { sum, count } => {
            w.write_u8(1)?;
            w.write_f64(*sum)?;
            w.write_u64(*count)
        }
        AggState::Sum { sum, count } => {
            w.write_u8(2)?;
            w.write_f64(*sum)?;
            w.write_u64(*count)
        }
        AggState::Count { count } => {
            w.write_u8(3)?;
            w.write_u64(*count)
        }
        AggState::CountDistinct { distinct } => {
            w.write_u8(4)?;
            // Canonical order so encode(decode(x)) == x.
            let mut values: Vec<&Value> = distinct.iter().collect();
            values.sort();
            w.write_len(values.len())?;
            for v in values {
                write_value(w, v)?;
            }
            Ok(())
        }
        AggState::Min { best } => {
            w.write_u8(5)?;
            write_opt_value(w, best)
        }
        AggState::Max { best } => {
            w.write_u8(6)?;
            write_opt_value(w, best)
        }
        AggState::Mode { counts } => {
            w.write_u8(7)?;
            let mut pairs: Vec<(&Value, u64)> = counts.iter().map(|(v, &c)| (v, c)).collect();
            pairs.sort_by(|a, b| a.0.cmp(b.0));
            w.write_len(pairs.len())?;
            for (v, c) in pairs {
                write_value(w, v)?;
                w.write_u64(c)?;
            }
            Ok(())
        }
        AggState::Median { values } => {
            w.write_u8(8)?;
            w.write_len(values.len())?;
            for &v in values {
                w.write_f64(v)?;
            }
            Ok(())
        }
        AggState::First { first } => {
            w.write_u8(9)?;
            write_opt_value(w, first)
        }
    }
}

fn write_opt_value<W: std::io::Write>(
    w: &mut joinmi_store::Writer<W>,
    value: &Option<Value>,
) -> StoreResult<()> {
    match value {
        None => w.write_u8(0),
        Some(v) => {
            w.write_u8(1)?;
            write_value(w, v)
        }
    }
}

fn read_agg_state<R: std::io::Read>(r: &mut joinmi_store::Reader<R>) -> StoreResult<AggState> {
    Ok(match r.read_u8("agg state tag")? {
        1 => AggState::Avg {
            sum: r.read_f64("avg sum")?,
            count: r.read_u64("avg count")?,
        },
        2 => AggState::Sum {
            sum: r.read_f64("sum sum")?,
            count: r.read_u64("sum count")?,
        },
        3 => AggState::Count {
            count: r.read_u64("count count")?,
        },
        4 => {
            let n = r.read_len("distinct count")?;
            let mut distinct = std::collections::HashSet::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                distinct.insert(read_value(r)?);
            }
            AggState::CountDistinct { distinct }
        }
        5 => AggState::Min {
            best: read_opt_value(r)?,
        },
        6 => AggState::Max {
            best: read_opt_value(r)?,
        },
        7 => {
            let n = r.read_len("mode value count")?;
            let mut counts = HashMap::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let v = read_value(r)?;
                let c = r.read_u64("mode count")?;
                counts.insert(v, c);
            }
            AggState::Mode { counts }
        }
        8 => {
            let n = r.read_len("median value count")?;
            let mut values = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                values.push(r.read_f64("median value")?);
            }
            AggState::Median { values }
        }
        9 => AggState::First {
            first: read_opt_value(r)?,
        },
        other => {
            return Err(StoreError::corrupt(format!(
                "unknown aggregation state tag {other}"
            )))
        }
    })
}

/// The on-disk tag of an [`AggState`] variant — deliberately the same
/// numbering as [`aggregation_tag`], so a state can be checked against the
/// declared aggregation.
fn agg_state_tag(state: &AggState) -> u8 {
    match state {
        AggState::Avg { .. } => 1,
        AggState::Sum { .. } => 2,
        AggState::Count { .. } => 3,
        AggState::CountDistinct { .. } => 4,
        AggState::Min { .. } => 5,
        AggState::Max { .. } => 6,
        AggState::Mode { .. } => 7,
        AggState::Median { .. } => 8,
        AggState::First { .. } => 9,
    }
}

/// Rejects a persisted aggregation state whose variant does not match the
/// builder's (effective) aggregation.
fn check_state_matches_aggregation(state: &AggState, effective: Aggregation) -> StoreResult<()> {
    if agg_state_tag(state) != aggregation_tag(effective) {
        return Err(StoreError::corrupt(
            "aggregation state variant does not match the declared aggregation",
        ));
    }
    Ok(())
}

fn read_opt_value<R: std::io::Read>(r: &mut joinmi_store::Reader<R>) -> StoreResult<Option<Value>> {
    match r.read_u8("optional value flag")? {
        0 => Ok(None),
        1 => Ok(Some(read_value(r)?)),
        other => Err(StoreError::corrupt(format!(
            "invalid optional-value flag {other}"
        ))),
    }
}

impl RightSketchBuilder {
    /// Serializes the full builder state (canonical bytes: decode → encode
    /// reproduces the input exactly).
    pub fn write_state<W: std::io::Write>(
        &self,
        w: &mut joinmi_store::Writer<W>,
    ) -> StoreResult<()> {
        w.write_u8(sketch_kind_tag(self.kind))?;
        w.write_u8(aggregation_tag(self.requested_agg))?;
        w.write_u8(dtype_tag(self.key_dtype))?;
        w.write_u8(dtype_tag(self.input_dtype))?;
        w.write_len(self.cfg.size)?;
        w.write_u64(self.cfg.seed)?;
        w.write_str(&self.key_column)?;
        w.write_str(&self.value_column)?;
        w.write_len(self.source_rows)?;
        match &self.state {
            SelectionState::Kmv { seen, set, states } => {
                w.write_u8(STATE_KMV)?;
                let mut digests: Vec<u64> = seen.iter().copied().collect();
                digests.sort_unstable();
                w.write_len(digests.len())?;
                for d in digests {
                    w.write_u64(d)?;
                }
                let entries = set.entries();
                w.write_len(entries.len())?;
                for (sel, seq, &key_digest) in entries {
                    w.write_u64(sel)?;
                    w.write_u64(seq)?;
                    w.write_u64(key_digest)?;
                    write_agg_state(
                        w,
                        states
                            .get(&key_digest)
                            .expect("selected key has aggregation state"),
                    )?;
                }
                Ok(())
            }
            SelectionState::Independent { order, states } => {
                w.write_u8(STATE_INDEPENDENT)?;
                w.write_len(order.len())?;
                for &digest in order {
                    w.write_u64(digest)?;
                    write_agg_state(
                        w,
                        states
                            .get(&digest)
                            .expect("every INDSK key has aggregation state"),
                    )?;
                }
                Ok(())
            }
        }
    }

    /// Deserializes a builder state written by [`Self::write_state`].
    pub fn read_state<R: std::io::Read>(r: &mut joinmi_store::Reader<R>) -> StoreResult<Self> {
        let kind = sketch_kind_from_tag(r.read_u8("builder kind")?)?;
        let requested_agg = aggregation_from_tag(r.read_u8("builder aggregation")?)?;
        let key_dtype = dtype_from_tag(r.read_u8("builder key dtype")?)?;
        let input_dtype = dtype_from_tag(r.read_u8("builder input dtype")?)?;
        let size = r.read_len("builder sketch size")?;
        let seed = r.read_u64("builder sketch seed")?;
        let key_column = r.read_string("builder key column")?;
        let value_column = r.read_string("builder value column")?;
        let source_rows = r.read_len("builder source rows")?;
        let cfg = SketchConfig::new(size, seed);
        let mut builder = Self::new(
            kind,
            &key_column,
            key_dtype,
            &value_column,
            input_dtype,
            requested_agg,
            &cfg,
        )
        .map_err(|e| StoreError::corrupt(format!("invalid builder state: {e}")))?;
        builder.source_rows = source_rows;

        match r.read_u8("builder selection variant")? {
            STATE_KMV => {
                if kind == SketchKind::Indsk {
                    return Err(StoreError::corrupt(
                        "coordinated selection state on INDSK builder",
                    ));
                }
                let seen_count = r.read_len("builder seen-key count")?;
                let mut seen = digest_set_with_capacity(seen_count.min(1 << 20));
                let mut prev: Option<u64> = None;
                for _ in 0..seen_count {
                    let digest = r.read_u64("builder seen key digest")?;
                    // The canonical encoding sorts the seen set; requiring it
                    // keeps encode(decode(x)) == x and rules out duplicates.
                    if prev.is_some_and(|p| p >= digest) {
                        return Err(StoreError::corrupt(
                            "seen key digests must be strictly increasing",
                        ));
                    }
                    prev = Some(digest);
                    seen.insert(digest);
                }
                let entry_count = r.read_len("builder selection entry count")?;
                if entry_count > size {
                    return Err(StoreError::corrupt(format!(
                        "selection holds {entry_count} entries, capacity is {size}"
                    )));
                }
                let mut entries = Vec::with_capacity(entry_count.min(1 << 20));
                let mut states: DigestHashMap<AggState> =
                    digest_map_with_capacity(entry_count.min(1 << 20));
                let mut prev_seq: Option<u64> = None;
                for _ in 0..entry_count {
                    let sel = r.read_u64("builder selection digest")?;
                    let seq = r.read_u64("builder selection seq")?;
                    let key_digest = r.read_u64("builder selection key digest")?;
                    let state = read_agg_state(r)?;
                    if prev_seq.is_some_and(|p| p >= seq) {
                        return Err(StoreError::corrupt(
                            "selection entries must be in strictly increasing seq order",
                        ));
                    }
                    prev_seq = Some(seq);
                    if !seen.contains(&key_digest) {
                        return Err(StoreError::corrupt(
                            "selected key digest missing from the seen set",
                        ));
                    }
                    check_state_matches_aggregation(&state, builder.agg)?;
                    if states.insert(key_digest, state).is_some() {
                        return Err(StoreError::corrupt(
                            "duplicate key digest in selection entries",
                        ));
                    }
                    entries.push((sel, seq, key_digest));
                }
                builder.state = SelectionState::Kmv {
                    seen,
                    set: BoundedMinSet::from_entries(size, entries),
                    states,
                };
            }
            STATE_INDEPENDENT => {
                if kind != SketchKind::Indsk {
                    return Err(StoreError::corrupt(
                        "independent selection state on a coordinated sketch kind",
                    ));
                }
                let count = r.read_len("builder key count")?;
                let mut order = Vec::with_capacity(count.min(1 << 20));
                let mut states: DigestHashMap<AggState> =
                    digest_map_with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let digest = r.read_u64("builder key digest")?;
                    let state = read_agg_state(r)?;
                    check_state_matches_aggregation(&state, builder.agg)?;
                    if states.insert(digest, state).is_some() {
                        return Err(StoreError::corrupt("duplicate key digest in INDSK state"));
                    }
                    order.push(digest);
                }
                builder.state = SelectionState::Independent { order, states };
            }
            other => {
                return Err(StoreError::corrupt(format!(
                    "unknown builder selection variant {other}"
                )))
            }
        }
        if kind == SketchKind::Indsk && !matches!(builder.state, SelectionState::Independent { .. })
        {
            return Err(StoreError::corrupt(
                "coordinated selection state on INDSK builder",
            ));
        }
        Ok(builder)
    }
}

/// Structurally validates a serialized builder state at the start of `buf`
/// without materializing a builder, returning the bytes consumed. The walker
/// mirrors [`RightSketchBuilder::read_state`] check for check — including
/// the semantic ones (aggregation/dtype compatibility, variant-kind
/// agreement, sorted seen set, seq ordering, selection⊆seen, duplicate
/// keys) — which is what lets a lazy repository snapshot defer state
/// decoding while still guaranteeing the eventual decode cannot fail.
/// Bounded transient allocations (the seen digests, the entry key list) are
/// accepted in exchange for that parity.
pub fn validate_builder_state(buf: &[u8]) -> StoreResult<usize> {
    let mut p = SliceReader::new(buf);
    let kind = sketch_kind_from_tag(p.read_u8("builder kind")?)?;
    let requested_agg = aggregation_from_tag(p.read_u8("builder aggregation")?)?;
    dtype_from_tag(p.read_u8("builder key dtype")?)?;
    let input_dtype = dtype_from_tag(p.read_u8("builder input dtype")?)?;
    let size = p.read_len("builder sketch size")?;
    p.read_u64("builder sketch seed")?;
    p.read_str("builder key column")?;
    p.read_str("builder value column")?;
    p.read_len("builder source rows")?;
    // Mirror `RightSketchBuilder::new`: the (effective) aggregation must be
    // compatible with the value dtype or the decode would fail.
    let effective = if kind == SketchKind::Csk {
        Aggregation::First
    } else {
        requested_agg
    };
    effective
        .output_dtype(input_dtype)
        .map_err(|e| StoreError::corrupt(format!("invalid builder state: {e}")))?;
    match p.read_u8("builder selection variant")? {
        STATE_KMV => {
            if kind == SketchKind::Indsk {
                return Err(StoreError::corrupt(
                    "coordinated selection state on INDSK builder",
                ));
            }
            let seen_count = p.read_len("builder seen-key count")?;
            let mut seen = Vec::with_capacity(seen_count.min(1 << 20));
            let mut prev: Option<u64> = None;
            for _ in 0..seen_count {
                let digest = p.read_u64("builder seen key digest")?;
                if prev.is_some_and(|p| p >= digest) {
                    return Err(StoreError::corrupt(
                        "seen key digests must be strictly increasing",
                    ));
                }
                prev = Some(digest);
                seen.push(digest);
            }
            let entry_count = p.read_len("builder selection entry count")?;
            if entry_count > size {
                return Err(StoreError::corrupt(format!(
                    "selection holds {entry_count} entries, capacity is {size}"
                )));
            }
            let mut entry_keys = Vec::with_capacity(entry_count.min(1 << 20));
            let mut prev_seq: Option<u64> = None;
            for _ in 0..entry_count {
                p.read_u64("builder selection digest")?;
                let seq = p.read_u64("builder selection seq")?;
                let key_digest = p.read_u64("builder selection key digest")?;
                if prev_seq.is_some_and(|p| p >= seq) {
                    return Err(StoreError::corrupt(
                        "selection entries must be in strictly increasing seq order",
                    ));
                }
                prev_seq = Some(seq);
                // The seen list was just proven sorted.
                if seen.binary_search(&key_digest).is_err() {
                    return Err(StoreError::corrupt(
                        "selected key digest missing from the seen set",
                    ));
                }
                entry_keys.push(key_digest);
                walk_agg_state(&mut p, effective)?;
            }
            entry_keys.sort_unstable();
            if entry_keys.windows(2).any(|w| w[0] == w[1]) {
                return Err(StoreError::corrupt(
                    "duplicate key digest in selection entries",
                ));
            }
        }
        STATE_INDEPENDENT => {
            if kind != SketchKind::Indsk {
                return Err(StoreError::corrupt(
                    "independent selection state on a coordinated sketch kind",
                ));
            }
            let count = p.read_len("builder key count")?;
            let mut keys = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                keys.push(p.read_u64("builder key digest")?);
                walk_agg_state(&mut p, effective)?;
            }
            keys.sort_unstable();
            if keys.windows(2).any(|w| w[0] == w[1]) {
                return Err(StoreError::corrupt("duplicate key digest in INDSK state"));
            }
        }
        other => {
            return Err(StoreError::corrupt(format!(
                "unknown builder selection variant {other}"
            )))
        }
    }
    Ok(p.position())
}

fn walk_value(p: &mut SliceReader<'_>) -> StoreResult<()> {
    match p.read_u8("value tag")? {
        0 => Ok(()),
        1 | 2 => p.read_slice(8, "value payload").map(|_| ()),
        3 => p.read_str("string value").map(|_| ()),
        other => Err(StoreError::corrupt(format!("unknown value tag {other}"))),
    }
}

fn walk_opt_value(p: &mut SliceReader<'_>) -> StoreResult<()> {
    match p.read_u8("optional value flag")? {
        0 => Ok(()),
        1 => walk_value(p),
        other => Err(StoreError::corrupt(format!(
            "invalid optional-value flag {other}"
        ))),
    }
}

/// Walks one serialized aggregation state, returning its variant tag so the
/// caller can check it against the declared aggregation (mirroring
/// [`check_state_matches_aggregation`]).
fn walk_agg_state(p: &mut SliceReader<'_>, effective: Aggregation) -> StoreResult<()> {
    let tag = p.read_u8("agg state tag")?;
    match tag {
        1 | 2 => p.read_slice(16, "numeric fold state").map(|_| ())?,
        3 => p.read_u64("count state").map(|_| ())?,
        4 => {
            let n = p.read_len("distinct count")?;
            for _ in 0..n {
                walk_value(p)?;
            }
        }
        5 | 6 | 9 => walk_opt_value(p)?,
        7 => {
            let n = p.read_len("mode value count")?;
            for _ in 0..n {
                walk_value(p)?;
                p.read_u64("mode count")?;
            }
        }
        8 => {
            let n = p.read_len("median value count")?;
            let bytes = n
                .checked_mul(8)
                .ok_or_else(|| StoreError::corrupt("median count overflows"))?;
            p.read_slice(bytes, "median values").map(|_| ())?;
        }
        other => {
            return Err(StoreError::corrupt(format!(
                "unknown aggregation state tag {other}"
            )))
        }
    }
    if tag != aggregation_tag(effective) {
        return Err(StoreError::corrupt(
            "aggregation state variant does not match the declared aggregation",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_store::{Reader, Writer};

    /// A deterministic table with skewed string keys, some NULL keys and
    /// values, and `rows` rows.
    fn table_slice(name: &str, rows: std::ops::Range<usize>, dtype: DataType) -> Table {
        let mut keys = Vec::new();
        let mut values = Vec::new();
        for i in rows {
            let key = match i % 11 {
                0 => Value::Null,
                j if j < 6 => Value::from(format!("hot{}", j % 2)),
                j => Value::from(format!("k{}", (i * 7 + j) % 23)),
            };
            keys.push(key);
            let v = match dtype {
                DataType::Int => {
                    if i % 13 == 5 {
                        Value::Null
                    } else {
                        Value::Int((i as i64 * 31) % 17 - 4)
                    }
                }
                DataType::Float => {
                    if i % 13 == 5 {
                        Value::Null
                    } else {
                        Value::Float(((i as f64) * 0.37).sin())
                    }
                }
                DataType::Str => {
                    if i % 13 == 5 {
                        Value::Null
                    } else {
                        Value::from(format!("v{}", (i * 5) % 9))
                    }
                }
            };
            values.push(v);
        }
        Table::builder(name)
            .push_value_column("k", DataType::Str, &keys)
            .unwrap()
            .push_value_column("z", dtype, &values)
            .unwrap()
            .build()
            .unwrap()
    }

    fn assert_sketch_bits_equal(a: &ColumnSketch, b: &ColumnSketch, context: &str) {
        assert_eq!(a.kind(), b.kind(), "{context}: kind");
        assert_eq!(a.len(), b.len(), "{context}: len");
        assert_eq!(a.source_rows(), b.source_rows(), "{context}: source rows");
        assert_eq!(
            a.source_distinct_keys(),
            b.source_distinct_keys(),
            "{context}: distinct keys"
        );
        assert_eq!(a.value_dtype(), b.value_dtype(), "{context}: dtype");
        for (i, (ra, rb)) in a.rows().iter().zip(b.rows()).enumerate() {
            assert_eq!(ra.key, rb.key, "{context}: row {i} key");
            match (&ra.value, &rb.value) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{context}: row {i} float bits");
                }
                (x, y) => assert_eq!(x, y, "{context}: row {i} value"),
            }
        }
    }

    #[test]
    fn one_shot_builder_matches_build_right_for_every_kind_and_agg() {
        let cfg = SketchConfig::new(16, 5);
        for kind in SketchKind::ALL {
            for (agg, dtype) in [
                (Aggregation::Avg, DataType::Float),
                (Aggregation::Avg, DataType::Int),
                (Aggregation::Sum, DataType::Int),
                (Aggregation::Count, DataType::Str),
                (Aggregation::CountDistinct, DataType::Str),
                (Aggregation::Min, DataType::Int),
                (Aggregation::Max, DataType::Float),
                (Aggregation::Mode, DataType::Str),
                (Aggregation::Mode, DataType::Int),
                (Aggregation::Median, DataType::Float),
                (Aggregation::First, DataType::Str),
            ] {
                let table = table_slice("t", 0..230, dtype);
                let direct = kind.build_right(&table, "k", "z", agg, &cfg).unwrap();
                let built = RightSketchBuilder::start(kind, &table, "k", "z", agg, &cfg)
                    .unwrap()
                    .finish();
                assert_sketch_bits_equal(&direct, &built, &format!("{kind}/{agg}"));
            }
        }
    }

    #[test]
    fn append_then_finalize_equals_from_scratch_for_every_kind() {
        let cfg = SketchConfig::new(12, 9);
        for kind in SketchKind::ALL {
            let full = table_slice("t", 0..300, DataType::Float);
            let direct = kind
                .build_right(&full, "k", "z", Aggregation::Avg, &cfg)
                .unwrap();
            // Split 0..300 into uneven chunks, including an empty one.
            let mut builder = RightSketchBuilder::start(
                kind,
                &table_slice("t", 0..57, DataType::Float),
                "k",
                "z",
                Aggregation::Avg,
                &cfg,
            )
            .unwrap();
            for chunk in [57..57, 57..110, 110..111, 111..299, 299..300] {
                builder
                    .append_table(&table_slice("t", chunk, DataType::Float))
                    .unwrap();
            }
            assert_sketch_bits_equal(&direct, &builder.finish(), &format!("{kind} append"));
        }
    }

    #[test]
    fn finish_is_repeatable_and_does_not_consume() {
        let cfg = SketchConfig::new(8, 2);
        let mut builder = RightSketchBuilder::start(
            SketchKind::Tupsk,
            &table_slice("t", 0..100, DataType::Int),
            "k",
            "z",
            Aggregation::Mode,
            &cfg,
        )
        .unwrap();
        let first = builder.finish();
        let second = builder.finish();
        assert_sketch_bits_equal(&first, &second, "repeat finish");
        builder
            .append_table(&table_slice("t", 100..150, DataType::Int))
            .unwrap();
        let direct = SketchKind::Tupsk
            .build_right(
                &table_slice("t", 0..150, DataType::Int),
                "k",
                "z",
                Aggregation::Mode,
                &cfg,
            )
            .unwrap();
        assert_sketch_bits_equal(&direct, &builder.finish(), "grow after finish");
    }

    #[test]
    fn finish_cached_is_bit_identical_to_finish_through_appends() {
        // Small capacity forces evictions (membership changes) between
        // value-only appends, exercising both the patch path and the
        // rebuild path of the cache.
        let cfg = SketchConfig::new(6, 3);
        for kind in SketchKind::ALL {
            let mut builder = RightSketchBuilder::start(
                kind,
                &table_slice("t", 0..40, DataType::Float),
                "k",
                "z",
                Aggregation::Avg,
                &cfg,
            )
            .unwrap();
            for chunk in [40..80, 80..81, 81..140, 140..230] {
                builder
                    .append_table(&table_slice("t", chunk, DataType::Float))
                    .unwrap();
                let reference = builder.finish();
                let cached = builder.finish_cached();
                assert_sketch_bits_equal(&reference, &cached, &format!("{kind} cached"));
                // A second cached finish with nothing dirty is stable too.
                assert_sketch_bits_equal(
                    &reference,
                    &builder.finish_cached(),
                    &format!("{kind} cached repeat"),
                );
            }
        }
    }

    #[test]
    fn primed_cache_serves_patched_rows_bit_identically() {
        let cfg = SketchConfig::new(10, 7);
        let mut builder = RightSketchBuilder::start(
            SketchKind::Tupsk,
            &table_slice("t", 0..150, DataType::Float),
            "k",
            "z",
            Aggregation::Avg,
            &cfg,
        )
        .unwrap();
        let sketch = builder.finish();
        // A fresh clone of the builder state (as the loader produces) primed
        // from the persisted sketch must patch values without a rebuild.
        let mut restored = builder.clone();
        restored.prime_cache(&sketch);
        restored
            .append_table(&table_slice("t", 150..170, DataType::Float))
            .unwrap();
        builder
            .append_table(&table_slice("t", 150..170, DataType::Float))
            .unwrap();
        assert_sketch_bits_equal(&builder.finish(), &restored.finish_cached(), "primed patch");
        // Priming with a mismatched sketch is ignored, not trusted.
        let mut fresh = RightSketchBuilder::start(
            SketchKind::Tupsk,
            &table_slice("t", 0..30, DataType::Float),
            "k",
            "z",
            Aggregation::Avg,
            &cfg,
        )
        .unwrap();
        fresh.prime_cache(&sketch);
        assert_sketch_bits_equal(&fresh.finish(), &fresh.finish_cached(), "mismatch ignored");
    }

    #[test]
    fn state_round_trips_and_appends_identically_after_reload() {
        let cfg = SketchConfig::new(10, 4);
        for kind in SketchKind::ALL {
            let mut original = RightSketchBuilder::start(
                kind,
                &table_slice("t", 0..120, DataType::Float),
                "k",
                "z",
                Aggregation::Avg,
                &cfg,
            )
            .unwrap();

            let mut bytes = Writer::new(Vec::new());
            original.write_state(&mut bytes).unwrap();
            let bytes = bytes.into_inner();
            assert_eq!(
                validate_builder_state(&bytes).unwrap(),
                bytes.len(),
                "{kind}: walker consumption"
            );
            let mut restored =
                RightSketchBuilder::read_state(&mut Reader::new(bytes.as_slice())).unwrap();

            // Canonical bytes: encode(decode(x)) == x.
            let mut again = Writer::new(Vec::new());
            restored.write_state(&mut again).unwrap();
            assert_eq!(again.into_inner(), bytes, "{kind}: canonical state bytes");

            // Appending after reload behaves exactly like appending to the
            // original builder.
            let tail = table_slice("t", 120..260, DataType::Float);
            original.append_table(&tail).unwrap();
            restored.append_table(&tail).unwrap();
            assert_sketch_bits_equal(
                &original.finish(),
                &restored.finish(),
                &format!("{kind}: reload append"),
            );

            // And both equal a from-scratch build of the concatenation.
            let direct = kind
                .build_right(
                    &table_slice("t", 0..260, DataType::Float),
                    "k",
                    "z",
                    Aggregation::Avg,
                    &cfg,
                )
                .unwrap();
            assert_sketch_bits_equal(&direct, &restored.finish(), &format!("{kind}: vs direct"));
        }
    }

    #[test]
    fn corrupt_state_bytes_are_typed_errors() {
        let cfg = SketchConfig::new(4, 1);
        let builder = RightSketchBuilder::start(
            SketchKind::Lv2sk,
            &table_slice("t", 0..50, DataType::Int),
            "k",
            "z",
            Aggregation::Min,
            &cfg,
        )
        .unwrap();
        let mut w = Writer::new(Vec::new());
        builder.write_state(&mut w).unwrap();
        let bytes = w.into_inner();

        // Truncations at every prefix must be typed, never a panic.
        for cut in 0..bytes.len() {
            match validate_builder_state(&bytes[..cut]) {
                Err(StoreError::Truncated { .. } | StoreError::Corrupt(_)) => {}
                Ok(_) => panic!("cut at {cut} validated"),
                Err(e) => panic!("cut at {cut}: unexpected error {e:?}"),
            }
        }
        // A bad kind tag is corrupt.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(matches!(
            validate_builder_state(&bad),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            RightSketchBuilder::read_state(&mut Reader::new(bad.as_slice())),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn walker_and_decoder_agree_on_semantically_invalid_states() {
        // `validate_builder_state` must reject everything `read_state`
        // rejects — otherwise a checksum-valid but semantically invalid
        // CANDIDATE_STATE would pass snapshot validation and panic in the
        // "infallible" decode. Each corruption is checked against BOTH.
        let cfg = SketchConfig::new(8, 2);
        let builder = RightSketchBuilder::start(
            SketchKind::Lv2sk,
            &table_slice("t", 0..90, DataType::Float),
            "k",
            "z",
            Aggregation::Avg,
            &cfg,
        )
        .unwrap();
        let mut w = Writer::new(Vec::new());
        builder.write_state(&mut w).unwrap();
        let bytes = w.into_inner();

        let assert_both_reject = |mutated: Vec<u8>, what: &str| {
            assert!(
                matches!(
                    validate_builder_state(&mutated),
                    Err(StoreError::Corrupt(_))
                ),
                "walker must reject {what}"
            );
            assert!(
                matches!(
                    RightSketchBuilder::read_state(&mut Reader::new(mutated.as_slice())),
                    Err(StoreError::Corrupt(_))
                ),
                "decoder must reject {what}"
            );
        };

        // Aggregation incompatible with the value dtype (AVG over Str).
        let mut bad_dtype = bytes.clone();
        assert_eq!(bad_dtype[3], 2, "input dtype tag offset (Float)");
        bad_dtype[3] = 3; // Str
        assert_both_reject(bad_dtype, "AVG over a Str value column");

        // Coordinated (KMV) selection state on an INDSK builder.
        let mut bad_kind = bytes.clone();
        assert_eq!(bad_kind[0], 2, "kind tag offset (Lv2sk)");
        bad_kind[0] = 4; // Indsk
        assert_both_reject(bad_kind, "KMV state on INDSK");

        // Locate the seen list: header fields are fixed-width up to the two
        // column-name strings.
        let mut p = SliceReader::new(&bytes);
        for _ in 0..4 {
            p.read_u8("tags").unwrap();
        }
        p.read_u64("size").unwrap();
        p.read_u64("seed").unwrap();
        p.read_str("key col").unwrap();
        p.read_str("value col").unwrap();
        p.read_u64("source rows").unwrap();
        p.read_u8("variant").unwrap();
        let seen_count = p.read_len("seen count").unwrap();
        assert!(seen_count >= 2, "test table must have several keys");
        let seen_start = p.position();

        // Unsorted seen list (swap the first two digests).
        let mut unsorted = bytes.clone();
        let (a, b) = (seen_start, seen_start + 8);
        for i in 0..8 {
            unsorted.swap(a + i, b + i);
        }
        assert_both_reject(unsorted, "unsorted seen digests");

        // A selection entry key missing from the seen set: corrupt the first
        // seen digest (entries reference the original digests).
        let mut missing = bytes.clone();
        missing[seen_start..seen_start + 8].copy_from_slice(&0u64.to_le_bytes());
        assert_both_reject(missing, "selection key missing from seen");

        // An aggregation state variant that contradicts the declared
        // aggregation: claim MIN while the states are AVG-shaped.
        let mut wrong_variant = bytes.clone();
        assert_eq!(wrong_variant[1], 1, "aggregation tag offset (Avg)");
        wrong_variant[1] = 5; // Min — structurally different state layout
        match validate_builder_state(&wrong_variant) {
            Err(StoreError::Corrupt(_) | StoreError::Truncated { .. }) => {}
            other => panic!("walker must reject variant mismatch, got {other:?}"),
        }
        match RightSketchBuilder::read_state(&mut Reader::new(wrong_variant.as_slice())) {
            Err(StoreError::Corrupt(_) | StoreError::Truncated { .. }) => {}
            other => panic!("decoder must reject variant mismatch, got {other:?}"),
        }
    }

    #[test]
    fn schema_mismatch_on_append_is_rejected() {
        let cfg = SketchConfig::new(8, 0);
        let mut builder = RightSketchBuilder::start(
            SketchKind::Tupsk,
            &table_slice("t", 0..30, DataType::Float),
            "k",
            "z",
            Aggregation::Avg,
            &cfg,
        )
        .unwrap();
        // Wrong value dtype.
        let wrong = table_slice("t", 30..40, DataType::Int);
        assert!(matches!(
            builder.append_table(&wrong),
            Err(TableError::Unsupported(_))
        ));
        // Missing column.
        let missing = Table::builder("t")
            .push_str_column("k", vec!["a"])
            .build()
            .unwrap();
        assert!(builder.append_table(&missing).is_err());
        // The failed appends must not have corrupted the builder.
        let direct = SketchKind::Tupsk
            .build_right(
                &table_slice("t", 0..30, DataType::Float),
                "k",
                "z",
                Aggregation::Avg,
                &cfg,
            )
            .unwrap();
        assert_sketch_bits_equal(&direct, &builder.finish(), "after rejected appends");
    }

    #[test]
    fn agg_state_matches_apply_on_every_aggregation() {
        // Values with NULLs, ties, and float edge cases, folded one by one.
        let groups: Vec<Vec<Value>> = vec![
            vec![Value::Int(3), Value::Int(1), Value::Int(3), Value::Null],
            vec![Value::Float(-0.0), Value::Float(0.0), Value::Float(2.5)],
            vec![Value::Null, Value::Null],
            vec![
                Value::from("b"),
                Value::from("a"),
                Value::from("b"),
                Value::from("a"),
            ],
            vec![Value::Float(1.5)],
        ];
        for agg in Aggregation::ALL {
            for group in &groups {
                // Skip type-incompatible pairings the builder would reject.
                let numeric_only = matches!(
                    agg,
                    Aggregation::Avg | Aggregation::Sum | Aggregation::Median
                );
                let has_str = group.iter().any(|v| matches!(v, Value::Str(_)));
                if numeric_only && has_str {
                    continue;
                }
                let mut state = AggState::new(agg);
                for v in group {
                    state.update(v);
                }
                let expected = agg.apply(group);
                let actual = state.finalize();
                match (&expected, &actual) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "{agg}: float bits");
                    }
                    (a, b) => assert_eq!(a, b, "{agg}"),
                }
            }
        }
    }
}
