//! Sketch rows and per-column sketches.

use joinmi_hash::KeyHash;
use joinmi_table::{DataType, Value};

use crate::config::{Side, SketchConfig};
use crate::join::JoinedSketch;
use crate::kind::SketchKind;

/// One sampled tuple `⟨h(k), value⟩` stored in a sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchRow {
    /// Hash digest of the join-key value.
    pub key: KeyHash,
    /// The sampled target / feature value associated with the key occurrence.
    pub value: Value,
}

impl SketchRow {
    /// Creates a sketch row.
    #[must_use]
    pub fn new(key: KeyHash, value: Value) -> Self {
        Self { key, value }
    }
}

/// A sketch of one `(join key, value column)` pair of a table.
///
/// Built offline with one of the [`SketchKind`]
/// strategies; joined with another column's sketch at query time to recover a
/// sample of the (never materialized) join. Equality is exact (float values
/// compare by canonical bit pattern via [`Value`]), which is what the
/// persistence round-trip tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    kind: SketchKind,
    side: Side,
    rows: Vec<SketchRow>,
    value_dtype: DataType,
    source_rows: usize,
    source_distinct_keys: usize,
    config: SketchConfig,
}

impl ColumnSketch {
    /// Assembles a sketch from its parts (used by the builder modules).
    #[must_use]
    pub fn new(
        kind: SketchKind,
        side: Side,
        rows: Vec<SketchRow>,
        value_dtype: DataType,
        source_rows: usize,
        source_distinct_keys: usize,
        config: SketchConfig,
    ) -> Self {
        Self {
            kind,
            side,
            rows,
            value_dtype,
            source_rows,
            source_distinct_keys,
            config,
        }
    }

    /// The sketching strategy that produced this sketch.
    #[must_use]
    pub fn kind(&self) -> SketchKind {
        self.kind
    }

    /// Which side of the join this sketch represents.
    #[must_use]
    pub fn side(&self) -> Side {
        self.side
    }

    /// The sampled rows.
    #[must_use]
    pub fn rows(&self) -> &[SketchRow] {
        &self.rows
    }

    /// Number of sampled rows actually stored (the paper's "storage size").
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the sketch holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Data type of the sampled values.
    #[must_use]
    pub fn value_dtype(&self) -> DataType {
        self.value_dtype
    }

    /// Number of rows in the source table at build time.
    #[must_use]
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// Number of distinct non-NULL join-key values in the source table.
    #[must_use]
    pub fn source_distinct_keys(&self) -> usize {
        self.source_distinct_keys
    }

    /// The configuration the sketch was built with.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Number of distinct key digests stored in the sketch.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        let mut keys: Vec<u64> = self.rows.iter().map(|r| r.key.raw()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Joins this (left) sketch with a right-side sketch on the hashed keys,
    /// recovering paired `(y, x)` samples of the join result.
    ///
    /// The right sketch is expected to have unique keys (aggregated side);
    /// if it does not, the first row per key wins, mirroring the behaviour of
    /// a many-to-one join.
    #[must_use]
    pub fn join(&self, right: &ColumnSketch) -> JoinedSketch {
        JoinedSketch::from_sketches(self, right)
    }

    /// A 128-bit content fingerprint of the sketch, stable across runs and
    /// processes.
    ///
    /// Two sketches fingerprint equal exactly when they are `==`: the digest
    /// covers the strategy, side, value dtype, build configuration, source
    /// cardinalities, and every stored row (key digest plus the value in the
    /// same canonical form `Value`'s `Eq`/`Hash` use, so `-0.0`/`+0.0` and
    /// all NaN payloads collapse). The cross-query stage cache keys on this
    /// to recognise "the same left sketch" across distinct query objects.
    #[must_use]
    pub fn content_fingerprint(&self) -> (u64, u64) {
        // 25 bytes covers the fixed-size header fields; rows dominate.
        let mut bytes = Vec::with_capacity(64 + self.rows.len() * 17);
        bytes.push(self.kind as u8);
        bytes.push(match self.side {
            Side::Left => 0u8,
            Side::Right => 1u8,
        });
        bytes.push(self.value_dtype as u8);
        bytes.extend_from_slice(&(self.config.size as u64).to_le_bytes());
        bytes.extend_from_slice(&self.config.seed.to_le_bytes());
        bytes.extend_from_slice(&(self.source_rows as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.source_distinct_keys as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.rows.len() as u64).to_le_bytes());
        for row in &self.rows {
            bytes.extend_from_slice(&row.key.raw().to_le_bytes());
            encode_value(&mut bytes, &row.value);
        }
        joinmi_hash::murmur3_x64_128(&bytes, CONTENT_FINGERPRINT_SEED)
    }
}

/// Seed for [`ColumnSketch::content_fingerprint`] (`"jmi1SKFP"` as ASCII).
const CONTENT_FINGERPRINT_SEED: u64 = 0x6A6D_6931_534B_4650;

/// Appends a canonical, self-delimiting encoding of `value`.
fn encode_value(bytes: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => bytes.push(0),
        Value::Int(v) => {
            bytes.push(1);
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float(v) => {
            bytes.push(2);
            // Mirror Value's canonical float bits: one NaN pattern, -0 == +0.
            let bits = if v.is_nan() {
                f64::NAN.to_bits()
            } else if *v == 0.0 {
                0.0f64.to_bits()
            } else {
                v.to_bits()
            };
            bytes.extend_from_slice(&bits.to_le_bytes());
        }
        Value::Str(s) => {
            bytes.push(3);
            bytes.extend_from_slice(&(s.len() as u64).to_le_bytes());
            bytes.extend_from_slice(s.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sketch(values: Vec<(u64, Value)>) -> ColumnSketch {
        let rows = values
            .into_iter()
            .map(|(k, v)| SketchRow::new(KeyHash(k), v))
            .collect();
        ColumnSketch::new(
            SketchKind::Tupsk,
            Side::Left,
            rows,
            DataType::Int,
            100,
            10,
            SketchConfig::default(),
        )
    }

    #[test]
    fn accessors() {
        let s = sample_sketch(vec![
            (1, Value::Int(5)),
            (2, Value::Int(6)),
            (1, Value::Int(7)),
        ]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.distinct_keys(), 2);
        assert_eq!(s.value_dtype(), DataType::Int);
        assert_eq!(s.source_rows(), 100);
        assert_eq!(s.source_distinct_keys(), 10);
        assert_eq!(s.kind(), SketchKind::Tupsk);
        assert_eq!(s.side(), Side::Left);
        assert_eq!(s.config().size, 256);
    }

    #[test]
    fn content_fingerprint_tracks_equality() {
        let a = sample_sketch(vec![(1, Value::Int(5)), (2, Value::Int(6))]);
        let b = sample_sketch(vec![(1, Value::Int(5)), (2, Value::Int(6))]);
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());

        // Any content difference moves the digest: a value edit, a key edit,
        // a row-order swap (row order is part of sketch identity).
        let value_edit = sample_sketch(vec![(1, Value::Int(5)), (2, Value::Int(7))]);
        let key_edit = sample_sketch(vec![(1, Value::Int(5)), (3, Value::Int(6))]);
        let swapped = sample_sketch(vec![(2, Value::Int(6)), (1, Value::Int(5))]);
        for other in [&value_edit, &key_edit, &swapped] {
            assert_ne!(a.content_fingerprint(), other.content_fingerprint());
        }
    }

    #[test]
    fn content_fingerprint_uses_canonical_floats() {
        let pos = sample_sketch(vec![(1, Value::Float(0.0))]);
        let neg = sample_sketch(vec![(1, Value::Float(-0.0))]);
        assert_eq!(pos, neg);
        assert_eq!(pos.content_fingerprint(), neg.content_fingerprint());

        // A string value must not collide with an int spelling the same bytes.
        let s = sample_sketch(vec![(1, Value::from("5"))]);
        let i = sample_sketch(vec![(1, Value::Int(5))]);
        assert_ne!(s.content_fingerprint(), i.content_fingerprint());
    }
}
