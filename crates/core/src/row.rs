//! Sketch rows and per-column sketches.

use joinmi_hash::KeyHash;
use joinmi_table::{DataType, Value};

use crate::config::{Side, SketchConfig};
use crate::join::JoinedSketch;
use crate::kind::SketchKind;

/// One sampled tuple `⟨h(k), value⟩` stored in a sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchRow {
    /// Hash digest of the join-key value.
    pub key: KeyHash,
    /// The sampled target / feature value associated with the key occurrence.
    pub value: Value,
}

impl SketchRow {
    /// Creates a sketch row.
    #[must_use]
    pub fn new(key: KeyHash, value: Value) -> Self {
        Self { key, value }
    }
}

/// A sketch of one `(join key, value column)` pair of a table.
///
/// Built offline with one of the [`SketchKind`]
/// strategies; joined with another column's sketch at query time to recover a
/// sample of the (never materialized) join. Equality is exact (float values
/// compare by canonical bit pattern via [`Value`]), which is what the
/// persistence round-trip tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    kind: SketchKind,
    side: Side,
    rows: Vec<SketchRow>,
    value_dtype: DataType,
    source_rows: usize,
    source_distinct_keys: usize,
    config: SketchConfig,
}

impl ColumnSketch {
    /// Assembles a sketch from its parts (used by the builder modules).
    #[must_use]
    pub fn new(
        kind: SketchKind,
        side: Side,
        rows: Vec<SketchRow>,
        value_dtype: DataType,
        source_rows: usize,
        source_distinct_keys: usize,
        config: SketchConfig,
    ) -> Self {
        Self {
            kind,
            side,
            rows,
            value_dtype,
            source_rows,
            source_distinct_keys,
            config,
        }
    }

    /// The sketching strategy that produced this sketch.
    #[must_use]
    pub fn kind(&self) -> SketchKind {
        self.kind
    }

    /// Which side of the join this sketch represents.
    #[must_use]
    pub fn side(&self) -> Side {
        self.side
    }

    /// The sampled rows.
    #[must_use]
    pub fn rows(&self) -> &[SketchRow] {
        &self.rows
    }

    /// Number of sampled rows actually stored (the paper's "storage size").
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the sketch holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Data type of the sampled values.
    #[must_use]
    pub fn value_dtype(&self) -> DataType {
        self.value_dtype
    }

    /// Number of rows in the source table at build time.
    #[must_use]
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// Number of distinct non-NULL join-key values in the source table.
    #[must_use]
    pub fn source_distinct_keys(&self) -> usize {
        self.source_distinct_keys
    }

    /// The configuration the sketch was built with.
    #[must_use]
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Number of distinct key digests stored in the sketch.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        let mut keys: Vec<u64> = self.rows.iter().map(|r| r.key.raw()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Joins this (left) sketch with a right-side sketch on the hashed keys,
    /// recovering paired `(y, x)` samples of the join result.
    ///
    /// The right sketch is expected to have unique keys (aggregated side);
    /// if it does not, the first row per key wins, mirroring the behaviour of
    /// a many-to-one join.
    #[must_use]
    pub fn join(&self, right: &ColumnSketch) -> JoinedSketch {
        JoinedSketch::from_sketches(self, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sketch(values: Vec<(u64, Value)>) -> ColumnSketch {
        let rows = values
            .into_iter()
            .map(|(k, v)| SketchRow::new(KeyHash(k), v))
            .collect();
        ColumnSketch::new(
            SketchKind::Tupsk,
            Side::Left,
            rows,
            DataType::Int,
            100,
            10,
            SketchConfig::default(),
        )
    }

    #[test]
    fn accessors() {
        let s = sample_sketch(vec![
            (1, Value::Int(5)),
            (2, Value::Int(6)),
            (1, Value::Int(7)),
        ]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.distinct_keys(), 2);
        assert_eq!(s.value_dtype(), DataType::Int);
        assert_eq!(s.source_rows(), 100);
        assert_eq!(s.source_distinct_keys(), 10);
        assert_eq!(s.kind(), SketchKind::Tupsk);
        assert_eq!(s.side(), Side::Left);
        assert_eq!(s.config().size, 256);
    }
}
