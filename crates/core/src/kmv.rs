//! Bounded "keep the n smallest digests" selection (KMV-style).
//!
//! All coordinated sketches select items whose (unit-range) hash values are
//! among the `n` minimum values seen. [`BoundedMinSet`] maintains that set in
//! one pass with a max-heap, so sketch construction is `O(N log n)` and never
//! holds more than `n` candidate items.
//!
//! # Determinism
//!
//! Every kept item carries an insertion sequence number; ordering is always
//! by `(digest, seq)`. This makes two things bit-for-bit reproducible that a
//! digest-only order cannot: the payload order of digest ties in
//! [`BoundedMinSet::into_sorted`] (a `BinaryHeap` yields ties in arbitrary
//! order), and *which* of several digest-tied maxima is evicted when a
//! smaller digest arrives (the latest-inserted one). Both are pinned by the
//! `tie_*` regression tests below.
//!
//! # Incremental appends
//!
//! The set is the building block of the incremental-ingest path: once full,
//! [`BoundedMinSet::threshold`] exposes the current selection threshold, and
//! [`BoundedMinSet::offer`] rejects a non-qualifying digest with a single
//! comparison — so appending rows to an already-built sketch touches the
//! heap only for the `O(changed)` rows that actually beat the threshold.
//! [`BoundedMinSet::entries`] / [`BoundedMinSet::from_entries`] round-trip
//! the full selection state (digests, sequence numbers, payloads) through
//! persistence so an append after reload behaves exactly like one long
//! build.

use std::collections::BinaryHeap;

/// An item tracked by a [`BoundedMinSet`]: a digest used for ordering, the
/// insertion sequence number used to break digest ties deterministically,
/// plus an opaque payload.
#[derive(Debug, Clone)]
struct HeapItem<T> {
    digest: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.seq == other.seq
    }
}
impl<T> Eq for HeapItem<T> {}
impl<T> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Sequence numbers are unique, so this is a strict total order: the
        // heap's max (and therefore the eviction victim among digest ties)
        // is deterministic regardless of internal heap layout.
        self.digest
            .cmp(&other.digest)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Outcome of [`BoundedMinSet::offer_evicting`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Offer<T> {
    /// The item was kept; if keeping it pushed the set over capacity, the
    /// evicted `(digest, payload)` pair rides along so callers can release
    /// per-item state.
    Kept(Option<(u64, T)>),
    /// The set is full and the digest did not beat the threshold.
    Rejected,
}

impl<T> Offer<T> {
    /// Returns `true` if the offered item was kept.
    #[must_use]
    pub fn is_kept(&self) -> bool {
        matches!(self, Self::Kept(_))
    }
}

/// Keeps the `capacity` items with the smallest digests seen so far.
///
/// Digest ties: while the set is **under capacity every offered item is
/// kept**, including one whose digest equals an item already present (both
/// survive). Only once the set is full does an item tying the current
/// maximum get rejected — so first-offered-wins applies exclusively to ties
/// with the maximum of a *full* set, not to ties in general. For 64-bit
/// salted digests ties are vanishingly rare and never matter statistically;
/// the behaviour is pinned by the `tie_*` regression tests below.
#[derive(Debug, Clone)]
pub struct BoundedMinSet<T> {
    capacity: usize,
    heap: BinaryHeap<HeapItem<T>>,
    /// Next insertion sequence number (assigned only to kept items).
    next_seq: u64,
}

impl<T> BoundedMinSet<T> {
    /// Creates a set that keeps at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
            next_seq: 0,
        }
    }

    /// Offers an item; it is kept if the set is not full or if its digest is
    /// smaller than the current maximum. Returns `true` if the item was kept.
    pub fn offer(&mut self, digest: u64, payload: T) -> bool {
        self.offer_evicting(digest, payload).is_kept()
    }

    /// Offers an item like [`Self::offer`], additionally returning the
    /// `(digest, payload)` pair that was evicted to make room (if any) so
    /// incremental builders can drop per-item state for keys that left the
    /// selection.
    pub fn offer_evicting(&mut self, digest: u64, payload: T) -> Offer<T> {
        if self.capacity == 0 {
            return Offer::Rejected;
        }
        if self.heap.len() < self.capacity {
            self.push(digest, payload);
            Offer::Kept(None)
        } else if self.heap.peek().is_some_and(|top| digest < top.digest) {
            let evicted = self.heap.pop().map(|i| (i.digest, i.payload));
            self.push(digest, payload);
            Offer::Kept(evicted)
        } else {
            Offer::Rejected
        }
    }

    /// Offers every `(digest, payload)` pair in order; returns how many were
    /// kept. Equivalent to a loop over [`Self::offer`] — this is the entry
    /// point the bulk right-side builders (TUPSK/LV2SK/PRISK/CSK) feed their
    /// prepared rows through.
    pub fn offer_batch<I: IntoIterator<Item = (u64, T)>>(&mut self, items: I) -> usize {
        items
            .into_iter()
            .map(|(digest, payload)| usize::from(self.offer(digest, payload)))
            .sum()
    }

    fn push(&mut self, digest: u64, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapItem {
            digest,
            seq,
            payload,
        });
    }

    /// Current number of kept items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no items are kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` once the set holds `capacity` items (from then on the
    /// maximum digest is a true selection threshold).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.capacity
    }

    /// The selection threshold: the largest digest kept, available only once
    /// the set is **full**. While the set is under capacity every offer is
    /// accepted, so the current maximum is *not* a threshold — treating it as
    /// one would wrongly prune appends — and this returns `None`.
    #[must_use]
    pub fn threshold(&self) -> Option<u64> {
        if self.is_full() {
            self.heap.peek().map(|i| i.digest)
        } else {
            None
        }
    }

    /// Consumes the set and returns the kept items sorted by `(digest,
    /// insertion order)` ascending — deterministic even across digest ties.
    #[must_use]
    pub fn into_sorted(self) -> Vec<(u64, T)> {
        let mut items: Vec<HeapItem<T>> = self.heap.into_iter().collect();
        items.sort_by_key(|i| (i.digest, i.seq));
        items.into_iter().map(|i| (i.digest, i.payload)).collect()
    }

    /// The kept items sorted by `(digest, insertion order)` ascending,
    /// borrowing the set — the repeat-finalizable form used by incremental
    /// builders that keep offering after a snapshot is taken.
    #[must_use]
    pub fn sorted(&self) -> Vec<(u64, &T)> {
        let mut items: Vec<&HeapItem<T>> = self.heap.iter().collect();
        items.sort_by_key(|i| (i.digest, i.seq));
        items.into_iter().map(|i| (i.digest, &i.payload)).collect()
    }

    /// The full selection state — `(digest, seq, payload)` sorted by `seq` —
    /// for persistence. Round-trips through [`Self::from_entries`].
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, u64, &T)> {
        let mut items: Vec<&HeapItem<T>> = self.heap.iter().collect();
        items.sort_by_key(|i| i.seq);
        items
            .into_iter()
            .map(|i| (i.digest, i.seq, &i.payload))
            .collect()
    }

    /// Rebuilds a set from persisted `(digest, seq, payload)` entries. The
    /// next sequence number resumes above the largest persisted one, so
    /// appends after a reload order exactly like appends to the original.
    #[must_use]
    pub fn from_entries(capacity: usize, entries: Vec<(u64, u64, T)>) -> Self {
        let next_seq = entries
            .iter()
            .map(|&(_, seq, _)| seq + 1)
            .max()
            .unwrap_or(0);
        let heap: BinaryHeap<HeapItem<T>> = entries
            .into_iter()
            .map(|(digest, seq, payload)| HeapItem {
                digest,
                seq,
                payload,
            })
            .collect();
        Self {
            capacity,
            heap,
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_n_smallest() {
        let mut set = BoundedMinSet::new(3);
        for d in [50u64, 10, 40, 20, 30, 5] {
            set.offer(d, d * 100);
        }
        let kept = set.into_sorted();
        assert_eq!(
            kept.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![5, 10, 20]
        );
        assert_eq!(kept[0].1, 500);
    }

    #[test]
    fn capacity_zero_keeps_nothing() {
        let mut set = BoundedMinSet::new(0);
        assert!(!set.offer(1, ()));
        assert!(set.is_empty());
    }

    #[test]
    fn under_capacity_keeps_everything_and_has_no_threshold() {
        let mut set = BoundedMinSet::new(10);
        for d in 0..5u64 {
            assert!(set.offer(d, ()));
        }
        assert_eq!(set.len(), 5);
        // Regression (PR 5): an under-full set has no selection threshold —
        // its maximum would wrongly prune appends that must be kept.
        assert!(!set.is_full());
        assert_eq!(set.threshold(), None);
        for d in 5..10u64 {
            assert!(set.offer(d, ()));
        }
        assert!(set.is_full());
        assert_eq!(set.threshold(), Some(9));
    }

    #[test]
    fn offer_reports_rejections() {
        let mut set = BoundedMinSet::new(1);
        assert!(set.offer(10, ()));
        assert!(!set.offer(20, ()));
        assert!(set.offer(5, ()));
        assert_eq!(set.threshold(), Some(5));
    }

    #[test]
    fn tie_with_current_max_under_capacity_is_kept() {
        // Regression test for the documented tie semantics: under capacity a
        // digest equal to the current maximum is still pushed, so both items
        // survive — and they come out in insertion order.
        let mut set = BoundedMinSet::new(3);
        assert!(set.offer(10, "first"));
        assert!(set.offer(10, "second"));
        assert_eq!(set.len(), 2);
        let kept = set.into_sorted();
        assert_eq!(kept, vec![(10, "first"), (10, "second")]);
    }

    #[test]
    fn tie_with_max_when_full_is_rejected_first_wins() {
        let mut set = BoundedMinSet::new(2);
        assert!(set.offer(5, "a"));
        assert!(set.offer(10, "b"));
        // Full set: a tie with the maximum is rejected (the earlier item
        // wins); only a strictly smaller digest evicts.
        assert!(!set.offer(10, "late"));
        assert_eq!(set.threshold(), Some(10));
        assert!(set.offer(9, "evictor"));
        let kept = set.into_sorted();
        assert_eq!(kept, vec![(5, "a"), (9, "evictor")]);
    }

    #[test]
    fn tied_payload_order_is_insertion_order_not_heap_order() {
        // Regression (PR 5): `BinaryHeap::into_iter` yields digest ties in
        // arbitrary order and a digest-only sort key cannot repair the
        // payload order. Many ties through many heap rebuilds must still
        // come out in insertion order.
        let mut set = BoundedMinSet::new(8);
        for (i, d) in [3u64, 1, 3, 2, 3, 1, 2, 3].into_iter().enumerate() {
            set.offer(d, i);
        }
        let kept = set.into_sorted();
        assert_eq!(
            kept,
            vec![
                (1, 1),
                (1, 5),
                (2, 3),
                (2, 6),
                (3, 0),
                (3, 2),
                (3, 4),
                (3, 7)
            ]
        );
    }

    #[test]
    fn eviction_among_digest_ties_removes_the_latest_inserted() {
        let mut set = BoundedMinSet::new(2);
        assert!(set.offer(10, "early"));
        assert!(set.offer(10, "late"));
        // A smaller digest must evict the *later* of the tied maxima, so the
        // survivor matches what a fresh build over the same offer sequence
        // would keep.
        match set.offer_evicting(4, "small") {
            Offer::Kept(Some((10, "late"))) => {}
            other => panic!("expected deterministic eviction of `late`, got {other:?}"),
        }
        assert_eq!(set.into_sorted(), vec![(4, "small"), (10, "early")]);
    }

    #[test]
    fn sorted_borrow_matches_into_sorted() {
        let mut set = BoundedMinSet::new(4);
        for d in [9u64, 2, 7, 2, 5] {
            set.offer(d, d as i32);
        }
        let borrowed: Vec<(u64, i32)> = set.sorted().into_iter().map(|(d, &p)| (d, p)).collect();
        assert_eq!(borrowed, set.into_sorted());
    }

    #[test]
    fn offer_batch_counts_kept() {
        let mut set = BoundedMinSet::new(2);
        let kept = set.offer_batch([(5u64, ()), (9, ()), (20, ()), (1, ())]);
        assert_eq!(kept, 3); // 20 is rejected once the set is full of {5, 9}
        assert_eq!(
            set.into_sorted()
                .iter()
                .map(|&(d, ())| d)
                .collect::<Vec<_>>(),
            vec![1, 5]
        );
    }

    #[test]
    fn entries_round_trip_preserves_order_and_resumes_sequencing() {
        let mut set = BoundedMinSet::new(3);
        for d in [7u64, 7, 3, 9, 7] {
            set.offer(d, format!("p{d}"));
        }
        let entries: Vec<(u64, u64, String)> = set
            .entries()
            .into_iter()
            .map(|(d, s, p)| (d, s, p.clone()))
            .collect();
        let mut restored = BoundedMinSet::from_entries(3, entries);
        assert_eq!(restored.sorted(), set.sorted());
        // Appends after restore must tie-break exactly like appends to the
        // original set.
        let mut original = set.clone();
        original.offer(3, "tail".to_owned());
        restored.offer(3, "tail".to_owned());
        assert_eq!(restored.into_sorted(), original.into_sorted());
    }

    #[test]
    fn selection_is_insertion_order_independent() {
        let digests: Vec<u64> = (0..1000).map(|i| (i * 2_654_435_761u64) % 10_000).collect();
        let mut a = BoundedMinSet::new(50);
        let mut b = BoundedMinSet::new(50);
        for &d in &digests {
            a.offer(d, ());
        }
        for &d in digests.iter().rev() {
            b.offer(d, ());
        }
        let da: Vec<u64> = a.into_sorted().into_iter().map(|(d, _)| d).collect();
        let db: Vec<u64> = b.into_sorted().into_iter().map(|(d, _)| d).collect();
        assert_eq!(da, db);
    }
}
