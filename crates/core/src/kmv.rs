//! Bounded "keep the n smallest digests" selection (KMV-style).
//!
//! All coordinated sketches select items whose (unit-range) hash values are
//! among the `n` minimum values seen. [`BoundedMinSet`] maintains that set in
//! one pass with a max-heap, so sketch construction is `O(N log n)` and never
//! holds more than `n` candidate items.

use std::collections::BinaryHeap;

/// An item tracked by a [`BoundedMinSet`]: a digest used for ordering plus an
/// opaque payload.
#[derive(Debug, Clone)]
struct HeapItem<T> {
    digest: u64,
    payload: T,
}

impl<T> PartialEq for HeapItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest
    }
}
impl<T> Eq for HeapItem<T> {}
impl<T> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.digest.cmp(&other.digest)
    }
}

/// Keeps the `capacity` items with the smallest digests seen so far.
///
/// Digest ties: while the set is **under capacity every offered item is
/// kept**, including one whose digest equals an item already present (both
/// survive). Only once the set is full does an item tying the current
/// maximum get rejected — so first-offered-wins applies exclusively to ties
/// with the maximum of a *full* set, not to ties in general. For 64-bit
/// salted digests ties are vanishingly rare and never matter statistically;
/// the behaviour is pinned by the `tie_*` regression tests below.
#[derive(Debug, Clone)]
pub struct BoundedMinSet<T> {
    capacity: usize,
    heap: BinaryHeap<HeapItem<T>>,
}

impl<T> BoundedMinSet<T> {
    /// Creates a set that keeps at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// Offers an item; it is kept if the set is not full or if its digest is
    /// smaller than the current maximum. Returns `true` if the item was kept.
    pub fn offer(&mut self, digest: u64, payload: T) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(HeapItem { digest, payload });
            true
        } else if let Some(top) = self.heap.peek() {
            if digest < top.digest {
                self.heap.pop();
                self.heap.push(HeapItem { digest, payload });
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// Current number of kept items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no items are kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest digest currently kept (the selection threshold once full).
    #[must_use]
    pub fn threshold(&self) -> Option<u64> {
        self.heap.peek().map(|i| i.digest)
    }

    /// Consumes the set and returns the kept items sorted by digest
    /// (ascending).
    #[must_use]
    pub fn into_sorted(self) -> Vec<(u64, T)> {
        let mut items: Vec<(u64, T)> = self
            .heap
            .into_iter()
            .map(|i| (i.digest, i.payload))
            .collect();
        items.sort_by_key(|(d, _)| *d);
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_n_smallest() {
        let mut set = BoundedMinSet::new(3);
        for d in [50u64, 10, 40, 20, 30, 5] {
            set.offer(d, d * 100);
        }
        let kept = set.into_sorted();
        assert_eq!(
            kept.iter().map(|(d, _)| *d).collect::<Vec<_>>(),
            vec![5, 10, 20]
        );
        assert_eq!(kept[0].1, 500);
    }

    #[test]
    fn capacity_zero_keeps_nothing() {
        let mut set = BoundedMinSet::new(0);
        assert!(!set.offer(1, ()));
        assert!(set.is_empty());
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut set = BoundedMinSet::new(10);
        for d in 0..5u64 {
            assert!(set.offer(d, ()));
        }
        assert_eq!(set.len(), 5);
        assert_eq!(set.threshold(), Some(4));
    }

    #[test]
    fn offer_reports_rejections() {
        let mut set = BoundedMinSet::new(1);
        assert!(set.offer(10, ()));
        assert!(!set.offer(20, ()));
        assert!(set.offer(5, ()));
        assert_eq!(set.threshold(), Some(5));
    }

    #[test]
    fn tie_with_current_max_under_capacity_is_kept() {
        // Regression test for the documented tie semantics: under capacity a
        // digest equal to the current maximum is still pushed, so both items
        // survive.
        let mut set = BoundedMinSet::new(3);
        assert!(set.offer(10, "first"));
        assert!(set.offer(10, "second"));
        assert_eq!(set.len(), 2);
        let kept = set.into_sorted();
        assert_eq!(kept.iter().map(|(d, _)| *d).collect::<Vec<_>>(), [10, 10]);
    }

    #[test]
    fn tie_with_max_when_full_is_rejected_first_wins() {
        let mut set = BoundedMinSet::new(2);
        assert!(set.offer(5, "a"));
        assert!(set.offer(10, "b"));
        // Full set: a tie with the maximum is rejected (the earlier item
        // wins); only a strictly smaller digest evicts.
        assert!(!set.offer(10, "late"));
        assert_eq!(set.threshold(), Some(10));
        assert!(set.offer(9, "evictor"));
        let kept = set.into_sorted();
        assert_eq!(kept, vec![(5, "a"), (9, "evictor")]);
    }

    #[test]
    fn selection_is_insertion_order_independent() {
        let digests: Vec<u64> = (0..1000).map(|i| (i * 2_654_435_761u64) % 10_000).collect();
        let mut a = BoundedMinSet::new(50);
        let mut b = BoundedMinSet::new(50);
        for &d in &digests {
            a.offer(d, ());
        }
        for &d in digests.iter().rev() {
            b.offer(d, ());
        }
        let da: Vec<u64> = a.into_sorted().into_iter().map(|(d, _)| d).collect();
        let db: Vec<u64> = b.into_sorted().into_iter().map(|(d, _)| d).collect();
        assert_eq!(da, db);
    }
}
