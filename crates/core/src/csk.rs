//! CSK — the Correlation Sketches baseline (Santos et al., SIGMOD 2021)
//! extended to estimate MI instead of correlation.
//!
//! CSK performs KMV sampling over *distinct* join keys and stores one value
//! per selected key. It does not prescribe how to handle repeated join keys,
//! so — following the paper's experimental setup — the first value seen for a
//! key is kept on both sides, with no aggregation. Ignoring key multiplicity
//! is exactly what makes CSK mis-estimate MI when the join key distribution
//! is skewed: the recovered sample follows the *distinct-key* distribution of
//! `Y` rather than the row distribution of the actual join result.

use joinmi_hash::digest_set_with_capacity;
use joinmi_table::{Aggregation, Table};

use crate::config::{Side, SketchConfig};
use crate::kind::SketchKind;
use crate::kmv::BoundedMinSet;
use crate::prep::{prepare_left, prepare_right};
use crate::row::{ColumnSketch, SketchRow};
use crate::Result;

/// Builds a CSK sketch of the base table: KMV over distinct keys, first value
/// seen per key.
pub fn build_left(
    table: &Table,
    key: &str,
    value: &str,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let unit = cfg.unit_hasher();
    let prep = prepare_left(table, key, value, &hasher)?;

    let mut seen = digest_set_with_capacity(prep.distinct_keys);
    let mut set = BoundedMinSet::new(cfg.size);
    for (digest, val) in &prep.rows {
        if seen.insert(digest.raw()) {
            set.offer(
                unit.digest(digest.raw()),
                SketchRow::new(*digest, val.clone()),
            );
        }
    }
    let rows: Vec<SketchRow> = set.into_sorted().into_iter().map(|(_, row)| row).collect();
    Ok(ColumnSketch::new(
        SketchKind::Csk,
        Side::Left,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

/// Builds a CSK sketch of the candidate table.
///
/// The `agg` argument is accepted for interface uniformity but ignored: CSK
/// keeps the first value seen for each key (the behaviour described in
/// Section V, "Sketching Methods").
pub fn build_right(
    table: &Table,
    key: &str,
    value: &str,
    agg: Aggregation,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    // CSK ignores the aggregation function; `First` reproduces "the first
    // value seen associated with a join key".
    let _ = agg;
    let hasher = cfg.key_hasher();
    let unit = cfg.unit_hasher();
    let prep = prepare_right(table, key, value, Aggregation::First, &hasher)?;

    let mut set = BoundedMinSet::new(cfg.size);
    set.offer_batch(prep.rows.iter().map(|(digest, val)| {
        (
            unit.digest(digest.raw()),
            SketchRow::new(*digest, val.clone()),
        )
    }));
    let rows: Vec<SketchRow> = set.into_sorted().into_iter().map(|(_, row)| row).collect();
    Ok(ColumnSketch::new(
        SketchKind::Csk,
        Side::Right,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::Value;

    #[test]
    fn one_row_per_key_first_value_wins() {
        let t = Table::builder("t")
            .push_str_column("k", vec!["a", "a", "b", "b", "b"])
            .push_int_column("y", vec![10, 20, 30, 40, 50])
            .build()
            .unwrap();
        let cfg = SketchConfig::new(16, 0);
        let sketch = build_left(&t, "k", "y", &cfg).unwrap();
        assert_eq!(sketch.len(), 2);
        let hasher = cfg.key_hasher();
        let a = Value::from("a").key_hash(&hasher);
        let b = Value::from("b").key_hash(&hasher);
        let a_val = sketch
            .rows()
            .iter()
            .find(|r| r.key == a)
            .unwrap()
            .value
            .clone();
        let b_val = sketch
            .rows()
            .iter()
            .find(|r| r.key == b)
            .unwrap()
            .value
            .clone();
        assert_eq!(a_val, Value::Int(10));
        assert_eq!(b_val, Value::Int(30));
    }

    #[test]
    fn right_side_ignores_requested_aggregation() {
        let t = Table::builder("t")
            .push_str_column("k", vec!["a", "a", "a"])
            .push_int_column("z", vec![1, 100, 200])
            .build()
            .unwrap();
        let cfg = SketchConfig::new(4, 0);
        let sketch = build_right(&t, "k", "z", Aggregation::Avg, &cfg).unwrap();
        assert_eq!(sketch.len(), 1);
        // AVG would be ~100.3; CSK keeps the first value.
        assert_eq!(sketch.rows()[0].value, Value::Int(1));
    }

    #[test]
    fn size_bounded_by_n_and_distinct_keys() {
        let t = Table::builder("t")
            .push_int_column("k", (0..1000).map(|i| i % 77).collect::<Vec<i64>>())
            .push_int_column("y", (0..1000).collect::<Vec<i64>>())
            .build()
            .unwrap();
        let small = build_left(&t, "k", "y", &SketchConfig::new(32, 1)).unwrap();
        assert_eq!(small.len(), 32);
        let big = build_left(&t, "k", "y", &SketchConfig::new(500, 1)).unwrap();
        assert_eq!(big.len(), 77);
    }

    #[test]
    fn coordination_between_sides() {
        let n = 2000i64;
        let train = Table::builder("train")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_int_column("y", (0..n).collect::<Vec<i64>>())
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_float_column("z", (0..n).map(|i| i as f64).collect::<Vec<f64>>())
            .build()
            .unwrap();
        let cfg = SketchConfig::new(128, 9);
        let joined = build_left(&train, "k", "y", &cfg)
            .unwrap()
            .join(&build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap());
        assert_eq!(joined.len(), 128);
    }
}
