//! TUPSK — tuple-based coordinated sampling (the paper's proposed method,
//! Section IV-B).
//!
//! Instead of sampling *keys*, TUPSK samples *rows*: the `j`-th occurrence of
//! key `k` is identified by the derived key `⟨k, j⟩` and the sketch keeps the
//! rows whose `h_u(⟨k, j⟩)` values are among the `n` minima. Because every
//! `⟨k, j⟩` is unique, each row has the same inclusion probability, so the
//! sample recovered from a sketch join is a *uniform* sample of the
//! left-outer join — the property that lets off-the-shelf MI estimators be
//! applied without re-weighting.
//!
//! On the aggregated (right) side all keys are unique, so rows are selected
//! by `h_u(⟨k, 1⟩)`; left-side rows with `j = 1` share that sampling frame,
//! which is where the coordination (and therefore the large expected
//! sketch-join size) comes from. Left rows with `j > 1` cannot match the
//! right sketch's frame and effectively behave like independent Bernoulli
//! samples — the "less coordination means higher sample quality" trade-off
//! discussed in the paper.

use joinmi_hash::digest_map_with_capacity;
use joinmi_table::{Aggregation, Table};

use crate::config::{Side, SketchConfig};
use crate::kind::SketchKind;
use crate::kmv::BoundedMinSet;
use crate::prep::{prepare_left, prepare_right};
use crate::row::{ColumnSketch, SketchRow};
use crate::Result;

/// Builds a TUPSK sketch of the base (training) table's `(key, target)` pair.
pub fn build_left(
    table: &Table,
    key: &str,
    value: &str,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let unit = cfg.unit_hasher();
    let prep = prepare_left(table, key, value, &hasher)?;

    let mut occurrence = digest_map_with_capacity::<u64>(prep.distinct_keys);
    let mut set = BoundedMinSet::new(cfg.size);
    for (digest, val) in &prep.rows {
        let j = occurrence.entry(digest.raw()).or_insert(0);
        *j += 1;
        let sample_digest = unit.pair_digest(digest.raw(), *j);
        set.offer(sample_digest, SketchRow::new(*digest, val.clone()));
    }

    let rows: Vec<SketchRow> = set.into_sorted().into_iter().map(|(_, row)| row).collect();
    Ok(ColumnSketch::new(
        SketchKind::Tupsk,
        Side::Left,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

/// Builds a TUPSK sketch of the candidate table's `(key, feature)` pair,
/// aggregating repeated keys with `agg` first.
pub fn build_right(
    table: &Table,
    key: &str,
    value: &str,
    agg: Aggregation,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let unit = cfg.unit_hasher();
    let prep = prepare_right(table, key, value, agg, &hasher)?;

    // Aggregation produced unique keys; occurrence index is always 1,
    // which is exactly the frame shared with the left sketch.
    let mut set = BoundedMinSet::new(cfg.size);
    set.offer_batch(prep.rows.iter().map(|(digest, val)| {
        (
            unit.pair_digest(digest.raw(), 1),
            SketchRow::new(*digest, val.clone()),
        )
    }));

    let rows: Vec<SketchRow> = set.into_sorted().into_iter().map(|(_, row)| row).collect();
    Ok(ColumnSketch::new(
        SketchKind::Tupsk,
        Side::Right,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::Value;

    fn skewed_train(n_rows: usize) -> Table {
        // Key "hot" appears in 90% of the rows; 10 other keys share the rest.
        let keys: Vec<String> = (0..n_rows)
            .map(|i| {
                if i % 10 != 0 {
                    "hot".to_owned()
                } else {
                    format!("k{}", i % 100)
                }
            })
            .collect();
        let ys: Vec<i64> = (0..n_rows as i64).collect();
        Table::builder("train")
            .push_str_column("k", keys)
            .push_int_column("y", ys)
            .build()
            .unwrap()
    }

    #[test]
    fn sketch_size_is_bounded_by_n() {
        let cfg = SketchConfig::new(64, 3);
        let sketch = build_left(&skewed_train(5000), "k", "y", &cfg).unwrap();
        assert_eq!(sketch.len(), 64);
        assert_eq!(sketch.source_rows(), 5000);
    }

    #[test]
    fn small_tables_are_kept_entirely() {
        let cfg = SketchConfig::new(256, 3);
        let sketch = build_left(&skewed_train(100), "k", "y", &cfg).unwrap();
        assert_eq!(sketch.len(), 100);
    }

    #[test]
    fn row_sampling_is_proportional_to_key_frequency() {
        // With uniform row-inclusion probability, the hot key (90% of rows)
        // should occupy roughly 90% of the sketch.
        let cfg = SketchConfig::new(512, 11);
        let table = skewed_train(20_000);
        let sketch = build_left(&table, "k", "y", &cfg).unwrap();
        let hasher = cfg.key_hasher();
        let hot = Value::from("hot").key_hash(&hasher);
        let hot_count = sketch.rows().iter().filter(|r| r.key == hot).count();
        let frac = hot_count as f64 / sketch.len() as f64;
        assert!((frac - 0.9).abs() < 0.06, "hot fraction {frac}");
    }

    #[test]
    fn coordination_with_right_side() {
        // Left table keys 0..1000 (unique), right table same keys: the join
        // of two sketches of size n should recover close to n pairs.
        let n = 2000i64;
        let train = Table::builder("train")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_int_column("y", (0..n).map(|i| i * 3).collect::<Vec<i64>>())
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_float_column("z", (0..n).map(|i| i as f64).collect::<Vec<f64>>())
            .build()
            .unwrap();
        let cfg = SketchConfig::new(256, 17);
        let left = build_left(&train, "k", "y", &cfg).unwrap();
        let right = build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap();
        let joined = left.join(&right);
        // With unique keys TUPSK behaves like coordinated KMV: every sampled
        // left row's key is also among the right sketch's minima with high
        // probability. Expect a join size close to n (at least 80%).
        assert!(joined.len() >= 200, "join size {}", joined.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SketchConfig::new(128, 5);
        let t = skewed_train(3000);
        let a = build_left(&t, "k", "y", &cfg).unwrap();
        let b = build_left(&t, "k", "y", &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
        let other = build_left(&t, "k", "y", &SketchConfig::new(128, 6)).unwrap();
        assert_ne!(a.rows(), other.rows());
    }

    #[test]
    fn right_side_aggregates_before_sampling() {
        let cand = Table::builder("cand")
            .push_str_column("k", vec!["a", "b", "b", "b", "c", "c", "c"])
            .push_int_column("z", vec![1, 2, 2, 5, 0, 3, 3])
            .build()
            .unwrap();
        let cfg = SketchConfig::new(10, 0);
        let sketch = build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap();
        assert_eq!(sketch.len(), 3);
        assert_eq!(sketch.source_rows(), 7);
        assert_eq!(sketch.source_distinct_keys(), 3);
        let hasher = cfg.key_hasher();
        let b = Value::from("b").key_hash(&hasher);
        let b_row = sketch.rows().iter().find(|r| r.key == b).unwrap();
        assert_eq!(b_row.value, Value::Float(3.0));
    }

    #[test]
    fn missing_columns_error() {
        let cfg = SketchConfig::default();
        assert!(build_left(&skewed_train(10), "nope", "y", &cfg).is_err());
        assert!(build_right(&skewed_train(10), "k", "nope", Aggregation::Avg, &cfg).is_err());
    }
}
