//! Sketch persistence: the on-disk encoding of [`ColumnSketch`].
//!
//! Sketches are the artifact the paper builds *once*, offline; this module
//! makes them durable using the [`joinmi_store`] framing (versioned header,
//! checksummed sections, little-endian wire format). A serialized sketch is
//! two sections:
//!
//! ```text
//! META  (tag 0x01): kind | side | value dtype | config{size, seed}
//!                   | source_rows | source_distinct_keys | row count
//! ROWS  (tag 0x02): key digest column (u64 LE × n), then value column
//!                   (tagged values, in the same row order)
//! ```
//!
//! The digest and value columns are stored separately (columnar) so future
//! readers can scan join keys — e.g. to rebuild an inverted index — without
//! touching the values. Decoding is exact: float values round-trip bit for
//! bit, so a query answered from a loaded sketch is bit-identical to one
//! answered from the in-memory original.
//!
//! This module also owns the tag codecs for the enums shared across
//! artifacts ([`SketchKind`], [`Side`], [`DataType`], [`Value`],
//! [`Aggregation`]), which the repository format in `joinmi_discovery`
//! reuses. Tags are append-only: a tag value, once released, is never
//! reassigned.

use std::io::{Read, Write};

use joinmi_store::{
    read_header, read_section, write_header_with_version, ArtifactKind, Reader, Result,
    SectionBuilder, StoreError, Writer, FORMAT_VERSION_V1,
};
use joinmi_table::{Aggregation, DataType, Value};

use crate::config::{Side, SketchConfig};
use crate::kind::SketchKind;
use crate::row::{ColumnSketch, SketchRow};

/// Section tag of the sketch metadata section.
pub const SECTION_SKETCH_META: u8 = 0x01;
/// Section tag of the sketch row (digest + value columns) section.
pub const SECTION_SKETCH_ROWS: u8 = 0x02;

// ---------------------------------------------------------------------------
// Enum tag codecs (shared with the repository format in joinmi_discovery).
// ---------------------------------------------------------------------------

/// On-disk tag of a [`SketchKind`].
#[must_use]
pub fn sketch_kind_tag(kind: SketchKind) -> u8 {
    match kind {
        SketchKind::Tupsk => 1,
        SketchKind::Lv2sk => 2,
        SketchKind::Prisk => 3,
        SketchKind::Indsk => 4,
        SketchKind::Csk => 5,
    }
}

/// Decodes a [`SketchKind`] tag.
pub fn sketch_kind_from_tag(tag: u8) -> Result<SketchKind> {
    match tag {
        1 => Ok(SketchKind::Tupsk),
        2 => Ok(SketchKind::Lv2sk),
        3 => Ok(SketchKind::Prisk),
        4 => Ok(SketchKind::Indsk),
        5 => Ok(SketchKind::Csk),
        other => Err(StoreError::corrupt(format!(
            "unknown sketch kind tag {other}"
        ))),
    }
}

/// On-disk tag of a [`Side`].
#[must_use]
pub fn side_tag(side: Side) -> u8 {
    match side {
        Side::Left => 1,
        Side::Right => 2,
    }
}

/// Decodes a [`Side`] tag.
pub fn side_from_tag(tag: u8) -> Result<Side> {
    match tag {
        1 => Ok(Side::Left),
        2 => Ok(Side::Right),
        other => Err(StoreError::corrupt(format!("unknown side tag {other}"))),
    }
}

/// On-disk tag of a [`DataType`].
#[must_use]
pub fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
    }
}

/// Decodes a [`DataType`] tag.
pub fn dtype_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Float),
        3 => Ok(DataType::Str),
        other => Err(StoreError::corrupt(format!(
            "unknown data type tag {other}"
        ))),
    }
}

/// On-disk tag of an [`Aggregation`].
#[must_use]
pub fn aggregation_tag(agg: Aggregation) -> u8 {
    match agg {
        Aggregation::Avg => 1,
        Aggregation::Sum => 2,
        Aggregation::Count => 3,
        Aggregation::CountDistinct => 4,
        Aggregation::Min => 5,
        Aggregation::Max => 6,
        Aggregation::Mode => 7,
        Aggregation::Median => 8,
        Aggregation::First => 9,
    }
}

/// Decodes an [`Aggregation`] tag.
pub fn aggregation_from_tag(tag: u8) -> Result<Aggregation> {
    match tag {
        1 => Ok(Aggregation::Avg),
        2 => Ok(Aggregation::Sum),
        3 => Ok(Aggregation::Count),
        4 => Ok(Aggregation::CountDistinct),
        5 => Ok(Aggregation::Min),
        6 => Ok(Aggregation::Max),
        7 => Ok(Aggregation::Mode),
        8 => Ok(Aggregation::Median),
        9 => Ok(Aggregation::First),
        other => Err(StoreError::corrupt(format!(
            "unknown aggregation tag {other}"
        ))),
    }
}

/// Writes one tagged [`Value`]. Floats are stored as exact bit patterns.
pub fn write_value<W: Write>(w: &mut Writer<W>, value: &Value) -> Result<()> {
    match value {
        Value::Null => w.write_u8(0),
        Value::Int(v) => {
            w.write_u8(1)?;
            w.write_i64(*v)
        }
        Value::Float(v) => {
            w.write_u8(2)?;
            w.write_f64(*v)
        }
        Value::Str(s) => {
            w.write_u8(3)?;
            w.write_str(s)
        }
    }
}

/// Reads one tagged [`Value`].
pub fn read_value<R: Read>(r: &mut Reader<R>) -> Result<Value> {
    match r.read_u8("value tag")? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(r.read_i64("int value")?)),
        2 => Ok(Value::Float(r.read_f64("float value")?)),
        3 => Ok(Value::Str(r.read_string("string value")?)),
        other => Err(StoreError::corrupt(format!("unknown value tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// ColumnSketch encoding.
// ---------------------------------------------------------------------------

impl ColumnSketch {
    /// Serializes the sketch as a standalone store artifact (header +
    /// sections) to any `std::io::Write`.
    pub fn to_writer<W: Write>(&self, out: W) -> Result<()> {
        let mut w = Writer::new(out);
        // The sketch artifact's wire format is unchanged since v1: keep
        // stamping v1 so pre-append-format readers can still read sketches
        // written by newer binaries (only Repository artifacts carry v2
        // semantics).
        write_header_with_version(&mut w, ArtifactKind::Sketch, FORMAT_VERSION_V1)?;
        self.write_embedded(&mut w)
    }

    /// Deserializes a standalone sketch artifact written by
    /// [`ColumnSketch::to_writer`]. Trailing bytes after the last section
    /// are rejected (the encoding is canonical).
    pub fn from_reader<R: Read>(input: R) -> Result<Self> {
        let mut r = Reader::new(input);
        read_header(&mut r, ArtifactKind::Sketch)?;
        let sketch = Self::read_embedded(&mut r)?;
        let mut probe = [0u8; 1];
        match r.read_exact(&mut probe, "end of sketch artifact") {
            Err(StoreError::Truncated { .. }) => Ok(sketch), // clean EOF
            Ok(()) => Err(StoreError::corrupt(
                "trailing bytes after the sketch sections",
            )),
            Err(e) => Err(e),
        }
    }

    /// Writes the sketch's sections without a file header — the form used
    /// when a sketch is embedded inside a larger artifact (a repository).
    pub fn write_embedded<W: Write>(&self, w: &mut Writer<W>) -> Result<()> {
        let mut meta = SectionBuilder::new();
        {
            let m = meta.writer();
            m.write_u8(sketch_kind_tag(self.kind()))?;
            m.write_u8(side_tag(self.side()))?;
            m.write_u8(dtype_tag(self.value_dtype()))?;
            m.write_len(self.config().size)?;
            m.write_u64(self.config().seed)?;
            m.write_len(self.source_rows())?;
            m.write_len(self.source_distinct_keys())?;
            m.write_len(self.len())?;
        }
        meta.finish(SECTION_SKETCH_META, w)?;

        let mut rows = SectionBuilder::new();
        {
            let p = rows.writer();
            // Columnar: all key digests first, then all values.
            for row in self.rows() {
                p.write_u64(row.key.raw())?;
            }
            for row in self.rows() {
                write_value(p, &row.value)?;
            }
        }
        rows.finish(SECTION_SKETCH_ROWS, w)
    }

    /// Reads the sections written by [`ColumnSketch::write_embedded`].
    pub fn read_embedded<R: Read>(r: &mut Reader<R>) -> Result<Self> {
        let meta = read_section(r, SECTION_SKETCH_META)?;
        let mut m = Reader::new(meta.as_slice());
        let kind = sketch_kind_from_tag(m.read_u8("sketch kind")?)?;
        let side = side_from_tag(m.read_u8("sketch side")?)?;
        let value_dtype = dtype_from_tag(m.read_u8("sketch value dtype")?)?;
        let size = m.read_len("sketch config size")?;
        let seed = m.read_u64("sketch config seed")?;
        let source_rows = m.read_len("sketch source rows")?;
        let source_distinct_keys = m.read_len("sketch source distinct keys")?;
        // No row-count-vs-size sanity check: the storage bound depends on the
        // kind (TUPSK/CSK ≤ n, LV2SK/PRISK ≤ 2n, INDSK is only *expected* n),
        // and allocation below is driven by the actual payload length anyway.
        let row_count = m.read_len("sketch row count")?;
        if !m.into_inner().is_empty() {
            return Err(StoreError::corrupt("trailing bytes in sketch META section"));
        }

        let payload = read_section(r, SECTION_SKETCH_ROWS)?;
        let mut p = Reader::new(payload.as_slice());
        let mut digests = Vec::with_capacity(row_count.min(payload.len() / 8));
        for _ in 0..row_count {
            digests.push(p.read_u64("sketch key digest")?);
        }
        let mut sketch_rows = Vec::with_capacity(digests.len());
        for digest in digests {
            let value = read_value(&mut p)?;
            sketch_rows.push(SketchRow::new(joinmi_hash::KeyHash(digest), value));
        }
        if !p.into_inner().is_empty() {
            return Err(StoreError::corrupt("trailing bytes in sketch ROWS section"));
        }

        Ok(Self::new(
            kind,
            side,
            sketch_rows,
            value_dtype,
            source_rows,
            source_distinct_keys,
            SketchConfig::new(size, seed),
        ))
    }
}

/// Structurally validates an embedded sketch (META + ROWS sections) at the
/// start of `buf` without materializing it, returning the bytes consumed.
///
/// Walks every field with borrowed reads — enum tags, string UTF-8, row
/// counts, and full payload consumption are all checked, allocating nothing.
/// This is how a lazy repository snapshot proves at open time that a
/// checksummed candidate payload will also *decode*, keeping the no-panic
/// contract without paying for eager materialization.
pub fn validate_embedded_sketch(buf: &[u8]) -> Result<usize> {
    let mut pos = 0usize;
    let meta_range = joinmi_store::scan_section(buf, &mut pos, SECTION_SKETCH_META)?;
    let mut m = joinmi_store::SliceReader::new(&buf[meta_range]);
    sketch_kind_from_tag(m.read_u8("sketch kind")?)?;
    side_from_tag(m.read_u8("sketch side")?)?;
    dtype_from_tag(m.read_u8("sketch value dtype")?)?;
    m.read_u64("sketch config size")?;
    m.read_u64("sketch config seed")?;
    m.read_u64("sketch source rows")?;
    m.read_u64("sketch source distinct keys")?;
    let row_count = m.read_len("sketch row count")?;
    m.expect_consumed("sketch META section")?;

    let rows_range = joinmi_store::scan_section(buf, &mut pos, SECTION_SKETCH_ROWS)?;
    let mut p = joinmi_store::SliceReader::new(&buf[rows_range]);
    let digest_bytes = row_count
        .checked_mul(8)
        .ok_or_else(|| StoreError::corrupt("sketch row count overflows digest column size"))?;
    p.read_slice(digest_bytes, "sketch key digest column")?;
    for _ in 0..row_count {
        match p.read_u8("value tag")? {
            0 => {}
            1 | 2 => {
                p.read_slice(8, "value payload")?;
            }
            3 => {
                p.read_str("string value")?;
            }
            other => {
                return Err(StoreError::corrupt(format!("unknown value tag {other}")));
            }
        }
    }
    p.expect_consumed("sketch ROWS section")?;
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::Table;

    fn sample_sketch(kind: SketchKind) -> ColumnSketch {
        let table = Table::builder("t")
            .push_str_column("k", vec!["a", "b", "b", "c", "d", "e", "a", "f"])
            .push_float_column("z", vec![1.5, -0.0, 2.0, 3.25, 4.0, 5.5, 1.0, 9.0])
            .build()
            .unwrap();
        kind.build_right(
            &table,
            "k",
            "z",
            Aggregation::Avg,
            &SketchConfig::new(16, 3),
        )
        .unwrap()
    }

    #[test]
    fn every_kind_round_trips_standalone() {
        for kind in SketchKind::ALL {
            let sketch = sample_sketch(kind);
            let mut buf = Vec::new();
            sketch.to_writer(&mut buf).unwrap();
            let loaded = ColumnSketch::from_reader(buf.as_slice()).unwrap();
            assert_eq!(loaded, sketch, "{kind} round trip");
        }
    }

    #[test]
    fn enum_tags_round_trip() {
        for kind in SketchKind::ALL {
            assert_eq!(sketch_kind_from_tag(sketch_kind_tag(kind)).unwrap(), kind);
        }
        for side in [Side::Left, Side::Right] {
            assert_eq!(side_from_tag(side_tag(side)).unwrap(), side);
        }
        for dtype in [DataType::Int, DataType::Float, DataType::Str] {
            assert_eq!(dtype_from_tag(dtype_tag(dtype)).unwrap(), dtype);
        }
        for agg in Aggregation::ALL {
            assert_eq!(aggregation_from_tag(aggregation_tag(agg)).unwrap(), agg);
        }
        assert!(sketch_kind_from_tag(0).is_err());
        assert!(side_from_tag(9).is_err());
        assert!(dtype_from_tag(77).is_err());
        assert!(aggregation_from_tag(0).is_err());
    }

    #[test]
    fn values_round_trip_exactly() {
        let values = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(f64::from_bits(0x7FF8_0000_0000_1234)), // NaN payload
            Value::Float(-0.0),
            Value::Str("söme køy".to_owned()),
            Value::Str(String::new()),
        ];
        let mut w = Writer::new(Vec::new());
        for v in &values {
            write_value(&mut w, v).unwrap();
        }
        let bytes = w.into_inner();
        let mut r = Reader::new(bytes.as_slice());
        for v in &values {
            let back = read_value(&mut r).unwrap();
            match (v, &back) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(&back, v),
            }
        }
    }

    #[test]
    fn standalone_sketch_artifacts_stay_at_format_v1() {
        // The sketch wire format did not change in the v2 (appendable
        // repository) bump, so sketch artifacts keep stamping v1 — a pre-v2
        // reader must still be able to read sketches written by this binary.
        let sketch = sample_sketch(SketchKind::Lv2sk);
        let mut buf = Vec::new();
        sketch.to_writer(&mut buf).unwrap();
        assert_eq!(u16::from_le_bytes([buf[4], buf[5]]), 1);
        let loaded = ColumnSketch::from_reader(buf.as_slice()).unwrap();
        assert_eq!(loaded, sketch);
    }

    #[test]
    fn wrong_artifact_kind_is_rejected() {
        let sketch = sample_sketch(SketchKind::Tupsk);
        let mut buf = Vec::new();
        sketch.to_writer(&mut buf).unwrap();
        // Overwrite the artifact-kind byte with the repository tag.
        buf[6] = ArtifactKind::Repository.tag();
        assert!(matches!(
            ColumnSketch::from_reader(buf.as_slice()),
            Err(StoreError::WrongArtifact { .. })
        ));
    }

    fn embedded_bytes(sketch: &ColumnSketch) -> Vec<u8> {
        let mut w = Writer::new(Vec::new());
        sketch.write_embedded(&mut w).unwrap();
        w.into_inner()
    }

    #[test]
    fn validator_accepts_every_kind_and_consumes_exactly() {
        for kind in SketchKind::ALL {
            let buf = embedded_bytes(&sample_sketch(kind));
            assert_eq!(validate_embedded_sketch(&buf).unwrap(), buf.len());
        }
    }

    #[test]
    fn checksum_valid_but_malformed_payload_is_corrupt_not_a_panic() {
        // A checksum is integrity, not authenticity: a crafted file can carry
        // a correct checksum over a structurally invalid payload. Overwrite
        // the sketch-kind tag with 99 and re-stamp the section checksum.
        let mut buf = embedded_bytes(&sample_sketch(SketchKind::Tupsk));
        let meta_len = u64::from_le_bytes(buf[1..9].try_into().unwrap()) as usize;
        buf[17] = 99; // first META payload byte = sketch kind tag
        let fixed = joinmi_store::checksum(&buf[17..17 + meta_len]);
        buf[9..17].copy_from_slice(&fixed.to_le_bytes());

        assert!(matches!(
            validate_embedded_sketch(&buf),
            Err(StoreError::Corrupt(_))
        ));
        let mut r = Reader::new(buf.as_slice());
        assert!(matches!(
            ColumnSketch::read_embedded(&mut r),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_inside_a_section_are_corrupt() {
        // Re-frame the ROWS section with one extra payload byte (checksum
        // valid over the padded payload): two byte streams must never decode
        // to the same sketch.
        let sketch = sample_sketch(SketchKind::Tupsk);
        let buf = embedded_bytes(&sketch);
        let meta_len = u64::from_le_bytes(buf[1..9].try_into().unwrap()) as usize;
        let meta_end = 17 + meta_len;
        let rows_len = u64::from_le_bytes(buf[meta_end + 1..meta_end + 9].try_into().unwrap());
        let rows_payload = &buf[meta_end + 17..meta_end + 17 + rows_len as usize];

        let mut padded_payload = rows_payload.to_vec();
        padded_payload.push(0xAB);
        let mut padded = buf[..meta_end].to_vec();
        let mut w = Writer::new(&mut padded);
        joinmi_store::write_section(&mut w, SECTION_SKETCH_ROWS, &padded_payload).unwrap();

        assert!(matches!(
            validate_embedded_sketch(&padded),
            Err(StoreError::Corrupt(_))
        ));
        let mut r = Reader::new(padded.as_slice());
        assert!(matches!(
            ColumnSketch::read_embedded(&mut r),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_after_standalone_artifact_are_corrupt() {
        let sketch = sample_sketch(SketchKind::Csk);
        let mut buf = Vec::new();
        sketch.to_writer(&mut buf).unwrap();
        buf.push(0);
        assert!(matches!(
            ColumnSketch::from_reader(buf.as_slice()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_row_count_is_typed() {
        let sketch = sample_sketch(SketchKind::Tupsk);
        let mut buf = Vec::new();
        sketch.to_writer(&mut buf).unwrap();
        // Truncate mid-rows-section: typed truncation, never a panic.
        let cut = buf.len() - 5;
        assert!(matches!(
            ColumnSketch::from_reader(&buf[..cut]),
            Err(StoreError::Truncated { .. })
        ));
    }
}
