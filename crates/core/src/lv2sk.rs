//! LV2SK — two-level sampling baseline (Section IV-A).
//!
//! Level 1: coordinated selection of the `n` distinct join keys with the
//! minimum `h_u(k)` values (plain KMV over keys), which maximizes the
//! expected sketch-join size.
//!
//! Level 2: for the base table, each selected key `k` keeps
//! `n_k = max(1, ⌊n · N_k / N⌋)` of its rows so the key-frequency profile of
//! the sketch mirrors the table while the total size stays below `2n`. For
//! the candidate table, repeated keys are aggregated first, so exactly one
//! row per selected key is kept.
//!
//! The tuple-inclusion probability is `1 / (m_K · max(1, ⌊n N_k / N⌋))`,
//! which depends on the key-frequency distribution — the non-uniformity that
//! the paper shows inflates MI-estimator bias when the join key and the
//! target are dependent (the `KeyDep` scenario).

use joinmi_hash::{digest_map_with_capacity, DigestHashMap};
use joinmi_table::{Aggregation, Table};

use crate::config::{Side, SketchConfig};
use crate::kind::SketchKind;
use crate::kmv::BoundedMinSet;
use crate::prep::{prepare_left, prepare_right, PreparedRows};
use crate::row::{ColumnSketch, SketchRow};
use crate::Result;

/// Number of per-key samples LV2SK keeps for a key with frequency `count` in
/// a table of `total` usable rows, for sketch budget `n`.
#[must_use]
pub fn per_key_quota(n: usize, count: usize, total: usize) -> usize {
    if total == 0 {
        return 0;
    }
    let quota = (n as f64 * count as f64 / total as f64).floor() as usize;
    quota.max(1)
}

/// Builds an LV2SK sketch of the base table's `(key, target)` pair.
pub fn build_left(
    table: &Table,
    key: &str,
    value: &str,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let prep = prepare_left(table, key, value, &hasher)?;
    let rows = sample_two_level(&prep, cfg);
    Ok(ColumnSketch::new(
        SketchKind::Lv2sk,
        Side::Left,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

/// Builds an LV2SK sketch of the candidate table, aggregating repeated keys
/// with `agg` first (unique keys ⇒ the second level degenerates to one row
/// per selected key and the inclusion probability becomes uniform).
pub fn build_right(
    table: &Table,
    key: &str,
    value: &str,
    agg: Aggregation,
    cfg: &SketchConfig,
) -> Result<ColumnSketch> {
    let hasher = cfg.key_hasher();
    let unit = cfg.unit_hasher();
    let prep = prepare_right(table, key, value, agg, &hasher)?;

    let mut set = BoundedMinSet::new(cfg.size);
    set.offer_batch(prep.rows.iter().map(|(digest, val)| {
        (
            unit.digest(digest.raw()),
            SketchRow::new(*digest, val.clone()),
        )
    }));
    let rows: Vec<SketchRow> = set.into_sorted().into_iter().map(|(_, row)| row).collect();
    Ok(ColumnSketch::new(
        SketchKind::Lv2sk,
        Side::Right,
        rows,
        prep.value_dtype,
        prep.n_rows,
        prep.distinct_keys,
        *cfg,
    ))
}

/// Shared two-level sampling used by LV2SK (uniform first level) — also
/// reused by PRISK with a different first-level key selection.
pub(crate) fn sample_two_level(prep: &PreparedRows, cfg: &SketchConfig) -> Vec<SketchRow> {
    let unit = cfg.unit_hasher();
    // Level 1: KMV over distinct keys.
    let mut key_set = BoundedMinSet::new(cfg.size);
    key_set.offer_batch(prep.key_counts.keys().map(|&k| (unit.digest(k), k)));
    let selected: Vec<u64> = key_set.into_sorted().into_iter().map(|(_, k)| k).collect();
    sample_selected_keys(prep, cfg, &selected)
}

/// Level 2: keep `n_k` rows per selected key, ranked by the per-occurrence
/// hash so the choice is deterministic yet effectively random.
pub(crate) fn sample_selected_keys(
    prep: &PreparedRows,
    cfg: &SketchConfig,
    selected: &[u64],
) -> Vec<SketchRow> {
    let unit = cfg.unit_hasher();
    let selected_set: DigestHashMap<usize> = selected
        .iter()
        .map(|&k| (k, per_key_quota(cfg.size, prep.key_counts[&k], prep.n_rows)))
        .collect();

    // Gather candidate rows per selected key with their occurrence hash.
    let mut per_key: DigestHashMap<Vec<(u64, SketchRow)>> =
        digest_map_with_capacity(selected.len());
    let mut occurrence = digest_map_with_capacity::<u64>(prep.distinct_keys);
    for (digest, val) in &prep.rows {
        let raw = digest.raw();
        let j = occurrence.entry(raw).or_insert(0);
        *j += 1;
        if selected_set.contains_key(&raw) {
            per_key.entry(raw).or_default().push((
                unit.pair_digest(raw, *j),
                SketchRow::new(*digest, val.clone()),
            ));
        }
    }

    let mut rows = Vec::new();
    // Iterate in the deterministic order of `selected` (sorted by first-level
    // hash) so output order is stable.
    for &key_digest in selected {
        let quota = selected_set[&key_digest];
        if let Some(mut candidates) = per_key.remove(&key_digest) {
            candidates.sort_by_key(|(h, _)| *h);
            rows.extend(candidates.into_iter().take(quota).map(|(_, row)| row));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::Value;

    #[test]
    fn per_key_quota_matches_paper_formula() {
        // n = 5, N = 100: a key with 95 occurrences gets ⌊5·0.95⌋ = 4 samples,
        // keys with 1 occurrence get max(1, ⌊0.05⌋) = 1.
        assert_eq!(per_key_quota(5, 95, 100), 4);
        assert_eq!(per_key_quota(5, 1, 100), 1);
        assert_eq!(per_key_quota(256, 100, 100), 256);
        assert_eq!(per_key_quota(5, 0, 0), 0);
    }

    fn paper_worked_example() -> Table {
        // Section IV-B: KY = [a, b, c, d, e, f×95], Y = [0,0,0,0,0,1..95].
        let mut keys: Vec<String> = vec!["a", "b", "c", "d", "e"]
            .into_iter()
            .map(String::from)
            .collect();
        keys.extend(std::iter::repeat_with(|| "f".to_owned()).take(95));
        let mut ys: Vec<i64> = vec![0, 0, 0, 0, 0];
        ys.extend(1..=95);
        Table::builder("train")
            .push_str_column("k", keys)
            .push_int_column("y", ys)
            .build()
            .unwrap()
    }

    #[test]
    fn size_bound_of_2n_holds() {
        let table = paper_worked_example();
        for n in [2usize, 5, 8, 32] {
            let cfg = SketchConfig::new(n, 9);
            let sketch = build_left(&table, "k", "y", &cfg).unwrap();
            assert!(sketch.len() <= 2 * n, "n={n}: size {}", sketch.len());
        }
    }

    #[test]
    fn at_least_one_sample_per_selected_key() {
        let table = paper_worked_example();
        let cfg = SketchConfig::new(5, 1);
        let sketch = build_left(&table, "k", "y", &cfg).unwrap();
        // 5 selected keys, each with >= 1 sample.
        assert!(sketch.distinct_keys() <= 5);
        assert!(sketch.len() >= sketch.distinct_keys());
    }

    #[test]
    fn frequent_key_gets_proportional_quota_when_selected() {
        let table = paper_worked_example();
        let hasher = SketchConfig::new(5, 0).key_hasher();
        let f_digest = Value::from("f").key_hash(&hasher);
        // Try several seeds; whenever "f" is selected it must carry
        // max(1, ⌊5·0.95⌋) = 4 samples.
        let mut observed = false;
        for seed in 0..20u64 {
            let cfg = SketchConfig::new(5, seed);
            let sketch = build_left(&table, "k", "y", &cfg).unwrap();
            let f_count = sketch.rows().iter().filter(|r| r.key == f_digest).count();
            if f_count > 0 {
                assert_eq!(f_count, 4, "seed {seed}");
                observed = true;
            }
        }
        assert!(observed, "key f was never selected across 20 seeds");
    }

    #[test]
    fn entropy_collapse_failure_mode_exists() {
        // The paper's worked example: when the 5 singleton keys win the
        // first-level sampling, the sketch's Y values are all zero and the
        // entropy (hence any MI involving Y) collapses to 0. Demonstrate that
        // at least one seed exhibits the collapse.
        let table = paper_worked_example();
        let hasher = SketchConfig::new(5, 0).key_hasher();
        let f_digest = Value::from("f").key_hash(&hasher);
        let mut collapse_seen = false;
        for seed in 0..200u64 {
            let cfg = SketchConfig::new(5, seed);
            let sketch = build_left(&table, "k", "y", &cfg).unwrap();
            if sketch.rows().iter().all(|r| r.key != f_digest) {
                assert!(sketch.rows().iter().all(|r| r.value == Value::Int(0)));
                collapse_seen = true;
                break;
            }
        }
        // P(f not selected) per seed is C(5,5)/C(6,5)-ish ≈ 1/6, so 200 seeds
        // make a miss astronomically unlikely.
        assert!(
            collapse_seen,
            "no seed produced the entropy-collapse configuration"
        );
    }

    #[test]
    fn right_side_has_unique_keys_and_size_n() {
        let cand = Table::builder("cand")
            .push_int_column("k", (0..1000).map(|i| i % 300).collect::<Vec<i64>>())
            .push_float_column("z", (0..1000).map(|i| i as f64).collect::<Vec<f64>>())
            .build()
            .unwrap();
        let cfg = SketchConfig::new(64, 2);
        let sketch = build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap();
        assert_eq!(sketch.len(), 64);
        assert_eq!(sketch.distinct_keys(), 64);
        assert_eq!(sketch.source_distinct_keys(), 300);
    }

    #[test]
    fn coordinated_selection_joins_well_on_unique_keys() {
        let n = 3000i64;
        let train = Table::builder("train")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_int_column("y", (0..n).collect::<Vec<i64>>())
            .build()
            .unwrap();
        let cand = Table::builder("cand")
            .push_int_column("k", (0..n).collect::<Vec<i64>>())
            .push_float_column("z", (0..n).map(|i| (i * 2) as f64).collect::<Vec<f64>>())
            .build()
            .unwrap();
        let cfg = SketchConfig::new(256, 4);
        let left = build_left(&train, "k", "y", &cfg).unwrap();
        let right = build_right(&cand, "k", "z", Aggregation::Avg, &cfg).unwrap();
        let joined = left.join(&right);
        // Unique keys: both sides select exactly the same n minimum keys.
        assert_eq!(joined.len(), 256);
    }
}
