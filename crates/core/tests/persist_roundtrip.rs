//! Property tests pinning `sketch == decode(encode(sketch))` for every
//! sketch kind, over randomly generated tables, sketch sizes, and seeds —
//! the satellite guarantee behind the offline-ingest → online-query split.

use joinmi_sketch::{Aggregation, ColumnSketch, SketchConfig, SketchKind};
use joinmi_table::Table;
use proptest::prelude::*;

/// Strategy for a small keyed table: (key id, float value) rows plus a
/// categorical column, so both numeric and string features are exercised.
fn keyed_rows() -> impl Strategy<Value = Vec<(u8, i64)>> {
    proptest::collection::vec((0u8..60, -500i64..500), 1..200)
}

fn build_table(rows: &[(u8, i64)]) -> Table {
    let keys: Vec<String> = rows.iter().map(|(k, _)| format!("key-{k}")).collect();
    let ints: Vec<i64> = rows.iter().map(|(_, v)| *v).collect();
    let floats: Vec<f64> = rows
        .iter()
        .map(|(k, v)| f64::from(*k) + *v as f64 / 7.0)
        .collect();
    let cats: Vec<String> = rows.iter().map(|(k, _)| format!("cat-{}", k % 5)).collect();
    Table::builder("prop")
        .push_str_column("k", keys)
        .push_int_column("vi", ints)
        .push_float_column("vf", floats)
        .push_str_column("vc", cats)
        .build()
        .unwrap()
}

fn assert_round_trip(sketch: &ColumnSketch) {
    let mut buf = Vec::new();
    sketch.to_writer(&mut buf).unwrap();
    let decoded = ColumnSketch::from_reader(buf.as_slice()).unwrap();
    assert_eq!(&decoded, sketch);
    // Re-encoding the decoded sketch is byte-identical (canonical encoding).
    let mut buf2 = Vec::new();
    decoded.to_writer(&mut buf2).unwrap();
    assert_eq!(buf, buf2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_kind_round_trips_left_sketches(
        rows in keyed_rows(),
        size in 1usize..64,
        seed in 0u64..16,
    ) {
        let table = build_table(&rows);
        let cfg = SketchConfig::new(size, seed);
        for kind in SketchKind::ALL {
            let sketch = kind.build_left(&table, "k", "vi", &cfg).unwrap();
            assert_round_trip(&sketch);
        }
    }

    #[test]
    fn every_kind_round_trips_right_sketches(
        rows in keyed_rows(),
        size in 1usize..64,
        seed in 0u64..16,
    ) {
        let table = build_table(&rows);
        let cfg = SketchConfig::new(size, seed);
        for kind in SketchKind::ALL {
            // Float feature under AVG and categorical feature under MODE:
            // covers float and string value columns in the stored rows.
            let avg = kind
                .build_right(&table, "k", "vf", Aggregation::Avg, &cfg)
                .unwrap();
            assert_round_trip(&avg);
            let mode = kind
                .build_right(&table, "k", "vc", Aggregation::Mode, &cfg)
                .unwrap();
            assert_round_trip(&mode);
        }
    }

    #[test]
    fn joins_on_decoded_sketches_match_originals(
        rows in keyed_rows(),
        seed in 0u64..8,
    ) {
        let table = build_table(&rows);
        let cfg = SketchConfig::new(32, seed);
        let left = SketchKind::Tupsk.build_left(&table, "k", "vi", &cfg).unwrap();
        let right = SketchKind::Tupsk
            .build_right(&table, "k", "vf", Aggregation::Avg, &cfg)
            .unwrap();

        let round = |s: &ColumnSketch| {
            let mut buf = Vec::new();
            s.to_writer(&mut buf).unwrap();
            ColumnSketch::from_reader(buf.as_slice()).unwrap()
        };
        let joined_mem = left.join(&right);
        let joined_disk = round(&left).join(&round(&right));
        prop_assert_eq!(joined_mem.len(), joined_disk.len());
        prop_assert_eq!(joined_mem.xs(), joined_disk.xs());
        prop_assert_eq!(joined_mem.ys(), joined_disk.ys());
    }
}
