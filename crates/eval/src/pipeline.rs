//! The sketch-estimation pipeline shared by all experiments.
//!
//! One "trial" of the synthetic benchmark is: generate `(X, Y)` with a known
//! MI, decompose into joinable tables under a key regime, build left/right
//! sketches with one strategy, join them, and estimate MI with one estimator.
//! The full-join baseline applies the same estimator to all generated pairs.

use joinmi_estimators::{
    dc_ksg_mi_with, discretize, mixed_ksg_mi_with, mle_mi, perturb_ties_with, EstimatorWorkspace,
    DEFAULT_K,
};
use joinmi_sketch::{ColumnSketch, JoinedSketch, SketchConfig, SketchKind};
use joinmi_synth::DecomposedPair;
use joinmi_table::Value;

/// Which estimator an experiment applies to the recovered sample.
///
/// This mirrors the three "data type combination" treatments of Section V-A:
/// the *same* generated data can be treated as discrete (MLE), as a
/// discrete–continuous pair (DC-KSG, with the continuous side obtained by
/// tie-breaking perturbation), or as a mixture pair (MixedKSG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorMode {
    /// Treat both variables as categorical and apply the plug-in MLE.
    Mle,
    /// Treat both variables as (mixtures of) continuous values — MixedKSG.
    MixedKsg,
    /// Treat X as discrete and Y as continuous (perturbed) — DC-KSG.
    DcKsg,
}

impl EstimatorMode {
    /// All modes applicable to discrete-valued benchmarks (Trinomial).
    pub const TRINOMIAL: [Self; 3] = [Self::Mle, Self::MixedKsg, Self::DcKsg];
    /// Modes applicable to CDUnif (Y is already continuous, so the MLE is
    /// excluded, as in the paper).
    pub const CDUNIF: [Self; 2] = [Self::MixedKsg, Self::DcKsg];

    /// Name used in reports (matches the paper's legends).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Mle => "MLE",
            Self::MixedKsg => "Mixed-KSG",
            Self::DcKsg => "DC-KSG",
        }
    }

    /// Applies the estimator to paired feature/target values.
    ///
    /// Returns `None` when the estimator cannot produce a finite estimate
    /// (e.g. too few samples), letting experiments skip the trial the same
    /// way the paper discards meaningless estimates.
    #[must_use]
    pub fn estimate(self, xs: &[Value], ys: &[Value], seed: u64) -> Option<f64> {
        self.estimate_in(&mut EstimatorWorkspace::new(), xs, ys, seed)
    }

    /// [`estimate`](Self::estimate) against a caller-owned
    /// [`EstimatorWorkspace`]: grid runners keep one workspace per worker so
    /// every trial on that worker reuses the estimator sort buffers.
    #[must_use]
    pub fn estimate_in(
        self,
        ws: &mut EstimatorWorkspace,
        xs: &[Value],
        ys: &[Value],
        seed: u64,
    ) -> Option<f64> {
        if xs.len() != ys.len() || xs.len() < DEFAULT_K + 2 {
            return None;
        }
        match self {
            Self::Mle => mle_mi(&discretize(xs), &discretize(ys)).ok(),
            Self::MixedKsg => {
                let xf = to_f64(xs)?;
                let yf = to_f64(ys)?;
                mixed_ksg_mi_with(ws, &xf, &yf, DEFAULT_K).ok()
            }
            Self::DcKsg => {
                let codes = discretize(xs);
                let yf = to_f64(ys)?;
                // Break ties so the "continuous" side satisfies the
                // estimator's assumptions (Section V-A perturbation).
                let yf = perturb_ties_with(ws, &yf, 1e-9, seed);
                dc_ksg_mi_with(ws, &codes, &yf, DEFAULT_K).ok()
            }
        }
    }
}

fn to_f64(values: &[Value]) -> Option<Vec<f64>> {
    values.iter().map(Value::as_f64).collect()
}

/// The outcome of estimating MI through a sketch join.
#[derive(Debug, Clone, Copy)]
pub struct TrialOutcome {
    /// The MI estimate (NaN when the estimator failed).
    pub estimate: f64,
    /// Number of pairs recovered by the sketch join.
    pub join_size: usize,
    /// Number of rows stored by the left sketch (the storage cost).
    pub left_storage: usize,
}

/// A fully specified sketch trial.
#[derive(Debug, Clone, Copy)]
pub struct SketchTrial {
    /// Sketching strategy.
    pub kind: SketchKind,
    /// Sketch size / seed.
    pub config: SketchConfig,
    /// Estimator applied to the recovered sample.
    pub mode: EstimatorMode,
}

/// Builds the left/right sketches of one trial (shared by the in-memory and
/// persisted estimation paths).
fn build_sketch_pair(
    pair: &DecomposedPair,
    trial: &SketchTrial,
) -> Option<(ColumnSketch, ColumnSketch)> {
    let left = trial
        .kind
        .build_left(
            &pair.train,
            &pair.key_column,
            &pair.target_column,
            &trial.config,
        )
        .ok()?;
    let right = trial
        .kind
        .build_right(
            &pair.cand,
            &pair.key_column,
            &pair.feature_column,
            pair.aggregation,
            &trial.config,
        )
        .ok()?;
    Some((left, right))
}

/// Joins a sketch pair and applies the trial's estimator.
fn estimate_from_sketches(
    ws: &mut EstimatorWorkspace,
    left: &ColumnSketch,
    right: &ColumnSketch,
    trial: &SketchTrial,
) -> Option<TrialOutcome> {
    let joined: JoinedSketch = left.join(right);
    let estimate = trial
        .mode
        .estimate_in(ws, joined.xs(), joined.ys(), trial.config.seed)?;
    Some(TrialOutcome {
        estimate,
        join_size: joined.len(),
        left_storage: left.len(),
    })
}

/// Runs one sketch trial over a decomposed table pair.
///
/// Returns `None` when the sketch join recovered too few pairs for the
/// estimator.
#[must_use]
pub fn sketch_estimate(pair: &DecomposedPair, trial: &SketchTrial) -> Option<TrialOutcome> {
    sketch_estimate_in(&mut EstimatorWorkspace::new(), pair, trial)
}

/// [`sketch_estimate`] against a caller-owned [`EstimatorWorkspace`].
#[must_use]
pub fn sketch_estimate_in(
    ws: &mut EstimatorWorkspace,
    pair: &DecomposedPair,
    trial: &SketchTrial,
) -> Option<TrialOutcome> {
    let (left, right) = build_sketch_pair(pair, trial)?;
    estimate_from_sketches(ws, &left, &right, trial)
}

/// Like [`sketch_estimate`], but round-trips both sketches through the
/// on-disk store encoding (`joinmi_sketch::persist`) before joining — the
/// offline-ingest → online-query pipeline in miniature. Because the encoding
/// is exact (float bits round-trip), the outcome is bit-for-bit identical to
/// [`sketch_estimate`]; the test below pins that.
#[must_use]
pub fn sketch_estimate_persisted(
    pair: &DecomposedPair,
    trial: &SketchTrial,
) -> Option<TrialOutcome> {
    sketch_estimate_persisted_in(&mut EstimatorWorkspace::new(), pair, trial)
}

/// [`sketch_estimate_persisted`] against a caller-owned
/// [`EstimatorWorkspace`].
#[must_use]
pub fn sketch_estimate_persisted_in(
    ws: &mut EstimatorWorkspace,
    pair: &DecomposedPair,
    trial: &SketchTrial,
) -> Option<TrialOutcome> {
    let (left, right) = build_sketch_pair(pair, trial)?;
    let round_trip = |sketch: &ColumnSketch| -> Option<ColumnSketch> {
        let mut buf = Vec::new();
        sketch.to_writer(&mut buf).ok()?;
        ColumnSketch::from_reader(buf.as_slice()).ok()
    };
    let left = round_trip(&left)?;
    let right = round_trip(&right)?;
    estimate_from_sketches(ws, &left, &right, trial)
}

/// One cell of an experiment grid: which decomposed pair to sketch (an index
/// into a caller-owned slice) and the fully specified trial to run on it.
pub type GridCell = (usize, SketchTrial);

/// Runs a grid of sketch trials in parallel across `JOINMI_THREADS` workers.
///
/// `cells` index into `pairs`; the returned outcomes are in cell order, and —
/// because [`sketch_estimate`] is deterministic given its inputs — the result
/// is bit-for-bit identical to mapping [`sketch_estimate`] sequentially.
/// Experiments build their full `(trial × regime × sketch × estimator)` cross
/// product as cells so that one work queue load-balances the whole grid.
#[must_use]
pub fn run_grid(pairs: &[DecomposedPair], cells: &[GridCell]) -> Vec<Option<TrialOutcome>> {
    joinmi_par::par_map_with(
        cells,
        EstimatorWorkspace::new,
        |ws, &(pair_index, trial)| sketch_estimate_in(ws, &pairs[pair_index], &trial),
    )
}

/// The persisted-repository variant of [`run_grid`]: every trial's sketches
/// pass through the on-disk encoding before estimation (see
/// [`sketch_estimate_persisted`]). Outcomes are bit-for-bit identical to
/// [`run_grid`]; experiments use it to prove that conclusions drawn from
/// persisted sketch repositories match the in-memory evaluation.
#[must_use]
pub fn run_grid_persisted(
    pairs: &[DecomposedPair],
    cells: &[GridCell],
) -> Vec<Option<TrialOutcome>> {
    joinmi_par::par_map_with(
        cells,
        EstimatorWorkspace::new,
        |ws, &(pair_index, trial)| sketch_estimate_persisted_in(ws, &pairs[pair_index], &trial),
    )
}

/// Runs the sketch join only (no estimation) — used by experiments that only
/// need join-size statistics.
#[must_use]
pub fn sketch_join_size(
    pair: &DecomposedPair,
    kind: SketchKind,
    config: &SketchConfig,
) -> Option<usize> {
    let left = kind
        .build_left(&pair.train, &pair.key_column, &pair.target_column, config)
        .ok()?;
    let right = kind
        .build_right(
            &pair.cand,
            &pair.key_column,
            &pair.feature_column,
            pair.aggregation,
            config,
        )
        .ok()?;
    Some(left.join(&right).len())
}

/// The full-join baseline: applies the estimator to *all* generated pairs
/// (equivalent to estimating on the materialized augmentation join, which
/// recovers the generated pairs exactly — verified by the decomposition
/// round-trip tests).
#[must_use]
pub fn full_join_estimate(
    xs: &[Value],
    ys: &[Value],
    mode: EstimatorMode,
    seed: u64,
) -> Option<f64> {
    mode.estimate(xs, ys, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_synth::{decompose, CdUnifConfig, KeyDistribution, TrinomialConfig};

    #[test]
    fn estimator_modes_recover_known_mi_on_full_data() {
        let cfg = TrinomialConfig::new(16, 0.4, 0.35);
        let pair = cfg.generate(8000, 3);
        let truth = pair.true_mi;
        for mode in EstimatorMode::TRINOMIAL {
            let est = full_join_estimate(&pair.xs, &pair.ys, mode, 1).unwrap();
            assert!(
                (est - truth).abs() < 0.15,
                "{}: est={est}, truth={truth}",
                mode.name()
            );
        }
    }

    #[test]
    fn cdunif_modes_recover_known_mi() {
        let cfg = CdUnifConfig::new(8);
        let pair = cfg.generate(6000, 5);
        for mode in EstimatorMode::CDUNIF {
            let est = full_join_estimate(&pair.xs, &pair.ys, mode, 2).unwrap();
            assert!(
                (est - pair.true_mi).abs() < 0.15,
                "{}: est={est}, truth={}",
                mode.name(),
                pair.true_mi
            );
        }
    }

    #[test]
    fn sketch_estimate_tracks_truth_within_sketch_error() {
        let gen = TrinomialConfig::new(64, 0.45, 0.4);
        let data = gen.generate(6000, 11);
        let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyInd);
        let trial = SketchTrial {
            kind: SketchKind::Tupsk,
            config: SketchConfig::new(512, 7),
            mode: EstimatorMode::Mle,
        };
        let outcome = sketch_estimate(&pair, &trial).unwrap();
        assert!(outcome.join_size > 400);
        assert!(outcome.left_storage <= 512);
        // Sketch estimates carry sampling error; just require the right
        // ballpark (the experiments quantify the error precisely).
        assert!((outcome.estimate - data.true_mi).abs() < 0.8);
    }

    #[test]
    fn too_small_samples_return_none() {
        assert!(EstimatorMode::MixedKsg
            .estimate(&[Value::Int(1)], &[Value::Int(1)], 0)
            .is_none());
        let strings = vec![Value::from("a"); 10];
        // Non-numeric data cannot be fed to the KSG-family modes.
        assert!(EstimatorMode::MixedKsg
            .estimate(&strings, &strings, 0)
            .is_none());
        assert!(EstimatorMode::Mle.estimate(&strings, &strings, 0).is_some());
    }

    #[test]
    fn run_grid_matches_sequential_sketch_estimate() {
        let gen = TrinomialConfig::new(32, 0.45, 0.4);
        let pairs: Vec<_> = (0..3u64)
            .map(|s| {
                let data = gen.generate(1500, s);
                decompose(&data.xs, &data.ys, KeyDistribution::KeyInd)
            })
            .collect();
        let mut cells = Vec::new();
        for pair_index in 0..pairs.len() {
            for mode in EstimatorMode::TRINOMIAL {
                cells.push((
                    pair_index,
                    SketchTrial {
                        kind: SketchKind::Tupsk,
                        config: SketchConfig::new(256, 5),
                        mode,
                    },
                ));
            }
        }
        let sequential: Vec<Option<TrialOutcome>> = joinmi_par::with_threads(1, || {
            cells
                .iter()
                .map(|&(pair_index, trial)| sketch_estimate(&pairs[pair_index], &trial))
                .collect()
        });
        let parallel = joinmi_par::with_threads(4, || run_grid(&pairs, &cells));
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            match (p, s) {
                (Some(a), Some(b)) => {
                    // Bit-for-bit: estimates come from identical inputs.
                    assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
                    assert_eq!(a.join_size, b.join_size);
                    assert_eq!(a.left_storage, b.left_storage);
                }
                (None, None) => {}
                _ => panic!("parallel/sequential disagreement"),
            }
        }
    }

    #[test]
    fn persisted_grid_is_bit_identical_to_in_memory_grid() {
        let gen = TrinomialConfig::new(32, 0.45, 0.4);
        let pairs: Vec<_> = (0..2u64)
            .map(|s| {
                let data = gen.generate(1200, s);
                decompose(&data.xs, &data.ys, KeyDistribution::KeyInd)
            })
            .collect();
        let mut cells = Vec::new();
        for pair_index in 0..pairs.len() {
            for kind in SketchKind::ALL {
                for mode in EstimatorMode::TRINOMIAL {
                    cells.push((
                        pair_index,
                        SketchTrial {
                            kind,
                            config: SketchConfig::new(128, 9),
                            mode,
                        },
                    ));
                }
            }
        }
        let in_memory = run_grid(&pairs, &cells);
        let persisted = run_grid_persisted(&pairs, &cells);
        assert_eq!(in_memory.len(), persisted.len());
        for (a, b) in in_memory.iter().zip(&persisted) {
            match (a, b) {
                (Some(m), Some(p)) => {
                    assert_eq!(m.estimate.to_bits(), p.estimate.to_bits());
                    assert_eq!(m.join_size, p.join_size);
                    assert_eq!(m.left_storage, p.left_storage);
                }
                (None, None) => {}
                _ => panic!("persisted/in-memory grid disagreement"),
            }
        }
    }

    #[test]
    fn join_size_helper_matches_sketch_estimate() {
        let gen = CdUnifConfig::new(32);
        let data = gen.generate(4000, 2);
        let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyInd);
        let config = SketchConfig::new(256, 1);
        let size = sketch_join_size(&pair, SketchKind::Tupsk, &config).unwrap();
        let trial = SketchTrial {
            kind: SketchKind::Tupsk,
            config,
            mode: EstimatorMode::MixedKsg,
        };
        let outcome = sketch_estimate(&pair, &trial).unwrap();
        assert_eq!(size, outcome.join_size);
    }
}
