//! Reproduces Table II and §V-C3 on simulated open-data collections.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_table2 --release [-- --quick]`

use joinmi_eval::experiments::table2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        table2::Config::quick()
    } else {
        table2::Config::default()
    };
    eprintln!("running Table II with quick={quick}");
    let results = table2::run(&cfg);
    table2::report(&results).print();
    table2::estimator_magnitude_report(&results).print();
}
