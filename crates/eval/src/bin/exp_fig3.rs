//! Reproduces Figure 3: CDUnif, LV2SK vs TUPSK, n=256.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_fig3 --release [-- --quick]`

use joinmi_eval::experiments::fig3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        fig3::Config::quick()
    } else {
        fig3::Config::default()
    };
    eprintln!("running Figure 3 with {cfg:?}");
    let series = fig3::run(&cfg);
    fig3::report(&series).print();
}
