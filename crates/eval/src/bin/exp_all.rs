//! Runs every experiment in sequence (the full reproduction of Section V).
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_all --release [-- --quick]`

use joinmi_eval::experiments::{
    ablation, calibration, fig2, fig3, fig4, fig5, fulljoin, perf, table1, table2,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!("running the full Section V reproduction (quick = {quick})");

    let cfg = if quick {
        fulljoin::Config::quick()
    } else {
        fulljoin::Config::default()
    };
    fulljoin::report(&fulljoin::run(&cfg)).print();

    let cfg = if quick {
        fig2::Config::quick()
    } else {
        fig2::Config::default()
    };
    let series = fig2::run(&cfg);
    fig2::report(&series).print();
    println!("KeyDep MSE penalty (MSE_KeyDep - MSE_KeyInd):");
    for (sketch, penalty) in fig2::key_dependence_penalty(&series) {
        println!("  {sketch}: {penalty:+.3}");
    }
    println!();

    let cfg = if quick {
        fig3::Config::quick()
    } else {
        fig3::Config::default()
    };
    fig3::report(&fig3::run(&cfg)).print();

    let cfg = if quick {
        fig4::Config::quick()
    } else {
        fig4::Config::default()
    };
    fig4::report(&fig4::run(&cfg)).print();

    let cfg = if quick {
        table1::Config::quick()
    } else {
        table1::Config::default()
    };
    table1::report(&table1::run(&cfg), cfg.sketch_size).print();

    let cfg = if quick {
        table2::Config::quick()
    } else {
        table2::Config::default()
    };
    let results = table2::run(&cfg);
    table2::report(&results).print();
    table2::estimator_magnitude_report(&results).print();

    let cfg = if quick {
        fig5::Config::quick()
    } else {
        fig5::Config::default()
    };
    fig5::report(&fig5::run(&cfg), &cfg.thresholds).print();

    let cfg = if quick {
        perf::Config::quick()
    } else {
        perf::Config::default()
    };
    perf::report(&perf::run(&cfg)).print();

    let cfg = if quick {
        ablation::Config::quick()
    } else {
        ablation::Config::default()
    };
    for report in ablation::report(&cfg) {
        report.print();
    }

    let cfg = if quick {
        calibration::Config::quick()
    } else {
        calibration::Config::default()
    };
    calibration::report(&calibration::run(&cfg), cfg.level).print();
}
