//! Reproduces §V-B1: true vs estimated MI on the full join.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_fulljoin --release [-- --quick]`

use joinmi_eval::experiments::fulljoin;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        fulljoin::Config::quick()
    } else {
        fulljoin::Config::default()
    };
    eprintln!("running §V-B1 full-join baseline with {cfg:?}");
    let series = fulljoin::run(&cfg);
    fulljoin::report(&series).print();
}
