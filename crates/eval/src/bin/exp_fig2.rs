//! Reproduces Figure 2: Trinomial(m=512), LV2SK vs TUPSK, n=256.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_fig2 --release [-- --quick]`

use joinmi_eval::experiments::fig2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        fig2::Config::quick()
    } else {
        fig2::Config::default()
    };
    eprintln!("running Figure 2 with {cfg:?}");
    let series = fig2::run(&cfg);
    fig2::report(&series).print();
    println!("KeyDep MSE penalty (MSE_KeyDep - MSE_KeyInd, averaged over estimators):");
    for (sketch, penalty) in fig2::key_dependence_penalty(&series) {
        println!("  {sketch}: {penalty:+.3}");
    }
}
