//! Ablation experiments: sketch-size sweep, coordination, aggregation choice.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_ablation --release [-- --quick]`

use joinmi_eval::experiments::ablation;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ablation::Config::quick()
    } else {
        ablation::Config::default()
    };
    eprintln!("running ablations with {cfg:?}");
    for report in ablation::report(&cfg) {
        report.print();
    }
}
