//! Reproduces Figure 4: effect of the number of distinct values (Trinomial
//! m ∈ {16, 64, 256, 512, 1024}, TUPSK, n=256).
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_fig4 --release [-- --quick]`

use joinmi_eval::experiments::fig4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        fig4::Config::quick()
    } else {
        fig4::Config::default()
    };
    eprintln!("running Figure 4 with {cfg:?}");
    let series = fig4::run(&cfg);
    fig4::report(&series).print();
    println!("MLE bias by m (should grow with m):");
    for (m, bias) in fig4::mle_bias_by_m(&series) {
        println!("  m={m:5}: {bias:+.3}");
    }
}
