//! Reproduces Table I: sketch-join size and MSE of all five sketches.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_table1 --release [-- --quick]`

use joinmi_eval::experiments::table1;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        table1::Config::quick()
    } else {
        table1::Config::default()
    };
    eprintln!("running Table I with {cfg:?}");
    let results = table1::run(&cfg);
    table1::report(&results, cfg.sketch_size).print();
}
