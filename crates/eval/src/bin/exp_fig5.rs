//! Reproduces Figure 5: sketch vs full-join estimates by sketch-join size.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_fig5 --release [-- --quick]`

use joinmi_eval::experiments::fig5;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        fig5::Config::quick()
    } else {
        fig5::Config::default()
    };
    eprintln!("running Figure 5 with quick={quick}");
    let results = fig5::run(&cfg);
    fig5::report(&results, &cfg.thresholds).print();
}
