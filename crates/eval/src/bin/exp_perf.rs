//! Reproduces §V-D: full-join vs sketch timings.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_perf --release [-- --quick]`

use joinmi_eval::experiments::perf;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        perf::Config::quick()
    } else {
        perf::Config::default()
    };
    eprintln!("running §V-D performance sweep with {cfg:?}");
    let timings = perf::run(&cfg);
    perf::report(&timings).print();
}
