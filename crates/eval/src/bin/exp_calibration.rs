//! Credible-interval calibration: coverage of the exact full-join MI swept
//! over corpus size and NULL fraction.
//!
//! Usage: `cargo run -p joinmi-eval --bin exp_calibration --release [-- --quick]`

use joinmi_eval::experiments::calibration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        calibration::Config::quick()
    } else {
        calibration::Config::default()
    };
    eprintln!("running interval calibration with {cfg:?}");
    let series = calibration::run(&cfg);
    calibration::report(&series, cfg.level).print();
}
