//! Error metrics used across the experiments.

pub use joinmi_estimators::{pearson, spearman};

/// Mean squared error between paired truths and estimates.
///
/// Returns `NaN` for empty input (so callers notice missing data instead of
/// silently reporting a perfect score).
#[must_use]
pub fn mse(truth: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(
        truth.len(),
        estimate.len(),
        "paired metric requires aligned slices"
    );
    if truth.is_empty() {
        return f64::NAN;
    }
    truth
        .iter()
        .zip(estimate)
        .map(|(t, e)| (t - e).powi(2))
        .sum::<f64>()
        / truth.len() as f64
}

/// Root mean squared error.
#[must_use]
pub fn rmse(truth: &[f64], estimate: &[f64]) -> f64 {
    mse(truth, estimate).sqrt()
}

/// Mean absolute error.
#[must_use]
pub fn mae(truth: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(
        truth.len(),
        estimate.len(),
        "paired metric requires aligned slices"
    );
    if truth.is_empty() {
        return f64::NAN;
    }
    truth
        .iter()
        .zip(estimate)
        .map(|(t, e)| (t - e).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean signed error (estimate − truth): positive values mean overestimation.
#[must_use]
pub fn mean_error(truth: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(
        truth.len(),
        estimate.len(),
        "paired metric requires aligned slices"
    );
    if truth.is_empty() {
        return f64::NAN;
    }
    truth.iter().zip(estimate).map(|(t, e)| e - t).sum::<f64>() / truth.len() as f64
}

/// Summary statistics of one experimental series (one line of a figure or
/// one row of a table).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Number of paired observations.
    pub n: usize,
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean signed error (bias direction).
    pub bias: f64,
    /// Pearson correlation between truth and estimate.
    pub pearson: Option<f64>,
    /// Spearman rank correlation between truth and estimate.
    pub spearman: Option<f64>,
}

impl Summary {
    /// Computes all metrics for a paired series.
    #[must_use]
    pub fn from_pairs(truth: &[f64], estimate: &[f64]) -> Self {
        Self {
            n: truth.len(),
            mse: mse(truth, estimate),
            rmse: rmse(truth, estimate),
            bias: mean_error(truth, estimate),
            pearson: pearson(truth, estimate),
            spearman: spearman(truth, estimate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimates_have_zero_error() {
        let t = vec![1.0, 2.0, 3.0];
        assert_eq!(mse(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(mean_error(&t, &t), 0.0);
    }

    #[test]
    fn known_errors() {
        let t = vec![0.0, 0.0];
        let e = vec![1.0, -1.0];
        assert_eq!(mse(&t, &e), 1.0);
        assert_eq!(rmse(&t, &e), 1.0);
        assert_eq!(mae(&t, &e), 1.0);
        assert_eq!(mean_error(&t, &e), 0.0);
        let e2 = vec![2.0, 2.0];
        assert_eq!(mean_error(&t, &e2), 2.0);
    }

    #[test]
    fn empty_input_is_nan_not_zero() {
        assert!(mse(&[], &[]).is_nan());
        assert!(mae(&[], &[]).is_nan());
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        let _ = mse(&[1.0], &[]);
    }

    #[test]
    fn summary_packs_all_metrics() {
        let t = vec![1.0, 2.0, 3.0, 4.0];
        let e = vec![1.1, 2.1, 2.9, 4.2];
        let s = Summary::from_pairs(&t, &e);
        assert_eq!(s.n, 4);
        assert!(s.mse > 0.0 && s.mse < 0.1);
        assert!(s.pearson.unwrap() > 0.99);
        assert!(s.spearman.unwrap() > 0.99);
        assert!(s.bias.abs() < 0.2);
    }
}
