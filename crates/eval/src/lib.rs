//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section V).
//!
//! Each experiment lives in [`experiments`] and has a matching binary in
//! `src/bin/` that prints the same rows / series the paper reports:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp_fulljoin` | §V-B1 full-join estimator sanity check |
//! | `exp_fig2` | Figure 2 — Trinomial(m=512), LV2SK vs TUPSK |
//! | `exp_fig3` | Figure 3 — CDUnif, LV2SK vs TUPSK |
//! | `exp_fig4` | Figure 4 — effect of the number of distinct values |
//! | `exp_table1` | Table I — join size and MSE of all five sketches |
//! | `exp_table2` | Table II + §V-C3 — simulated open-data collections |
//! | `exp_fig5` | Figure 5 — estimates vs full join by sketch-join size |
//! | `exp_perf` | §V-D performance numbers |
//! | `exp_ablation` | ablations: sketch size, aggregation choice, coordination |
//! | `exp_calibration` | credible-interval coverage of the exact full-join MI |
//! | `exp_all` | runs everything above in sequence |
//!
//! The library part exposes the building blocks (metrics, the
//! sketch-estimation pipeline, report formatting) so the binaries stay thin
//! and the logic is unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod report;

pub use metrics::{mae, mean_error, mse, rmse, Summary};
pub use pipeline::{
    full_join_estimate, run_grid, run_grid_persisted, sketch_estimate, sketch_estimate_persisted,
    EstimatorMode, GridCell, SketchTrial, TrialOutcome,
};
pub use report::TableReport;
