//! Plain-text report formatting.
//!
//! Experiments print fixed-width tables to stdout (the "same rows the paper
//! reports") and can also serialize the underlying data as CSV so results are
//! machine-readable for EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TableReport {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Creates a report with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the report has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the report as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:width$}  ", cell, width = widths[i]);
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the report as CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 2 decimal places (the precision used in the paper's
/// tables).
#[must_use]
pub fn f2(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_owned()
    } else {
        format!("{v:.2}")
    }
}

/// Formats a float with 3 decimal places.
#[must_use]
pub fn f3(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_owned()
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional correlation.
#[must_use]
pub fn fcorr(v: Option<f64>) -> String {
    v.map_or_else(|| "n/a".to_owned(), f2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TableReport::new("Demo", &["Sketch", "MSE"]);
        t.push_row(vec!["TUPSK".into(), "0.22".into()]);
        t.push_row(vec!["LV2SK".into(), "0.32".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("TUPSK"));
        assert!(s.contains("0.32"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output_escapes_commas() {
        let mut t = TableReport::new("x", &["a", "b"]);
        t.push_row(vec!["hello, world".into(), "1".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_is_checked() {
        let mut t = TableReport::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(std::f64::consts::PI), "3.142");
        assert_eq!(f2(f64::NAN), "n/a");
        assert_eq!(fcorr(None), "n/a");
        assert_eq!(fcorr(Some(0.5)), "0.50");
    }
}
