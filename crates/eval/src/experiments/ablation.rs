//! Ablations for the design choices called out in DESIGN.md:
//!
//! * **Sketch-size sweep** — how the estimation error of TUPSK vs LV2SK
//!   shrinks as the budget `n` grows (the near-√n error decay discussed in
//!   Section IV-B "Accuracy Guarantees").
//! * **Coordination** — sketch-join size of coordinated (TUPSK) vs
//!   independent (INDSK) sampling as the table grows (the quadratic join
//!   shrinkage of §IV).
//! * **Aggregation choice** — how the featurization function changes the MI
//!   of the derived feature (Section III-B discussion).

use std::collections::BTreeMap;

use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::{decompose, KeyDistribution, TrinomialConfig};
use joinmi_table::{augment, Aggregation, AugmentSpec, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::mse;
use crate::pipeline::{sketch_estimate, sketch_join_size, EstimatorMode, SketchTrial};
use crate::report::{f2, TableReport};

/// Configuration of the ablation experiments.
#[derive(Debug, Clone)]
pub struct Config {
    /// Sketch sizes swept.
    pub sketch_sizes: Vec<usize>,
    /// Table sizes for the coordination ablation.
    pub table_sizes: Vec<usize>,
    /// Rows for the sketch-size sweep.
    pub rows: usize,
    /// Trials per configuration.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sketch_sizes: vec![64, 128, 256, 512, 1024],
            table_sizes: vec![2_000, 8_000, 32_000],
            rows: 10_000,
            trials: 12,
            seed: 47,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            sketch_sizes: vec![64, 256],
            table_sizes: vec![1_000, 4_000],
            rows: 3_000,
            trials: 3,
            seed: 47,
        }
    }
}

/// Sketch-size sweep: MSE of the MLE estimate per (sketch, n).
#[must_use]
pub fn sketch_size_sweep(cfg: &Config) -> BTreeMap<(String, usize), f64> {
    let mut pairs: BTreeMap<(String, usize), Vec<(f64, f64)>> = BTreeMap::new();
    for t in 0..cfg.trials {
        let seed = cfg.seed.wrapping_add(t as u64);
        let gen = TrinomialConfig::with_random_target(256, 3.5, seed);
        let data = gen.generate(cfg.rows, seed.wrapping_add(7));
        let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyDep);
        for kind in [SketchKind::Lv2sk, SketchKind::Tupsk] {
            for &n in &cfg.sketch_sizes {
                let trial = SketchTrial {
                    kind,
                    config: SketchConfig::new(n, seed),
                    mode: EstimatorMode::Mle,
                };
                if let Some(outcome) = sketch_estimate(&pair, &trial) {
                    pairs
                        .entry((kind.name().to_owned(), n))
                        .or_default()
                        .push((data.true_mi, outcome.estimate));
                }
            }
        }
    }
    pairs
        .into_iter()
        .map(|(key, series)| {
            let truth: Vec<f64> = series.iter().map(|p| p.0).collect();
            let est: Vec<f64> = series.iter().map(|p| p.1).collect();
            (key, mse(&truth, &est))
        })
        .collect()
}

/// Coordination ablation: average sketch-join size of TUPSK vs INDSK as the
/// table grows (sketch size fixed at 256).
#[must_use]
pub fn coordination_sweep(cfg: &Config) -> BTreeMap<(String, usize), f64> {
    let mut out = BTreeMap::new();
    for &rows in &cfg.table_sizes {
        let gen = TrinomialConfig::new(256, 0.4, 0.35);
        let data = gen.generate(rows, cfg.seed);
        let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyInd);
        for kind in [SketchKind::Tupsk, SketchKind::Indsk] {
            let mut sizes = Vec::new();
            for t in 0..cfg.trials {
                let config = SketchConfig::new(256, cfg.seed.wrapping_add(t as u64));
                if let Some(size) = sketch_join_size(&pair, kind, &config) {
                    sizes.push(size as f64);
                }
            }
            let avg = sizes.iter().sum::<f64>() / sizes.len().max(1) as f64;
            out.insert((kind.name().to_owned(), rows), avg);
        }
    }
    out
}

/// Aggregation-choice ablation: MI of the derived feature against the target
/// for AVG / MODE / COUNT / MAX on a many-to-many candidate.
#[must_use]
pub fn aggregation_choice(cfg: &Config) -> BTreeMap<String, f64> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Build a candidate table where each key has several readings whose mean
    // carries the signal (so AVG is informative, COUNT is not).
    let n_keys = 400usize;
    let mut train_keys = Vec::new();
    let mut targets = Vec::new();
    let mut cand_keys = Vec::new();
    let mut cand_values = Vec::new();
    for k in 0..n_keys {
        let signal: f64 = rng.gen::<f64>() * 10.0;
        train_keys.push(k as i64);
        targets.push((signal * 3.0 + rng.gen::<f64>()).round() as i64);
        let readings = rng.gen_range(2..8);
        for _ in 0..readings {
            cand_keys.push(k as i64);
            cand_values.push(signal + rng.gen::<f64>() - 0.5);
        }
    }
    let train = Table::builder("train")
        .push_int_column("key", train_keys)
        .push_int_column("y", targets)
        .build()
        .expect("aligned columns");
    let cand = Table::builder("cand")
        .push_int_column("key", cand_keys)
        .push_float_column("z", cand_values)
        .build()
        .expect("aligned columns");

    let mut out = BTreeMap::new();
    for agg in [
        Aggregation::Avg,
        Aggregation::Median,
        Aggregation::Count,
        Aggregation::Max,
    ] {
        let spec = AugmentSpec::new("key", "y", "key", "z", agg);
        let joined = augment(&train, &cand, &spec).expect("augmentation join");
        let feature_col = spec.feature_column_name();
        let xs: Vec<_> = (0..joined.table.num_rows())
            .map(|i| joined.table.value(i, &feature_col).expect("column"))
            .collect();
        let ys: Vec<_> = (0..joined.table.num_rows())
            .map(|i| joined.table.value(i, "y").expect("column"))
            .collect();
        if let Some(mi) = EstimatorMode::MixedKsg.estimate(&xs, &ys, cfg.seed) {
            out.insert(agg.name().to_owned(), mi);
        }
    }
    out
}

/// Renders all three ablations as one report each.
#[must_use]
pub fn report(cfg: &Config) -> Vec<TableReport> {
    let mut reports = Vec::new();

    let sweep = sketch_size_sweep(cfg);
    let mut t1 = TableReport::new(
        "Ablation: MSE vs sketch size (Trinomial m=256, KeyDep, MLE)",
        &["Sketch", "n", "MSE"],
    );
    for ((sketch, n), value) in &sweep {
        t1.push_row(vec![sketch.clone(), n.to_string(), f2(*value)]);
    }
    reports.push(t1);

    let coord = coordination_sweep(cfg);
    let mut t2 = TableReport::new(
        "Ablation: sketch-join size vs table size (n=256)",
        &["Sketch", "Rows", "Avg. Join Size"],
    );
    for ((sketch, rows), value) in &coord {
        t2.push_row(vec![
            sketch.clone(),
            rows.to_string(),
            format!("{value:.1}"),
        ]);
    }
    reports.push(t2);

    let aggs = aggregation_choice(cfg);
    let mut t3 = TableReport::new(
        "Ablation: MI of the derived feature per aggregation function",
        &["Aggregation", "MI (MixedKSG)"],
    );
    for (agg, mi) in &aggs {
        t3.push_row(vec![agg.clone(), f2(*mi)]);
    }
    reports.push(t3);

    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_sketches_reduce_error() {
        let cfg = Config::quick();
        let sweep = sketch_size_sweep(&cfg);
        let small = sweep[&("TUPSK".to_owned(), 64)];
        let large = sweep[&("TUPSK".to_owned(), 256)];
        assert!(
            large <= small * 1.5,
            "MSE should not grow with n: {small} -> {large}"
        );
    }

    #[test]
    fn coordination_keeps_join_size_while_independent_shrinks() {
        let cfg = Config::quick();
        let coord = coordination_sweep(&cfg);
        let tup_large = coord[&("TUPSK".to_owned(), 4_000)];
        let ind_large = coord[&("INDSK".to_owned(), 4_000)];
        assert!(
            tup_large > ind_large,
            "TUPSK {tup_large} vs INDSK {ind_large}"
        );
    }

    #[test]
    fn avg_beats_count_when_the_signal_is_in_the_mean() {
        let cfg = Config::quick();
        let aggs = aggregation_choice(&cfg);
        assert!(aggs["AVG"] > aggs["COUNT"], "{aggs:?}");
    }

    #[test]
    fn reports_render() {
        let reports = report(&Config::quick());
        assert_eq!(reports.len(), 3);
        for r in reports {
            assert!(!r.is_empty());
        }
    }
}
