//! Figure 4 — effect of the number of distinct values: Trinomial with
//! m ∈ {16, 64, 256, 512, 1024}, sketch size fixed at n = 256.
//!
//! The qualitative finding: as `m / n` grows, estimators that treat the data
//! as discrete (MLE, and MixedKSG's tie handling) accumulate positive bias —
//! by m = 1024 the MLE squeezes every estimate into a narrow high-MI band —
//! while DC-KSG degrades differently (§V-B4).

use std::collections::BTreeMap;

use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::{decompose, KeyDistribution, TrinomialConfig};

use crate::metrics::Summary;
use crate::pipeline::{sketch_estimate, EstimatorMode, SketchTrial};
use crate::report::{f2, fcorr, TableReport};

/// Configuration of the Figure 4 experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// The `m` values swept (one sub-plot each in the paper).
    pub ms: Vec<u32>,
    /// Rows of the generated table.
    pub rows: usize,
    /// Sketch size.
    pub sketch_size: usize,
    /// Trials per `m`.
    pub trials: usize,
    /// Sketching strategy (TUPSK in the paper's Figure 4).
    pub kind: SketchKind,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            ms: vec![16, 64, 256, 512, 1024],
            rows: 10_000,
            sketch_size: 256,
            trials: 30,
            kind: SketchKind::Tupsk,
            seed: 19,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            ms: vec![16, 64],
            rows: 2_000,
            sketch_size: 128,
            trials: 5,
            ..Self::default()
        }
    }
}

/// Scatter points per (m, estimator).
pub type Series = BTreeMap<(u32, String), Vec<(f64, f64)>>;

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &Config) -> Series {
    let mut series: Series = BTreeMap::new();
    for &m in &cfg.ms {
        for t in 0..cfg.trials {
            let seed = cfg.seed.wrapping_add(u64::from(m) * 1000 + t as u64);
            let gen = TrinomialConfig::with_random_target(m, 3.5, seed);
            let data = gen.generate(cfg.rows, seed.wrapping_add(77));
            let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyInd);
            for mode in EstimatorMode::TRINOMIAL {
                let trial = SketchTrial {
                    kind: cfg.kind,
                    config: SketchConfig::new(cfg.sketch_size, seed),
                    mode,
                };
                if let Some(outcome) = sketch_estimate(&pair, &trial) {
                    series
                        .entry((m, mode.name().to_owned()))
                        .or_default()
                        .push((data.true_mi, outcome.estimate));
                }
            }
        }
    }
    series
}

/// Renders the per-(m, estimator) summary.
#[must_use]
pub fn report(series: &Series) -> TableReport {
    let mut table = TableReport::new(
        "Figure 4: Trinomial, TUPSK n=256 — effect of the number of distinct values m",
        &["m", "Estimator", "Points", "Bias", "MSE", "Pearson r"],
    );
    for ((m, estimator), pairs) in series {
        let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let est: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let s = Summary::from_pairs(&truth, &est);
        table.push_row(vec![
            m.to_string(),
            estimator.clone(),
            s.n.to_string(),
            f2(s.bias),
            f2(s.mse),
            fcorr(s.pearson),
        ]);
    }
    table
}

/// Mean MLE bias per `m` — used to verify the "bias grows with m" trend.
#[must_use]
pub fn mle_bias_by_m(series: &Series) -> BTreeMap<u32, f64> {
    series
        .iter()
        .filter(|((_, est), _)| est == "MLE")
        .map(|((m, _), pairs)| {
            let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let est: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            (*m, crate::metrics::mean_error(&truth, &est))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_series_per_m_and_estimator() {
        let cfg = Config::quick();
        let series = run(&cfg);
        assert_eq!(series.len(), cfg.ms.len() * 3);
        assert!(!report(&series).is_empty());
        let bias = mle_bias_by_m(&series);
        assert_eq!(bias.len(), cfg.ms.len());
    }
}
