//! Figure 3 — CDUnif with sketch size n = 256: LV2SK vs TUPSK under the two
//! key regimes, MixedKSG and DC-KSG estimators.
//!
//! The qualitative finding: as the true MI approaches `ln m` for
//! `m ≈ n` (I ≈ 4.85 for m = 256), the number of samples per distinct value
//! collapses and the estimators break down; LV2SK breaks down earlier
//! (around I ≈ 4.25 for DC-KSG), TUPSK degrades more gracefully (§V-B4).

use std::collections::BTreeMap;

use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::{decompose, CdUnifConfig, KeyDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Summary;
use crate::pipeline::{sketch_estimate, EstimatorMode, SketchTrial};
use crate::report::{f2, fcorr, TableReport};

/// Configuration of the Figure 3 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Range of the CDUnif `m` parameter (the paper draws m ∈ [2, 1000]).
    pub m_range: (u32, u32),
    /// Rows of the generated table.
    pub rows: usize,
    /// Sketch size.
    pub sketch_size: usize,
    /// Number of generated data sets.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            m_range: (2, 1000),
            rows: 10_000,
            sketch_size: 256,
            trials: 40,
            seed: 13,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            m_range: (2, 64),
            rows: 2_000,
            sketch_size: 128,
            trials: 6,
            seed: 13,
        }
    }
}

/// Scatter points (true MI, sketch estimate) per (sketch, estimator, keys).
pub type Series = BTreeMap<(String, String, String), Vec<(f64, f64)>>;

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &Config) -> Series {
    let mut series: Series = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sketches = [SketchKind::Lv2sk, SketchKind::Tupsk];

    for t in 0..cfg.trials {
        let m = rng.gen_range(cfg.m_range.0..=cfg.m_range.1);
        let gen = CdUnifConfig::new(m);
        let data = gen.generate(cfg.rows, cfg.seed.wrapping_add(3000 + t as u64));
        for key_dist in KeyDistribution::ALL {
            let pair = decompose(&data.xs, &data.ys, key_dist);
            for kind in sketches {
                for mode in EstimatorMode::CDUNIF {
                    let trial = SketchTrial {
                        kind,
                        config: SketchConfig::new(cfg.sketch_size, cfg.seed.wrapping_add(t as u64)),
                        mode,
                    };
                    if let Some(outcome) = sketch_estimate(&pair, &trial) {
                        series
                            .entry((
                                kind.name().to_owned(),
                                mode.name().to_owned(),
                                key_dist.name().to_owned(),
                            ))
                            .or_default()
                            .push((data.true_mi, outcome.estimate));
                    }
                }
            }
        }
    }
    series
}

/// Renders the per-line summary plus a separate breakdown row for the
/// high-MI regime (true MI > 4.25, where the paper observes the estimators
/// collapsing).
#[must_use]
pub fn report(series: &Series) -> TableReport {
    let mut table = TableReport::new(
        "Figure 3: CDUnif, sketch size n=256 — sketch estimate vs true MI",
        &[
            "Sketch",
            "Estimator",
            "Keys",
            "Regime",
            "Points",
            "Bias",
            "MSE",
            "Pearson r",
        ],
    );
    for ((sketch, estimator, keys), pairs) in series {
        for (regime, filter) in [
            ("all", Box::new(|_: f64| true) as Box<dyn Fn(f64) -> bool>),
            ("MI>4.25", Box::new(|t: f64| t > 4.25)),
        ] {
            let filtered: Vec<(f64, f64)> =
                pairs.iter().copied().filter(|(t, _)| filter(*t)).collect();
            if filtered.is_empty() {
                continue;
            }
            let truth: Vec<f64> = filtered.iter().map(|p| p.0).collect();
            let est: Vec<f64> = filtered.iter().map(|p| p.1).collect();
            let s = Summary::from_pairs(&truth, &est);
            table.push_row(vec![
                sketch.clone(),
                estimator.clone(),
                keys.clone(),
                regime.to_owned(),
                s.n.to_string(),
                f2(s.bias),
                f2(s.mse),
                fcorr(s.pearson),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_eight_series() {
        let series = run(&Config::quick());
        // 2 sketches × 2 estimators × 2 key regimes.
        assert_eq!(series.len(), 8);
        for pairs in series.values() {
            assert!(!pairs.is_empty());
        }
        assert!(!report(&series).is_empty());
    }
}
