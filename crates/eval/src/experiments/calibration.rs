//! Credible-interval calibration: coverage of the exact full-join MI.
//!
//! The discovery layer decorates every ranked candidate with a
//! Hutter–Zaffalon credible interval (`joinmi_estimators::posterior`). This
//! experiment asks whether those intervals are *calibrated*: when a corpus of
//! `n` rows (possibly NULL-degraded) yields an interval at level `γ`, does
//! the interval contain the exact full-join MI a fraction ≈ `γ` of the time?
//!
//! The "truth" per trial is the full-join MLE on a large reference sample
//! from the same generating distribution — the quantity
//! [`full_join_estimate`] already computes for the §V-B1 baseline, at a
//! sample size where its own error is negligible next to the corpus-side
//! interval width. The corpus is an independent, smaller draw with a
//! configurable fraction of entries replaced by NULL
//! ([`joinmi_synth::GeneratedPair::with_null_fraction`]); only complete
//! (both-sides non-NULL) pairs feed the estimate, exactly as a sketch join
//! drops rows whose key or value is missing. The sweep is corpus size ×
//! NULL fraction, so the report shows both that intervals widen as the
//! effective sample shrinks and that coverage stays near nominal while they
//! do.

use std::collections::BTreeMap;

use joinmi_estimators::{credible_interval, discretize, mi_posterior, mle_mi};
use joinmi_synth::TrinomialConfig;
use joinmi_table::Value;

use crate::pipeline::{full_join_estimate, EstimatorMode};
use crate::report::{f2, f3, TableReport};

/// Configuration of the calibration experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Trials per (corpus size, NULL fraction) cell.
    pub trials: usize,
    /// Corpus sizes swept (rows drawn for the interval-producing side).
    pub corpus_rows: Vec<usize>,
    /// NULL fractions swept (independently applied to each X and Y entry).
    pub null_fractions: Vec<f64>,
    /// Rows of the reference sample the exact full-join MI is computed on.
    pub reference_rows: usize,
    /// Two-sided credible level of the intervals under test.
    pub level: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            trials: 40,
            corpus_rows: vec![1_000, 4_000, 16_000],
            null_fractions: vec![0.0, 0.2, 0.5],
            reference_rows: 40_000,
            level: 0.95,
            seed: 42,
        }
    }
}

impl Config {
    /// A fast configuration for tests / smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            trials: 12,
            corpus_rows: vec![800, 6_000],
            null_fractions: vec![0.0, 0.4],
            reference_rows: 16_000,
            level: 0.95,
            seed: 42,
        }
    }
}

/// One trial's interval next to the exact full-join MI it should cover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageTrial {
    /// Exact full-join MI (reference-sample MLE).
    pub truth: f64,
    /// Corpus-side point estimate.
    pub mi: f64,
    /// Lower credible bound.
    pub ci_lo: f64,
    /// Upper credible bound.
    pub ci_hi: f64,
}

impl CoverageTrial {
    /// Whether the interval contains the exact full-join MI.
    #[must_use]
    pub fn covered(&self) -> bool {
        self.ci_lo <= self.truth && self.truth <= self.ci_hi
    }

    /// Interval width in nats.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.ci_hi - self.ci_lo
    }
}

/// Per-cell trial series, keyed by `(corpus rows, NULL fraction in permille)`
/// so the map orders cells the way the report prints them.
pub type Series = BTreeMap<(usize, u32), Vec<CoverageTrial>>;

/// The permille key used in [`Series`] for a NULL fraction.
#[must_use]
pub fn permille(null_fraction: f64) -> u32 {
    (null_fraction * 1000.0).round() as u32
}

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &Config) -> Series {
    let ms = [4u32, 8, 16];
    let mut series = Series::new();
    for (ri, &rows) in cfg.corpus_rows.iter().enumerate() {
        for (ni, &nf) in cfg.null_fractions.iter().enumerate() {
            let cell: &mut Vec<CoverageTrial> = series.entry((rows, permille(nf))).or_default();
            for t in 0..cfg.trials {
                let base = cfg
                    .seed
                    .wrapping_add(((ri * 97 + ni * 13 + 1) * 100_000 + t) as u64);
                let m = ms[t % ms.len()];
                let gen = TrinomialConfig::with_random_target(m, 3.0, base);

                // Exact full-join MI: the same quantity the §V-B1 baseline
                // computes, on a reference sample large enough that its own
                // error is negligible against the corpus interval width.
                let reference = gen.generate(cfg.reference_rows, base.wrapping_add(1));
                let Some(truth) =
                    full_join_estimate(&reference.xs, &reference.ys, EstimatorMode::Mle, t as u64)
                else {
                    continue;
                };

                // Independent NULL-degraded corpus; estimate on the complete
                // pairs only, as the sketch-join path would recover them.
                let corpus = gen
                    .generate(rows, base.wrapping_add(2))
                    .with_null_fraction(nf, base.wrapping_add(3));
                let (xs, ys) = complete_pairs(&corpus.xs, &corpus.ys);
                let cx = discretize(&xs);
                let cy = discretize(&ys);
                let (Ok(mi), Ok(post)) = (mle_mi(&cx, &cy), mi_posterior(&cx, &cy)) else {
                    continue;
                };
                let Ok(interval) = credible_interval(mi, post, cfg.level) else {
                    continue;
                };
                cell.push(CoverageTrial {
                    truth,
                    mi,
                    ci_lo: interval.ci_lo,
                    ci_hi: interval.ci_hi,
                });
            }
        }
    }
    series
}

/// Keeps only pairs where both sides are non-NULL (what a join recovers).
fn complete_pairs(xs: &[Value], ys: &[Value]) -> (Vec<Value>, Vec<Value>) {
    xs.iter()
        .zip(ys)
        .filter(|(x, y)| !x.is_null() && !y.is_null())
        .map(|(x, y)| (x.clone(), y.clone()))
        .unzip()
}

/// Renders the calibration table.
#[must_use]
pub fn report(series: &Series, level: f64) -> TableReport {
    let mut table = TableReport::new(
        "Credible-interval calibration: coverage of the exact full-join MI",
        &[
            "Corpus rows",
            "NULL %",
            "Trials",
            "Coverage",
            "Nominal",
            "Mean width",
            "Mean |err|",
        ],
    );
    for ((rows, nf_permille), trials) in series {
        if trials.is_empty() {
            continue;
        }
        let n = trials.len() as f64;
        let coverage = trials.iter().filter(|t| t.covered()).count() as f64 / n;
        let width = trials.iter().map(CoverageTrial::width).sum::<f64>() / n;
        let err = trials.iter().map(|t| (t.mi - t.truth).abs()).sum::<f64>() / n;
        table.push_row(vec![
            rows.to_string(),
            format!("{:.1}", *nf_permille as f64 / 10.0),
            trials.len().to_string(),
            format!("{:.0}%", coverage * 100.0),
            format!("{:.0}%", level * 100.0),
            f3(width),
            f2(err),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_are_calibrated_and_shrink_with_corpus_size() {
        let cfg = Config::quick();
        let series = run(&cfg);
        assert_eq!(
            series.len(),
            cfg.corpus_rows.len() * cfg.null_fractions.len()
        );

        let mean_width = |rows: usize, nf: f64| {
            let cell = &series[&(rows, permille(nf))];
            assert!(
                cell.len() * 2 >= cfg.trials,
                "{rows} rows / {nf}: too few usable trials ({})",
                cell.len()
            );
            cell.iter().map(CoverageTrial::width).sum::<f64>() / cell.len() as f64
        };

        // Coverage near nominal in every cell (loose at quick-run scale).
        for ((rows, nf), trials) in &series {
            let coverage = trials.iter().filter(|t| t.covered()).count() as f64;
            assert!(
                coverage / trials.len() as f64 >= 0.5,
                "{rows} rows / {nf}‰: coverage {coverage}/{} under level {}",
                trials.len(),
                cfg.level
            );
        }

        // Intervals widen when NULLs shrink the effective sample, and shrink
        // as the corpus grows.
        let small = cfg.corpus_rows[0];
        let large = *cfg.corpus_rows.last().unwrap();
        assert!(mean_width(large, 0.0) < mean_width(small, 0.0));
        assert!(mean_width(small, 0.4) > mean_width(small, 0.0));

        let table = report(&series, cfg.level);
        assert!(!table.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = Config::quick();
        assert_eq!(run(&cfg), run(&cfg));
    }
}
