//! Table I — average sketch-join size and MSE for all five sketching
//! strategies on the synthetic benchmarks.
//!
//! The qualitative findings: INDSK recovers far fewer joined pairs (its
//! sample is uncoordinated), CSK sits in between (it ignores key
//! multiplicity), the two-level sketches recover close to n pairs, and TUPSK
//! recovers exactly n pairs with the lowest MSE.

use std::collections::BTreeMap;

use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::{decompose, CdUnifConfig, KeyDistribution, TrinomialConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::mse;
use crate::pipeline::{sketch_estimate, EstimatorMode, SketchTrial};
use crate::report::{f2, TableReport};

/// Configuration of the Table I experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rows of each generated table.
    pub rows: usize,
    /// Sketch size (256 in the paper).
    pub sketch_size: usize,
    /// Trials per dataset family (spread over key regimes and `m` values).
    pub trials: usize,
    /// Trinomial `m` values cycled through.
    pub trinomial_ms: Vec<u32>,
    /// Upper bound of the CDUnif `m` parameter (drawn uniformly from
    /// `[2, cdunif_m_max]`).
    pub cdunif_m_max: u32,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            rows: 10_000,
            sketch_size: 256,
            trials: 24,
            trinomial_ms: vec![16, 64, 256, 512, 1024],
            cdunif_m_max: 1000,
            seed: 23,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            rows: 2_000,
            sketch_size: 128,
            trials: 4,
            trinomial_ms: vec![16, 64],
            cdunif_m_max: 64,
            seed: 23,
        }
    }
}

/// Per-(dataset, sketch) accumulated results.
#[derive(Debug, Clone, Default)]
pub struct Row {
    /// Sketch-join sizes observed.
    pub join_sizes: Vec<usize>,
    /// (true MI, estimate) pairs.
    pub pairs: Vec<(f64, f64)>,
}

/// Results keyed by (dataset, sketch name).
pub type Results = BTreeMap<(String, String), Row>;

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &Config) -> Results {
    let mut results: Results = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for t in 0..cfg.trials {
        let key_dist = if t % 2 == 0 {
            KeyDistribution::KeyInd
        } else {
            KeyDistribution::KeyDep
        };

        // Trinomial trial.
        let m = cfg.trinomial_ms[t % cfg.trinomial_ms.len()];
        let seed = cfg.seed.wrapping_add(t as u64);
        let gen = TrinomialConfig::with_random_target(m, 3.5, seed);
        let data = gen.generate(cfg.rows, seed.wrapping_add(91));
        let pair = decompose(&data.xs, &data.ys, key_dist);
        for kind in SketchKind::ALL {
            for mode in EstimatorMode::TRINOMIAL {
                let trial = SketchTrial {
                    kind,
                    config: SketchConfig::new(cfg.sketch_size, seed),
                    mode,
                };
                if let Some(outcome) = sketch_estimate(&pair, &trial) {
                    let row = results
                        .entry(("Trinomial".to_owned(), kind.name().to_owned()))
                        .or_default();
                    row.join_sizes.push(outcome.join_size);
                    row.pairs.push((data.true_mi, outcome.estimate));
                }
            }
        }

        // CDUnif trial (KeyDep applies because X is discrete).
        let m = rng.gen_range(2u32..=cfg.cdunif_m_max);
        let gen = CdUnifConfig::new(m);
        let data = gen.generate(cfg.rows, seed.wrapping_add(191));
        let pair = decompose(&data.xs, &data.ys, key_dist);
        for kind in SketchKind::ALL {
            for mode in EstimatorMode::CDUNIF {
                let trial = SketchTrial {
                    kind,
                    config: SketchConfig::new(cfg.sketch_size, seed),
                    mode,
                };
                if let Some(outcome) = sketch_estimate(&pair, &trial) {
                    let row = results
                        .entry(("CDUnif".to_owned(), kind.name().to_owned()))
                        .or_default();
                    row.join_sizes.push(outcome.join_size);
                    row.pairs.push((data.true_mi, outcome.estimate));
                }
            }
        }
    }
    results
}

/// Renders the Table I layout: dataset, sketch, average sketch-join size,
/// size as a percentage of n, and MSE against the true MI.
#[must_use]
pub fn report(results: &Results, sketch_size: usize) -> TableReport {
    let mut table = TableReport::new(
        "Table I: sketch join size and MSE vs true MI (synthetic benchmarks)",
        &["Dataset", "Sketch", "Avg. Sketch Join Size", "%", "MSE"],
    );
    for ((dataset, sketch), row) in results {
        let avg_join =
            row.join_sizes.iter().sum::<usize>() as f64 / row.join_sizes.len().max(1) as f64;
        let truth: Vec<f64> = row.pairs.iter().map(|p| p.0).collect();
        let est: Vec<f64> = row.pairs.iter().map(|p| p.1).collect();
        table.push_row(vec![
            dataset.clone(),
            sketch.clone(),
            format!("{avg_join:.1}"),
            f2(100.0 * avg_join / sketch_size as f64),
            f2(mse(&truth, &est)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sketches_appear_and_tupsk_fills_the_budget() {
        let cfg = Config::quick();
        let results = run(&cfg);
        // 2 datasets × 5 sketches.
        assert_eq!(results.len(), 10);

        for dataset in ["Trinomial", "CDUnif"] {
            let tupsk = &results[&(dataset.to_owned(), "TUPSK".to_owned())];
            let indsk = &results[&(dataset.to_owned(), "INDSK".to_owned())];
            let avg = |sizes: &[usize]| sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
            // TUPSK recovers (close to) the full budget; INDSK recovers far less.
            assert!(avg(&tupsk.join_sizes) >= 0.95 * cfg.sketch_size as f64);
            assert!(avg(&indsk.join_sizes) < 0.7 * cfg.sketch_size as f64);
        }
        assert_eq!(report(&results, cfg.sketch_size).len(), 10);
    }
}
