//! Figure 2 — true MI vs. sketch MI estimate for Trinomial(m = 512),
//! sketch size n = 256, LV2SK vs TUPSK, three estimators, two join-key
//! regimes.
//!
//! The qualitative findings this experiment reproduces:
//! * with only n = 256 samples all estimators show visible bias/variance;
//! * under `KeyDep` the LV2SK estimates degrade (larger bias) while TUPSK is
//!   essentially unaffected by the join-key distribution (§V-B3).

use std::collections::BTreeMap;

use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::{decompose, DecomposedPair, KeyDistribution, TrinomialConfig};

use crate::metrics::Summary;
use crate::pipeline::{run_grid, EstimatorMode, GridCell, SketchTrial};
use crate::report::{f2, fcorr, TableReport};

/// Configuration of the Figure 2 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Trinomial `m` parameter (512 in the paper).
    pub m: u32,
    /// Rows of the generated (full-join) table.
    pub rows: usize,
    /// Sketch size.
    pub sketch_size: usize,
    /// Number of generated data sets (scatter points per line).
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            m: 512,
            rows: 10_000,
            sketch_size: 256,
            trials: 40,
            seed: 7,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            m: 64,
            rows: 2_000,
            sketch_size: 128,
            trials: 6,
            seed: 7,
        }
    }
}

/// One line of the figure: sketch × estimator × key regime.
pub type SeriesKey = (SketchKind, &'static str, KeyDistribution);
/// Scatter points (analytical MI, sketch estimate) per line.
pub type Series = BTreeMap<(String, String, String), Vec<(f64, f64)>>;

/// Runs the experiment and returns the scatter series keyed by
/// `(sketch, estimator, key regime)` names.
///
/// Both stages run on the parallel pipeline: data generation + decomposition
/// fan out per trial, then the full `(trial × regime × sketch × estimator)`
/// grid is one [`run_grid`] work queue. The cell order reproduces the
/// sequential loop nesting, so the series (and every scatter point in them)
/// are identical to a single-threaded run.
#[must_use]
pub fn run(cfg: &Config) -> Series {
    let sketches = [SketchKind::Lv2sk, SketchKind::Tupsk];

    // Stage 1: per-trial data generation and per-regime decomposition.
    let datasets: Vec<(f64, Vec<DecomposedPair>)> = joinmi_par::par_map_index(cfg.trials, |t| {
        let gen = TrinomialConfig::with_random_target(cfg.m, 3.5, cfg.seed.wrapping_add(t as u64));
        let data = gen.generate(cfg.rows, cfg.seed.wrapping_add(5000 + t as u64));
        let pairs: Vec<DecomposedPair> = KeyDistribution::ALL
            .into_iter()
            .map(|key_dist| decompose(&data.xs, &data.ys, key_dist))
            .collect();
        (data.true_mi, pairs)
    });

    // Stage 2: flatten the cross product into one grid, preserving the
    // sequential t → regime → sketch → estimator order.
    let mut flat_pairs: Vec<DecomposedPair> = Vec::new();
    let mut cells: Vec<GridCell> = Vec::new();
    let mut cell_meta: Vec<(f64, SketchKind, EstimatorMode, KeyDistribution)> = Vec::new();
    for (t, (true_mi, pairs)) in datasets.into_iter().enumerate() {
        for (pair, key_dist) in pairs.into_iter().zip(KeyDistribution::ALL) {
            let pair_index = flat_pairs.len();
            flat_pairs.push(pair);
            for kind in sketches {
                for mode in EstimatorMode::TRINOMIAL {
                    cells.push((
                        pair_index,
                        SketchTrial {
                            kind,
                            config: SketchConfig::new(
                                cfg.sketch_size,
                                cfg.seed.wrapping_add(t as u64),
                            ),
                            mode,
                        },
                    ));
                    cell_meta.push((true_mi, kind, mode, key_dist));
                }
            }
        }
    }

    let outcomes = run_grid(&flat_pairs, &cells);

    let mut series: Series = BTreeMap::new();
    for ((true_mi, kind, mode, key_dist), outcome) in cell_meta.into_iter().zip(outcomes) {
        if let Some(outcome) = outcome {
            series
                .entry((
                    kind.name().to_owned(),
                    mode.name().to_owned(),
                    key_dist.name().to_owned(),
                ))
                .or_default()
                .push((true_mi, outcome.estimate));
        }
    }
    series
}

/// Renders the per-line summary (bias / MSE / correlation), the tabular
/// equivalent of the figure.
#[must_use]
pub fn report(series: &Series) -> TableReport {
    let mut table = TableReport::new(
        "Figure 2: Trinomial(m=512), sketch size n=256 — sketch estimate vs analytical MI",
        &[
            "Sketch",
            "Estimator",
            "Keys",
            "Points",
            "Bias",
            "MSE",
            "Pearson r",
        ],
    );
    for ((sketch, estimator, keys), pairs) in series {
        let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let est: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let s = Summary::from_pairs(&truth, &est);
        table.push_row(vec![
            sketch.clone(),
            estimator.clone(),
            keys.clone(),
            s.n.to_string(),
            f2(s.bias),
            f2(s.mse),
            fcorr(s.pearson),
        ]);
    }
    table
}

/// Aggregates, for each sketch, the increase in MSE caused by switching from
/// `KeyInd` to `KeyDep` (averaged over estimators) — the headline comparison
/// of §V-B3: the penalty should be visibly larger for LV2SK than for TUPSK.
#[must_use]
pub fn key_dependence_penalty(series: &Series) -> BTreeMap<String, f64> {
    let mut per_sketch: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for ((sketch, _estimator, keys), pairs) in series {
        let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let est: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let mse = crate::metrics::mse(&truth, &est);
        let entry = per_sketch.entry(sketch.clone()).or_default();
        if keys == "KeyDep" {
            entry.1.push(mse);
        } else {
            entry.0.push(mse);
        }
    }
    per_sketch
        .into_iter()
        .map(|(sketch, (ind, dep))| {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            (sketch, mean(&dep) - mean(&ind))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_twelve_series() {
        let series = run(&Config::quick());
        // 2 sketches × 3 estimators × 2 key regimes.
        assert_eq!(series.len(), 12);
        for pairs in series.values() {
            assert!(!pairs.is_empty());
            for (truth, est) in pairs {
                assert!(*truth >= 0.0 && est.is_finite());
            }
        }
        let table = report(&series);
        assert_eq!(table.len(), 12);
        let penalty = key_dependence_penalty(&series);
        assert!(penalty.contains_key("TUPSK") && penalty.contains_key("LV2SK"));
    }
}
