//! Table II + §V-C3 — sketch estimates vs. full-join estimates on simulated
//! open-data collections.
//!
//! For each collection (NYC-like, WBF-like) and each sketching strategy
//! (LV2SK, PRISK, TUPSK, n = 1024): average sketch-join size, Spearman rank
//! correlation between the sketch estimates and the full-join estimates
//! (what matters for ranking candidates), and MSE. The §V-C3 estimator
//! comparison (MLE magnitudes vs KSG-family magnitudes) is reported from the
//! same runs.

use std::collections::BTreeMap;

use joinmi_synth::{OpenDataCollection, OpenDataConfig};

use crate::metrics::{mse, spearman};
use crate::report::{f2, fcorr, TableReport};

use super::collection::{CollectionEval, PairResult};

/// Configuration of the Table II experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// The collection evaluation parameters (sketch size, pair budget, …).
    pub eval: CollectionEval,
    /// Seeds for the two simulated collections.
    pub nyc_seed: u64,
    /// Seed for the WBF-like collection.
    pub wbf_seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            eval: CollectionEval::default(),
            nyc_seed: 101,
            wbf_seed: 202,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            eval: CollectionEval {
                sketch_size: 256,
                min_join_size: 50,
                max_pairs: 12,
                ..CollectionEval::default()
            },
            nyc_seed: 101,
            wbf_seed: 202,
        }
    }

    fn collections(&self) -> Vec<OpenDataCollection> {
        let scale = if self.eval.max_pairs <= 20 { 0.4 } else { 1.0 };
        let shrink = |mut c: OpenDataConfig| {
            c.num_tables = ((c.num_tables as f64) * scale).max(5.0) as usize;
            c.rows_range = (
                ((c.rows_range.0 as f64) * scale).max(400.0) as usize,
                ((c.rows_range.1 as f64) * scale).max(800.0) as usize,
            );
            c.key_universe = ((c.key_universe as f64) * scale).max(300.0) as usize;
            c
        };
        vec![
            OpenDataCollection::generate(&shrink(OpenDataConfig::nyc_like(self.nyc_seed))),
            OpenDataCollection::generate(&shrink(OpenDataConfig::wbf_like(self.wbf_seed))),
        ]
    }
}

/// Per-collection results.
pub type Results = BTreeMap<String, Vec<PairResult>>;

/// Runs the experiment on both simulated collections.
#[must_use]
pub fn run(cfg: &Config) -> Results {
    cfg.collections()
        .into_iter()
        .map(|collection| {
            let results = cfg.eval.run(&collection);
            (collection.name, results)
        })
        .collect()
}

/// Renders the Table II layout.
#[must_use]
pub fn report(results: &Results) -> TableReport {
    let mut table = TableReport::new(
        "Table II: sketch estimate vs full-join estimate (simulated open-data collections)",
        &[
            "Dataset",
            "Sketch",
            "Pairs",
            "Avg. Join Size",
            "Spearman's R",
            "MSE",
        ],
    );
    for (collection, pair_results) in results {
        let mut sketch_names: Vec<String> = pair_results
            .iter()
            .flat_map(|r| r.sketches.keys().cloned())
            .collect();
        sketch_names.sort();
        sketch_names.dedup();
        for sketch in sketch_names {
            let mut full = Vec::new();
            let mut est = Vec::new();
            let mut join_sizes = Vec::new();
            for r in pair_results {
                if let Some(&(mi, join)) = r.sketches.get(&sketch) {
                    full.push(r.full_mi);
                    est.push(mi);
                    join_sizes.push(join as f64);
                }
            }
            if full.is_empty() {
                continue;
            }
            let avg_join = join_sizes.iter().sum::<f64>() / join_sizes.len() as f64;
            table.push_row(vec![
                collection.clone(),
                sketch.clone(),
                full.len().to_string(),
                format!("{avg_join:.1}"),
                fcorr(spearman(&est, &full)),
                f2(mse(&full, &est)),
            ]);
        }
    }
    table
}

/// Renders the §V-C3 estimator-magnitude comparison: the range of MI values
/// produced by each estimator on the full joins of the collections.
#[must_use]
pub fn estimator_magnitude_report(results: &Results) -> TableReport {
    let mut table = TableReport::new(
        "Section V-C3: magnitude of full-join MI estimates per estimator",
        &[
            "Dataset",
            "Estimator",
            "Pairs",
            "Min MI",
            "Mean MI",
            "Max MI",
        ],
    );
    for (collection, pair_results) in results {
        let mut per_estimator: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for r in pair_results {
            per_estimator
                .entry(r.estimator.clone())
                .or_default()
                .push(r.full_mi);
        }
        for (estimator, values) in per_estimator {
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            table.push_row(vec![
                collection.clone(),
                estimator,
                values.len().to_string(),
                f2(min),
                f2(mean),
                f2(max),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rows_for_both_collections() {
        let results = run(&Config::quick());
        assert_eq!(results.len(), 2);
        assert!(results.contains_key("NYC-sim"));
        assert!(results.contains_key("WBF-sim"));
        let t = report(&results);
        assert!(!t.is_empty());
        let m = estimator_magnitude_report(&results);
        assert!(!m.is_empty());
    }
}
