//! Figure 5 — sketch estimates vs. full-join estimates broken down by
//! sketch-join size and estimator (WBF-like collection, TUPSK, n = 1024).
//!
//! The qualitative findings: the agreement between sketch and full-join
//! estimates improves monotonically with the sketch-join size; with small
//! samples the MLE over-estimates and the KSG-family estimators collapse
//! toward zero (§V-C2).

use std::collections::BTreeMap;

use joinmi_sketch::SketchKind;
use joinmi_synth::{OpenDataCollection, OpenDataConfig};

use crate::metrics::Summary;
use crate::report::{f2, fcorr, TableReport};

use super::collection::{CollectionEval, PairResult};

/// Configuration of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// The collection evaluation parameters.
    pub eval: CollectionEval,
    /// Join-size thresholds used for the sub-plots.
    pub thresholds: Vec<usize>,
    /// Seed of the WBF-like collection.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            eval: CollectionEval {
                kinds: vec![SketchKind::Tupsk],
                sketch_size: 1024,
                min_join_size: 100,
                max_pairs: 150,
                seed: 3,
            },
            thresholds: vec![128, 256, 512, 768],
            seed: 202,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            eval: CollectionEval {
                kinds: vec![SketchKind::Tupsk],
                sketch_size: 256,
                min_join_size: 30,
                max_pairs: 12,
                seed: 3,
            },
            thresholds: vec![50, 100],
            seed: 202,
        }
    }
}

/// Runs the experiment: returns the per-pair results of the WBF-like
/// collection for the TUPSK sketch.
#[must_use]
pub fn run(cfg: &Config) -> Vec<PairResult> {
    let scale = if cfg.eval.max_pairs <= 20 { 0.4 } else { 1.0 };
    let mut collection_cfg = OpenDataConfig::wbf_like(cfg.seed);
    collection_cfg.num_tables = ((collection_cfg.num_tables as f64) * scale).max(5.0) as usize;
    collection_cfg.rows_range = (
        ((collection_cfg.rows_range.0 as f64) * scale).max(400.0) as usize,
        ((collection_cfg.rows_range.1 as f64) * scale).max(800.0) as usize,
    );
    collection_cfg.key_universe =
        ((collection_cfg.key_universe as f64) * scale).max(300.0) as usize;
    let collection = OpenDataCollection::generate(&collection_cfg);
    cfg.eval.run(&collection)
}

/// Renders the per-(threshold, estimator) agreement summary — the tabular
/// equivalent of the figure's sub-plots.
#[must_use]
pub fn report(results: &[PairResult], thresholds: &[usize]) -> TableReport {
    let mut table = TableReport::new(
        "Figure 5: TUPSK estimate vs full-join estimate by sketch-join size (WBF-like)",
        &[
            "Join Size >",
            "Estimator",
            "Pairs",
            "Bias",
            "MSE",
            "Pearson r",
        ],
    );
    for &threshold in thresholds {
        let mut per_estimator: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for r in results {
            if let Some(&(mi, join)) = r.sketches.get("TUPSK") {
                if join > threshold {
                    per_estimator
                        .entry(r.estimator.clone())
                        .or_default()
                        .push((r.full_mi, mi));
                }
            }
        }
        for (estimator, pairs) in per_estimator {
            let full: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let sketch: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let s = Summary::from_pairs(&full, &sketch);
            table.push_row(vec![
                threshold.to_string(),
                estimator,
                s.n.to_string(),
                f2(s.bias),
                f2(s.mse),
                fcorr(s.pearson),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_join_size() {
        let cfg = Config::quick();
        let results = run(&cfg);
        assert!(!results.is_empty());
        let table = report(&results, &cfg.thresholds);
        assert!(!table.is_empty());
    }
}
