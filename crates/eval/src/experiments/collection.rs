//! Shared evaluation loop over simulated open-data collections (used by the
//! Table II and Figure 5 experiments).
//!
//! For every sampled ordered pair of two-column tables `(T_train, T_cand)`:
//! materialize the augmentation join exactly (the "full join" reference the
//! paper compares against, since the true distribution of real data is
//! unknown), estimate MI on it, and estimate MI from the sketch join of each
//! requested sketching strategy.

use std::collections::BTreeMap;

use joinmi_sketch::{JoinedSketch, SketchConfig, SketchKind};
use joinmi_synth::OpenDataCollection;
use joinmi_table::{augment, Aggregation, AugmentSpec, DataType, Table};

/// The evaluation of one table pair.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Index of the base table in the collection.
    pub train_index: usize,
    /// Index of the candidate table in the collection.
    pub cand_index: usize,
    /// Name of the estimator selected for this pair (by data types).
    pub estimator: String,
    /// Full-join MI estimate (the reference).
    pub full_mi: f64,
    /// Size of the materialized full join (rows with a match).
    pub full_join_size: usize,
    /// Per-sketch (MI estimate, sketch-join size).
    pub sketches: BTreeMap<String, (f64, usize)>,
}

/// Configuration of the collection evaluation loop.
#[derive(Debug, Clone)]
pub struct CollectionEval {
    /// Sketching strategies to evaluate.
    pub kinds: Vec<SketchKind>,
    /// Sketch size (1024 in the paper's real-data experiments).
    pub sketch_size: usize,
    /// Minimum sketch-join size for an estimate to be recorded (100 in the
    /// paper).
    pub min_join_size: usize,
    /// Maximum number of table pairs evaluated (the paper samples pairs).
    pub max_pairs: usize,
    /// Seed for the sketches.
    pub seed: u64,
}

impl Default for CollectionEval {
    fn default() -> Self {
        Self {
            kinds: SketchKind::TABLE2.to_vec(),
            sketch_size: 1024,
            min_join_size: 100,
            max_pairs: 150,
            seed: 3,
        }
    }
}

impl CollectionEval {
    /// Runs the evaluation over a collection.
    ///
    /// Table pairs are evaluated in parallel (each pair's full-join reference
    /// and sketch estimates are one work item); the result list keeps the
    /// deterministic pair order, identical to a sequential run.
    #[must_use]
    pub fn run(&self, collection: &OpenDataCollection) -> Vec<PairResult> {
        let config = SketchConfig::new(self.sketch_size, self.seed);

        let pairs = collection.table_pairs();
        let limited = &pairs[..pairs.len().min(self.max_pairs)];
        let evaluated: Vec<Option<PairResult>> = joinmi_par::par_map(limited, |&(i, j)| {
            let train = &collection.tables[i];
            let cand = &collection.tables[j];
            let reference = full_join_reference(train, cand)?;

            let mut sketches = BTreeMap::new();
            for &kind in &self.kinds {
                let Ok(left) = kind.build_left(train, "key", "value", &config) else {
                    continue;
                };
                let agg = aggregation_for(cand);
                let Ok(right) = kind.build_right(cand, "key", "value", agg, &config) else {
                    continue;
                };
                let joined = left.join(&right);
                if joined.len() < self.min_join_size {
                    continue;
                }
                if let Ok(est) = joined.estimate_mi() {
                    sketches.insert(kind.name().to_owned(), (est.mi, joined.len()));
                }
            }
            if sketches.is_empty() {
                return None;
            }
            Some(PairResult {
                train_index: i,
                cand_index: j,
                estimator: reference.2,
                full_mi: reference.0,
                full_join_size: reference.1,
                sketches,
            })
        });
        evaluated.into_iter().flatten().collect()
    }
}

/// The featurization function used for a candidate table's value column.
fn aggregation_for(cand: &Table) -> Aggregation {
    match cand.column("value").map(|c| c.dtype()) {
        Ok(DataType::Str) => Aggregation::Mode,
        _ => Aggregation::Avg,
    }
}

/// Materializes the augmentation join and estimates MI on it. Returns
/// `(estimate, matched rows, estimator name)`, or `None` when the join has
/// too little overlap or the estimate fails.
fn full_join_reference(train: &Table, cand: &Table) -> Option<(f64, usize, String)> {
    let agg = aggregation_for(cand);
    let spec = AugmentSpec::new("key", "value", "key", "value", agg);
    let result = augment(train, cand, &spec).ok()?;
    if result.matched_rows < 100 {
        return None;
    }
    let feature_col = spec.feature_column_name();
    let table = &result.table;
    let xs: Vec<_> = (0..table.num_rows())
        .map(|r| table.value(r, &feature_col).ok())
        .collect::<Option<_>>()?;
    let ys: Vec<_> = (0..table.num_rows())
        .map(|r| table.value(r, "value").ok())
        .collect::<Option<_>>()?;
    let x_dtype = table.column(&feature_col).ok()?.dtype();
    let y_dtype = table.column("value").ok()?.dtype();
    let joined = JoinedSketch::from_pairs(xs, ys, x_dtype, y_dtype);
    let est = joined.estimate_mi().ok()?;
    Some((est.mi, result.matched_rows, est.estimator.name().to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_synth::OpenDataConfig;

    fn tiny_collection() -> OpenDataCollection {
        let cfg = OpenDataConfig {
            num_tables: 6,
            rows_range: (600, 900),
            key_universe: 300,
            ..OpenDataConfig::wbf_like(5)
        };
        OpenDataCollection::generate(&cfg)
    }

    #[test]
    fn evaluates_pairs_and_records_all_sketches() {
        let eval = CollectionEval {
            sketch_size: 256,
            min_join_size: 50,
            max_pairs: 10,
            ..CollectionEval::default()
        };
        let results = eval.run(&tiny_collection());
        assert!(
            !results.is_empty(),
            "no evaluable pairs in the tiny collection"
        );
        for r in &results {
            assert!(r.full_mi >= 0.0);
            assert!(r.full_join_size >= 100);
            assert!(!r.sketches.is_empty());
            for (name, (mi, join)) in &r.sketches {
                assert!(mi.is_finite(), "{name} produced a non-finite estimate");
                assert!(*join >= 50);
            }
        }
    }

    #[test]
    fn respects_max_pairs() {
        let eval = CollectionEval {
            sketch_size: 128,
            min_join_size: 10,
            max_pairs: 3,
            ..CollectionEval::default()
        };
        let results = eval.run(&tiny_collection());
        assert!(results.len() <= 3);
    }
}
