//! One module per paper artifact (figure / table / section).
//!
//! Every experiment exposes a `Config` with a [`Default`] sized like the
//! paper's setup, a cheaper `Config::quick()` used by tests and smoke runs,
//! a `run` function returning structured results, and a `report` function
//! that renders the paper-style rows.

pub mod ablation;
pub mod calibration;
pub mod collection;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fulljoin;
pub mod perf;
pub mod table1;
pub mod table2;
