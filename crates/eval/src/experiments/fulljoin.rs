//! §V-B1 — True vs. estimated MI on full-table joins.
//!
//! Establishes the estimator baseline: with the full join materialized
//! (N = 10k rows in the paper), every estimator should track the analytical
//! MI closely (the paper reports RMSE < 0.07 and Pearson r > 0.99).

use std::collections::BTreeMap;

use joinmi_synth::{CdUnifConfig, TrinomialConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Summary;
use crate::pipeline::{full_join_estimate, EstimatorMode};
use crate::report::{f2, fcorr, TableReport};

/// Configuration of the full-join baseline experiment.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated data sets per family.
    pub trials: usize,
    /// Rows per generated data set.
    pub rows: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            trials: 40,
            rows: 10_000,
            seed: 42,
        }
    }
}

impl Config {
    /// A fast configuration for tests / smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            trials: 6,
            rows: 2_000,
            seed: 42,
        }
    }
}

/// Per-(dataset, estimator) paired series of (analytical MI, estimate).
pub type Series = BTreeMap<(String, &'static str), Vec<(f64, f64)>>;

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &Config) -> Series {
    let mut series: Series = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let trinomial_ms = [16u32, 64, 256, 512];

    for t in 0..cfg.trials {
        // Trinomial family.
        let m = trinomial_ms[t % trinomial_ms.len()];
        let gen = TrinomialConfig::with_random_target(m, 3.5, cfg.seed.wrapping_add(t as u64));
        let data = gen.generate(cfg.rows, cfg.seed.wrapping_add(1000 + t as u64));
        for mode in EstimatorMode::TRINOMIAL {
            if let Some(est) = full_join_estimate(&data.xs, &data.ys, mode, t as u64) {
                series
                    .entry(("Trinomial".to_owned(), mode.name()))
                    .or_default()
                    .push((data.true_mi, est));
            }
        }

        // CDUnif family.
        let m = rng.gen_range(2u32..=1000);
        let gen = CdUnifConfig::new(m);
        let data = gen.generate(cfg.rows, cfg.seed.wrapping_add(2000 + t as u64));
        for mode in EstimatorMode::CDUNIF {
            if let Some(est) = full_join_estimate(&data.xs, &data.ys, mode, t as u64) {
                series
                    .entry(("CDUnif".to_owned(), mode.name()))
                    .or_default()
                    .push((data.true_mi, est));
            }
        }
    }
    series
}

/// Renders the paper-style summary.
#[must_use]
pub fn report(series: &Series) -> TableReport {
    let mut table = TableReport::new(
        "Section V-B1: true vs estimated MI on the full join",
        &[
            "Dataset",
            "Estimator",
            "Trials",
            "RMSE",
            "Bias",
            "Pearson r",
        ],
    );
    for ((dataset, estimator), pairs) in series {
        let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let est: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let s = Summary::from_pairs(&truth, &est);
        table.push_row(vec![
            dataset.clone(),
            (*estimator).to_owned(),
            s.n.to_string(),
            f2(s.rmse),
            f2(s.bias),
            fcorr(s.pearson),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_join_estimates_track_truth() {
        let series = run(&Config::quick());
        assert!(!series.is_empty());
        // Every series should correlate strongly with the analytical MI even
        // at the reduced quick-run sample size.
        for ((dataset, estimator), pairs) in &series {
            assert!(pairs.len() >= 4, "{dataset}/{estimator}: too few trials");
            let truth: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let est: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let s = Summary::from_pairs(&truth, &est);
            assert!(
                s.pearson.unwrap_or(0.0) > 0.9,
                "{dataset}/{estimator}: r = {:?}",
                s.pearson
            );
        }
        let table = report(&series);
        assert!(!table.is_empty());
    }
}
