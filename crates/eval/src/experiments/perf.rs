//! §V-D — performance: full-join materialization + estimation time vs.
//! sketch-join + estimation time as the table size grows.
//!
//! The paper reports, for n = 256 and N growing from 5k to 20k: the full
//! join time growing from 0.35 ms to 2.1 ms while the sketch join stays
//! 0.03–0.18 ms, and MI estimation on the full join growing from 2.2 ms to
//! 10.7 ms while estimation on the sketch stays ≈ 0.1 ms. Absolute numbers
//! depend on hardware; the shape (sketch costs flat, full-join costs growing
//! linearly or worse) is what this experiment reproduces.

use std::time::Instant;

use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::{decompose, KeyDistribution, TrinomialConfig};
use joinmi_table::{augment, AugmentSpec};

use crate::pipeline::EstimatorMode;
use crate::report::{f3, TableReport};

/// Configuration of the performance experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Table sizes to sweep.
    pub table_sizes: Vec<usize>,
    /// Sketch size.
    pub sketch_size: usize,
    /// Repetitions per measurement (median is reported).
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            table_sizes: vec![5_000, 10_000, 20_000],
            sketch_size: 256,
            repetitions: 5,
            seed: 31,
        }
    }
}

impl Config {
    /// Fast configuration for tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            table_sizes: vec![1_000, 2_000],
            sketch_size: 128,
            repetitions: 2,
            seed: 31,
        }
    }
}

/// Timings (in milliseconds) for one table size.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Number of rows of the base table.
    pub rows: usize,
    /// Full join materialization time.
    pub full_join_ms: f64,
    /// MI estimation time on the full join.
    pub full_estimate_ms: f64,
    /// Sketch construction time (both sides).
    pub sketch_build_ms: f64,
    /// Sketch join time.
    pub sketch_join_ms: f64,
    /// MI estimation time on the sketch join.
    pub sketch_estimate_ms: f64,
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    values[values.len() / 2]
}

/// Runs the experiment.
#[must_use]
pub fn run(cfg: &Config) -> Vec<Timing> {
    let mut timings = Vec::new();
    for &rows in &cfg.table_sizes {
        let gen = TrinomialConfig::new(256, 0.4, 0.35);
        let data = gen.generate(rows, cfg.seed);
        let pair = decompose(&data.xs, &data.ys, KeyDistribution::KeyInd);
        let spec = AugmentSpec::new(
            pair.key_column.clone(),
            pair.target_column.clone(),
            pair.key_column.clone(),
            pair.feature_column.clone(),
            pair.aggregation,
        );
        let sketch_cfg = SketchConfig::new(cfg.sketch_size, cfg.seed);

        let mut full_join = Vec::new();
        let mut full_est = Vec::new();
        let mut sketch_build = Vec::new();
        let mut sketch_join = Vec::new();
        let mut sketch_est = Vec::new();

        for _ in 0..cfg.repetitions {
            let t0 = Instant::now();
            let joined = augment(&pair.train, &pair.cand, &spec).expect("augmentation join");
            full_join.push(ms_since(t0));

            let feature_col = spec.feature_column_name();
            let xs: Vec<_> = (0..joined.table.num_rows())
                .map(|i| joined.table.value(i, &feature_col).expect("column exists"))
                .collect();
            let ys: Vec<_> = (0..joined.table.num_rows())
                .map(|i| {
                    joined
                        .table
                        .value(i, &pair.target_column)
                        .expect("column exists")
                })
                .collect();
            let t0 = Instant::now();
            let _ = EstimatorMode::Mle.estimate(&xs, &ys, cfg.seed);
            full_est.push(ms_since(t0));

            let t0 = Instant::now();
            let left = SketchKind::Tupsk
                .build_left(
                    &pair.train,
                    &pair.key_column,
                    &pair.target_column,
                    &sketch_cfg,
                )
                .expect("left sketch");
            let right = SketchKind::Tupsk
                .build_right(
                    &pair.cand,
                    &pair.key_column,
                    &pair.feature_column,
                    pair.aggregation,
                    &sketch_cfg,
                )
                .expect("right sketch");
            sketch_build.push(ms_since(t0));

            let t0 = Instant::now();
            let joined_sketch = left.join(&right);
            sketch_join.push(ms_since(t0));

            let t0 = Instant::now();
            let _ = EstimatorMode::Mle.estimate(joined_sketch.xs(), joined_sketch.ys(), cfg.seed);
            sketch_est.push(ms_since(t0));
        }

        timings.push(Timing {
            rows,
            full_join_ms: median(full_join),
            full_estimate_ms: median(full_est),
            sketch_build_ms: median(sketch_build),
            sketch_join_ms: median(sketch_join),
            sketch_estimate_ms: median(sketch_est),
        });
    }
    timings
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Renders the timing table.
#[must_use]
pub fn report(timings: &[Timing]) -> TableReport {
    let mut table = TableReport::new(
        "Section V-D: full join vs sketch timings (milliseconds, median)",
        &[
            "Rows",
            "Full join (ms)",
            "Full MI est (ms)",
            "Sketch build (ms)",
            "Sketch join (ms)",
            "Sketch MI est (ms)",
        ],
    );
    for t in timings {
        table.push_row(vec![
            t.rows.to_string(),
            f3(t.full_join_ms),
            f3(t.full_estimate_ms),
            f3(t.sketch_build_ms),
            f3(t.sketch_join_ms),
            f3(t.sketch_estimate_ms),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_query_costs_are_flat_while_full_costs_grow() {
        let timings = run(&Config::quick());
        assert_eq!(timings.len(), 2);
        // The sketch join operates on fixed-size inputs, so its cost must not
        // scale with the table, whereas the full join must take longer on the
        // larger table (allow generous slack — these are micro-timings).
        let small = timings[0];
        let large = timings[1];
        assert!(large.full_join_ms > 0.0 && small.full_join_ms > 0.0);
        assert!(large.sketch_join_ms < large.full_join_ms + large.full_estimate_ms);
        assert!(!report(&timings).is_empty());
    }
}
