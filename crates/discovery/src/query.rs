//! Relationship-discovery queries: rank candidate augmentations by estimated
//! MI with the query table's target column, without materializing any join.

use std::collections::HashMap;

use joinmi_estimators::{EstimatorKind, EstimatorWorkspace, DEFAULT_K};
use joinmi_sketch::{Aggregation, ColumnSketch, SketchConfig, SketchKind};
use joinmi_table::Table;

use crate::repository::CandidateSource;
use crate::Result;

/// One ranked candidate augmentation.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Index of the candidate inside the repository's candidate list.
    pub candidate_index: usize,
    /// Index of the owning table inside the repository.
    pub table_index: usize,
    /// Owning table name.
    pub table_name: String,
    /// Join-key column of the candidate table.
    pub key_column: String,
    /// Feature column of the candidate table.
    pub feature_column: String,
    /// Featurization function used for the candidate.
    pub aggregation: Aggregation,
    /// Estimated mutual information (nats).
    pub mi: f64,
    /// Estimator that produced the estimate.
    pub estimator: EstimatorKind,
    /// Number of paired samples recovered by the sketch join.
    pub sketch_join_size: usize,
    /// Number of overlapping sampled keys found by the joinability index.
    pub key_overlap: usize,
}

impl RankedCandidate {
    /// A short human-readable description of the candidate.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}.{}({}) on {}",
            self.table_name,
            self.aggregation.name(),
            self.feature_column,
            self.key_column
        )
    }
}

/// A relationship-discovery query over a repository.
#[derive(Debug, Clone)]
pub struct RelationshipQuery {
    /// The user's base table.
    pub train: Table,
    /// Join-key column of the base table.
    pub key_column: String,
    /// Target column of the base table.
    pub target_column: String,
    /// Maximum number of results to return (`0` = unlimited).
    pub top_k: usize,
    /// Minimum sketch-join size for an estimate to be considered meaningful
    /// (the paper discards estimates with join size ≤ 100 on real data).
    pub min_join_size: usize,
    /// Minimum key overlap (in sampled keys) required by the joinability
    /// pre-filter.
    pub min_key_overlap: usize,
    /// Sketching strategy for the query table (should match the repository's).
    pub sketch_kind: SketchKind,
    /// Sketch configuration for the query table (should match the repository's).
    pub sketch: SketchConfig,
}

impl RelationshipQuery {
    /// Creates a query with default parameters (top 10, minimum join size 20,
    /// TUPSK sketches of size 1024).
    #[must_use]
    pub fn new(train: Table, key_column: &str, target_column: &str) -> Self {
        Self {
            train,
            key_column: key_column.to_owned(),
            target_column: target_column.to_owned(),
            top_k: 10,
            min_join_size: 20,
            min_key_overlap: 1,
            sketch_kind: SketchKind::Tupsk,
            sketch: SketchConfig::new(1024, 0),
        }
    }

    /// Sets the number of results to return.
    #[must_use]
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Sets the minimum sketch-join size.
    #[must_use]
    pub fn with_min_join_size(mut self, n: usize) -> Self {
        self.min_join_size = n;
        self
    }

    /// Sets the sketch strategy and configuration.
    #[must_use]
    pub fn with_sketch(mut self, kind: SketchKind, cfg: SketchConfig) -> Self {
        self.sketch_kind = kind;
        self.sketch = cfg;
        self
    }

    /// Builds the query-side sketch.
    pub fn build_query_sketch(&self) -> Result<ColumnSketch> {
        self.sketch_kind.build_left(
            &self.train,
            &self.key_column,
            &self.target_column,
            &self.sketch,
        )
    }

    /// Executes the query: prune by key overlap, join sketches, estimate MI,
    /// rank. Candidates whose estimate fails (e.g. degenerate samples) are
    /// skipped rather than failing the whole query.
    ///
    /// The repository can be any [`CandidateSource`]: the in-memory
    /// [`TableRepository`](crate::TableRepository) or a read-only
    /// [`RepositorySnapshot`](crate::persist::RepositorySnapshot) loaded from
    /// disk — the ranking is bit-for-bit identical either way. The key-overlap
    /// pre-filter runs on the source's persisted/maintained joinability index,
    /// so only surviving candidates' sketches are touched (for a lazy
    /// snapshot, only those are ever decoded).
    ///
    /// Surviving candidates are scored (sketch join + estimator) in parallel
    /// across `JOINMI_THREADS` workers. The pre-filter hit order is fixed
    /// before the fan-out and the final sort is stable over it, so the
    /// ranking — including the order of equal-MI ties — is identical to a
    /// sequential run.
    pub fn execute<S: CandidateSource + Sync>(
        &self,
        repository: &S,
    ) -> Result<Vec<RankedCandidate>> {
        let query_sketch = self.build_query_sketch()?;

        let hits = repository
            .joinability()
            .query(&query_sketch, self.min_key_overlap.max(1));

        // One estimator workspace per worker: candidates scored on the same
        // worker share the sort-once buffers of the KSG-family estimators.
        let scored: Vec<Option<RankedCandidate>> = joinmi_par::par_map_with(
            &hits,
            EstimatorWorkspace::new,
            |ws, &(candidate_index, key_overlap)| {
                self.score_hit(repository, &query_sketch, ws, candidate_index, key_overlap)
            },
        );
        let mut results: Vec<RankedCandidate> = scored.into_iter().flatten().collect();

        results.sort_by(|a, b| b.mi.partial_cmp(&a.mi).expect("MI estimates are finite"));
        if self.top_k > 0 {
            results.truncate(self.top_k);
        }
        Ok(results)
    }

    /// Executes the query sequentially, scoring every surviving candidate
    /// with the caller-provided [`EstimatorWorkspace`].
    ///
    /// The ranking is bit-for-bit identical to [`Self::execute`] (the
    /// parallel fan-out there is pinned to agree with a sequential run), but
    /// this entry point lets a long-lived caller — a serving daemon's worker
    /// thread — own **one** workspace across every query it handles instead
    /// of rebuilding scratch buffers per call.
    pub fn execute_in<S: CandidateSource>(
        &self,
        repository: &S,
        ws: &mut EstimatorWorkspace,
    ) -> Result<Vec<RankedCandidate>> {
        let query_sketch = self.build_query_sketch()?;

        let hits = repository
            .joinability()
            .query(&query_sketch, self.min_key_overlap.max(1));

        let mut results: Vec<RankedCandidate> = hits
            .iter()
            .filter_map(|&(candidate_index, key_overlap)| {
                self.score_hit(repository, &query_sketch, ws, candidate_index, key_overlap)
            })
            .collect();

        results.sort_by(|a, b| b.mi.partial_cmp(&a.mi).expect("MI estimates are finite"));
        if self.top_k > 0 {
            results.truncate(self.top_k);
        }
        Ok(results)
    }

    /// Scores one pre-filter hit: sketch join, minimum-join-size gate, MI
    /// estimate. Shared by the parallel and sequential execution paths so
    /// they cannot drift.
    fn score_hit<S: CandidateSource>(
        &self,
        repository: &S,
        query_sketch: &ColumnSketch,
        ws: &mut EstimatorWorkspace,
        candidate_index: usize,
        key_overlap: usize,
    ) -> Option<RankedCandidate> {
        let candidate = repository.candidate(candidate_index);
        let joined = query_sketch.join(&candidate.sketch);
        if joined.len() < self.min_join_size {
            return None;
        }
        let estimate = joined.estimate_mi_in(ws, DEFAULT_K).ok()?;
        Some(RankedCandidate {
            candidate_index,
            table_index: candidate.table_index,
            table_name: candidate.table_name.clone(),
            key_column: candidate.key_column.clone(),
            feature_column: candidate.feature_column.clone(),
            aggregation: candidate.aggregation,
            mi: estimate.mi,
            estimator: estimate.estimator,
            sketch_join_size: joined.len(),
            key_overlap,
        })
    }

    /// Executes the query and groups the ranking by estimator, reflecting the
    /// paper's observation (Section V-C3) that MI magnitudes produced by
    /// different estimators are not directly comparable and should be ranked
    /// separately.
    pub fn execute_grouped<S: CandidateSource + Sync>(
        &self,
        repository: &S,
    ) -> Result<HashMap<EstimatorKind, Vec<RankedCandidate>>> {
        let all = self.with_unlimited_k().execute(repository)?;
        let mut grouped: HashMap<EstimatorKind, Vec<RankedCandidate>> = HashMap::new();
        for candidate in all {
            grouped
                .entry(candidate.estimator)
                .or_default()
                .push(candidate);
        }
        for ranking in grouped.values_mut() {
            ranking.sort_by(|a, b| b.mi.partial_cmp(&a.mi).expect("finite"));
            if self.top_k > 0 {
                ranking.truncate(self.top_k);
            }
        }
        Ok(grouped)
    }

    fn with_unlimited_k(&self) -> Self {
        let mut q = self.clone();
        q.top_k = 0;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{RepositoryConfig, TableRepository};
    use joinmi_synth::TaxiScenario;

    fn repo_and_query() -> (TableRepository, RelationshipQuery) {
        let scenario = TaxiScenario::generate(40, 15, 3);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(512, 3),
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(scenario.demographics.clone()).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        let query = RelationshipQuery::new(scenario.taxi, "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 3))
            .with_min_join_size(10);
        (repo, query)
    }

    #[test]
    fn ranking_is_sorted_and_respects_top_k() {
        let (repo, query) = repo_and_query();
        let results = query.clone().with_top_k(3).execute(&repo).unwrap();
        assert!(!results.is_empty());
        assert!(results.len() <= 3);
        assert!(results.windows(2).all(|w| w[0].mi >= w[1].mi));
        for r in &results {
            assert!(r.sketch_join_size >= 10);
            assert!(r.mi >= 0.0);
            assert!(!r.label().is_empty());
        }
    }

    #[test]
    fn zipcode_query_only_matches_zipcode_keyed_candidates() {
        let (repo, query) = repo_and_query();
        let results = query.with_top_k(0).execute(&repo).unwrap();
        // Weather is keyed on date / hour, which do not overlap zip codes.
        assert!(results.iter().all(|r| r.key_column == "zipcode"));
        // Both demographics and inspections should appear.
        assert!(results.iter().any(|r| r.table_name == "demographics"));
        assert!(results.iter().any(|r| r.table_name == "inspections"));
    }

    #[test]
    fn demographics_population_is_a_strong_candidate() {
        // Population drives the planted per-ZIP demand signal, so its
        // sketch-estimated MI must be clearly non-zero. (Comparisons against
        // candidates scored by *different* estimators are deliberately not
        // asserted — the paper's Section V-C3 explains why such magnitudes
        // are not comparable.)
        let (repo, query) = repo_and_query();
        let results = query.with_top_k(0).execute(&repo).unwrap();
        let pop = results
            .iter()
            .find(|r| r.table_name == "demographics" && r.feature_column == "population")
            .expect("population candidate missing from ranking");
        assert!(pop.mi > 0.2, "population MI suspiciously low: {}", pop.mi);
    }

    #[test]
    fn grouped_ranking_separates_estimators() {
        let (repo, query) = repo_and_query();
        let grouped = query.execute_grouped(&repo).unwrap();
        assert!(!grouped.is_empty());
        for (kind, ranking) in &grouped {
            assert!(ranking.iter().all(|r| r.estimator == *kind));
            assert!(ranking.windows(2).all(|w| w[0].mi >= w[1].mi));
        }
    }

    #[test]
    fn sequential_execute_in_matches_parallel_execute() {
        let (repo, query) = repo_and_query();
        let parallel = query.execute(&repo).unwrap();
        assert!(!parallel.is_empty());

        // One workspace reused across repeated calls, daemon-style.
        let mut ws = joinmi_estimators::EstimatorWorkspace::new();
        for _ in 0..2 {
            let sequential = query.execute_in(&repo, &mut ws).unwrap();
            let key = |r: &RankedCandidate| (r.candidate_index, r.mi.to_bits(), r.key_overlap);
            assert_eq!(
                parallel.iter().map(key).collect::<Vec<_>>(),
                sequential.iter().map(key).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn missing_query_columns_error() {
        let (repo, query) = repo_and_query();
        let mut bad = query;
        bad.key_column = "nope".to_owned();
        assert!(bad.execute(&repo).is_err());
    }
}
