//! Relationship-discovery queries: rank candidate augmentations by estimated
//! MI with the query table's target column, without materializing any join.
//!
//! Scoring runs through **one** internal engine ([`RelationshipQuery`]'s
//! `run_engine`) parameterized on three axes:
//!
//! * **strategy** — parallel fan-out across `JOINMI_THREADS` workers or
//!   sequential scoring with a caller-owned workspace (the serving daemon's
//!   per-worker hot path);
//! * **cache** — an optional cross-query [`CacheScope`] consulted before the
//!   join and estimate stages;
//! * **policy** — [`ScoringPolicy::Point`] (today's behaviour, bit-for-bit)
//!   or [`ScoringPolicy::Interval`], which decorates every estimate with a
//!   Hutter–Zaffalon posterior credible interval and **early-terminates**
//!   candidates whose cheap upper bound cannot reach the running top-k lower
//!   bound.
//!
//! The four public `execute*` entry points are thin delegating wrappers over
//! this engine, so the parallel/sequential × cached/uncached combinations
//! cannot drift apart.

use std::collections::HashMap;
use std::sync::Arc;

use joinmi_estimators::special::EULER_MASCHERONI;
use joinmi_estimators::{EstimatorKind, EstimatorWorkspace, MiInterval, DEFAULT_K};
use joinmi_hash::{digest_map_with_capacity, DigestHashMap};
use joinmi_sketch::{Aggregation, ColumnSketch, JoinedSketch, SketchConfig, SketchKind};
use joinmi_table::{Table, TableError};

use crate::cache::{CacheScope, CachedEstimate, CachedInterval};
use crate::repository::CandidateSource;
use crate::Result;

/// How candidate estimates are scored and ranked.
///
/// Both policies rank by the point estimate `mi` with the same stable sort,
/// so the interval policy returns the **same candidates in the same order**
/// as the point policy — the interval is decoration plus a license to skip
/// candidates that provably cannot reach the top-k. The policy is part of the
/// level-2 cache key (via [`Self::cache_code`]), so point and interval
/// results never alias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringPolicy {
    /// Rank by the point MI estimate alone (the default).
    Point,
    /// Attach a posterior credible interval to every estimate and
    /// early-terminate candidates whose upper bound falls below the running
    /// top-k lower bound.
    Interval {
        /// Two-sided confidence level in `(0, 1)`, e.g. `0.95`.
        level: f64,
    },
}

impl ScoringPolicy {
    /// The level-2 cache-key component for this policy: `0` for point
    /// scoring, the confidence level's bit pattern (never `0` for a valid
    /// level) for interval scoring.
    #[must_use]
    pub fn cache_code(self) -> u64 {
        match self {
            Self::Point => 0,
            Self::Interval { level } => level.to_bits(),
        }
    }

    /// The confidence level, when interval scoring is requested.
    #[must_use]
    pub fn level(self) -> Option<f64> {
        match self {
            Self::Point => None,
            Self::Interval { level } => Some(level),
        }
    }
}

/// Execution counters of one query run, reported by the `*_stats` entry
/// points (and surfaced per shard by the serving daemon).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates skipped by interval early termination: their cheap MI
    /// upper bound fell below the running top-k lower bound before the join
    /// stage ran.
    pub early_stopped: usize,
    /// Candidates skipped by the distinct-sketch join-size bound: no
    /// plausible join could reach `min_join_size`, so the join stage was
    /// never entered.
    pub pruned: usize,
    /// Candidates that produced a ranked result (before top-k truncation).
    pub scored: usize,
}

impl QueryStats {
    /// Accumulates another run's counters into this one (used by the serving
    /// daemon to aggregate across shards).
    pub fn merge(&mut self, other: QueryStats) {
        self.early_stopped += other.early_stopped;
        self.pruned += other.pruned;
        self.scored += other.scored;
    }
}

/// One ranked candidate augmentation.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Index of the candidate inside the repository's candidate list.
    pub candidate_index: usize,
    /// Index of the owning table inside the repository.
    pub table_index: usize,
    /// Owning table name.
    pub table_name: String,
    /// Join-key column of the candidate table.
    pub key_column: String,
    /// Feature column of the candidate table.
    pub feature_column: String,
    /// Featurization function used for the candidate.
    pub aggregation: Aggregation,
    /// Estimated mutual information (nats).
    pub mi: f64,
    /// Estimator that produced the estimate.
    pub estimator: EstimatorKind,
    /// Number of paired samples recovered by the sketch join.
    pub sketch_join_size: usize,
    /// Number of overlapping sampled keys found by the joinability index.
    pub key_overlap: usize,
    /// Posterior credible interval around `mi`, present iff the query ran
    /// under [`ScoringPolicy::Interval`]. Satisfies `ci_lo ≤ mi ≤ ci_hi`.
    pub interval: Option<MiInterval>,
}

impl RankedCandidate {
    /// A short human-readable description of the candidate.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}.{}({}) on {}",
            self.table_name,
            self.aggregation.name(),
            self.feature_column,
            self.key_column
        )
    }
}

/// A relationship-discovery query over a repository.
#[derive(Debug, Clone)]
pub struct RelationshipQuery {
    /// The user's base table.
    pub train: Table,
    /// Join-key column of the base table.
    pub key_column: String,
    /// Target column of the base table.
    pub target_column: String,
    /// Maximum number of results to return (`0` = unlimited).
    pub top_k: usize,
    /// Minimum sketch-join size for an estimate to be considered meaningful
    /// (the paper discards estimates with join size ≤ 100 on real data).
    pub min_join_size: usize,
    /// Minimum key overlap (in sampled keys) required by the joinability
    /// pre-filter.
    pub min_key_overlap: usize,
    /// Sketching strategy for the query table (should match the repository's).
    pub sketch_kind: SketchKind,
    /// Sketch configuration for the query table (should match the repository's).
    pub sketch: SketchConfig,
    /// Neighbour count for the KSG-family estimators (part of the estimator
    /// configuration, and therefore of the level-2 cache key).
    pub k: usize,
    /// How estimates are scored and ranked (part of the level-2 cache key).
    pub policy: ScoringPolicy,
    /// Skip candidates whose join-size upper bound — from the key-overlap
    /// count and the repository's per-column distinct sketches — cannot reach
    /// `min_join_size`, before the join stage runs. The bound is sound, so
    /// rankings are bit-for-bit identical with pruning on or off; the knob
    /// exists so tests can pin that equivalence.
    pub prune_by_distinct: bool,
}

impl RelationshipQuery {
    /// Creates a query with default parameters (top 10, minimum join size 20,
    /// TUPSK sketches of size 1024, point scoring, pruning enabled).
    #[must_use]
    pub fn new(train: Table, key_column: &str, target_column: &str) -> Self {
        Self {
            train,
            key_column: key_column.to_owned(),
            target_column: target_column.to_owned(),
            top_k: 10,
            min_join_size: 20,
            min_key_overlap: 1,
            sketch_kind: SketchKind::Tupsk,
            sketch: SketchConfig::new(1024, 0),
            k: DEFAULT_K,
            policy: ScoringPolicy::Point,
            prune_by_distinct: true,
        }
    }

    /// Sets the number of results to return.
    #[must_use]
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Sets the minimum sketch-join size.
    #[must_use]
    pub fn with_min_join_size(mut self, n: usize) -> Self {
        self.min_join_size = n;
        self
    }

    /// Sets the sketch strategy and configuration.
    #[must_use]
    pub fn with_sketch(mut self, kind: SketchKind, cfg: SketchConfig) -> Self {
        self.sketch_kind = kind;
        self.sketch = cfg;
        self
    }

    /// Sets the neighbour count `k` for the KSG-family estimators (default
    /// [`DEFAULT_K`]). Discrete estimators (MLE) ignore it, but it is always
    /// part of the estimator configuration for caching purposes.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the scoring policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ScoringPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Requests interval scoring at the given two-sided confidence level
    /// (e.g. `0.95`) — shorthand for
    /// `with_policy(ScoringPolicy::Interval { level })`. The level is
    /// validated at execution time; values outside `(0, 1)` fail the query.
    #[must_use]
    pub fn with_confidence(mut self, level: f64) -> Self {
        self.policy = ScoringPolicy::Interval { level };
        self
    }

    /// Enables or disables the distinct-sketch join-size pruning stage
    /// (enabled by default; the ranking is identical either way).
    #[must_use]
    pub fn with_distinct_pruning(mut self, enabled: bool) -> Self {
        self.prune_by_distinct = enabled;
        self
    }

    /// Builds the query-side sketch.
    pub fn build_query_sketch(&self) -> Result<ColumnSketch> {
        self.sketch_kind.build_left(
            &self.train,
            &self.key_column,
            &self.target_column,
            &self.sketch,
        )
    }

    /// Stage 1 — **probe**: builds the query-side sketch and runs the
    /// joinability pre-filter, returning the sketch together with the
    /// surviving `(candidate_index, key_overlap)` hits in their fixed
    /// pre-filter order. The later stages (join, estimate) consume this;
    /// exposing it separately lets callers inspect or cache the candidate
    /// set without scoring it.
    pub fn probe<S: CandidateSource>(
        &self,
        repository: &S,
    ) -> Result<(ColumnSketch, Vec<(usize, usize)>)> {
        let query_sketch = self.build_query_sketch()?;
        let hits = repository
            .joinability()
            .query(&query_sketch, self.min_key_overlap.max(1));
        Ok((query_sketch, hits))
    }

    /// Executes the query: prune by key overlap, join sketches, estimate MI,
    /// rank. Candidates whose estimate fails (e.g. degenerate samples) are
    /// skipped rather than failing the whole query.
    ///
    /// The repository can be any [`CandidateSource`]: the in-memory
    /// [`TableRepository`](crate::TableRepository) or a read-only
    /// [`RepositorySnapshot`](crate::persist::RepositorySnapshot) loaded from
    /// disk — the ranking is bit-for-bit identical either way. The key-overlap
    /// pre-filter runs on the source's persisted/maintained joinability index,
    /// so only surviving candidates' sketches are touched (for a lazy
    /// snapshot, only those are ever decoded).
    ///
    /// Surviving candidates are scored (sketch join + estimator) in parallel
    /// across `JOINMI_THREADS` workers. The pre-filter hit order is fixed
    /// before the fan-out and the final sort is stable over it, so the
    /// ranking — including the order of equal-MI ties — is identical to a
    /// sequential run.
    pub fn execute<S: CandidateSource + Sync>(
        &self,
        repository: &S,
    ) -> Result<Vec<RankedCandidate>> {
        self.execute_cached(repository, None)
    }

    /// [`Self::execute`] with an optional cross-query stage cache.
    ///
    /// With a [`CacheScope`], the join and estimate stages consult the cache
    /// before computing (see [`crate::cache`]); the ranking is bit-for-bit
    /// identical to an uncached run against the same (immutable) repository.
    pub fn execute_cached<S: CandidateSource + Sync>(
        &self,
        repository: &S,
        cache: Option<&CacheScope<'_>>,
    ) -> Result<Vec<RankedCandidate>> {
        Ok(self.execute_cached_stats(repository, cache)?.0)
    }

    /// [`Self::execute_cached`], additionally reporting the run's
    /// [`QueryStats`].
    pub fn execute_cached_stats<S: CandidateSource + Sync>(
        &self,
        repository: &S,
        cache: Option<&CacheScope<'_>>,
    ) -> Result<(Vec<RankedCandidate>, QueryStats)> {
        // One estimator workspace per worker: candidates scored on the same
        // worker share the sort-once buffers of the KSG-family estimators.
        self.run_engine(repository, cache, |query_sketch, left_fp, batch| {
            joinmi_par::par_map_with(
                batch,
                EstimatorWorkspace::new,
                |ws, &(candidate_index, key_overlap)| {
                    self.score_hit(
                        repository,
                        query_sketch,
                        left_fp,
                        cache,
                        ws,
                        candidate_index,
                        key_overlap,
                    )
                },
            )
        })
    }

    /// Executes the query sequentially, scoring every surviving candidate
    /// with the caller-provided [`EstimatorWorkspace`].
    ///
    /// The ranking is bit-for-bit identical to [`Self::execute`] (the
    /// parallel fan-out there is pinned to agree with a sequential run), but
    /// this entry point lets a long-lived caller — a serving daemon's worker
    /// thread — own **one** workspace across every query it handles instead
    /// of rebuilding scratch buffers per call.
    pub fn execute_in<S: CandidateSource>(
        &self,
        repository: &S,
        ws: &mut EstimatorWorkspace,
    ) -> Result<Vec<RankedCandidate>> {
        self.execute_in_cached(repository, ws, None)
    }

    /// [`Self::execute_in`] with an optional cross-query stage cache — the
    /// serving daemon's hot path (one shared cache, one workspace per
    /// worker). Bit-for-bit identical to the uncached run against the same
    /// (immutable) repository.
    pub fn execute_in_cached<S: CandidateSource>(
        &self,
        repository: &S,
        ws: &mut EstimatorWorkspace,
        cache: Option<&CacheScope<'_>>,
    ) -> Result<Vec<RankedCandidate>> {
        Ok(self.execute_in_cached_stats(repository, ws, cache)?.0)
    }

    /// [`Self::execute_in_cached`], additionally reporting the run's
    /// [`QueryStats`].
    pub fn execute_in_cached_stats<S: CandidateSource>(
        &self,
        repository: &S,
        ws: &mut EstimatorWorkspace,
        cache: Option<&CacheScope<'_>>,
    ) -> Result<(Vec<RankedCandidate>, QueryStats)> {
        self.run_engine(repository, cache, |query_sketch, left_fp, batch| {
            batch
                .iter()
                .map(|&(candidate_index, key_overlap)| {
                    self.score_hit(
                        repository,
                        query_sketch,
                        left_fp,
                        cache,
                        ws,
                        candidate_index,
                        key_overlap,
                    )
                })
                .collect()
        })
    }

    /// The one scoring engine behind every `execute*` entry point.
    ///
    /// `score_batch` abstracts the parallel-vs-sequential strategy: it maps
    /// `score_hit` over a batch of pre-filter hits and returns the results in
    /// batch order. Everything else — probing, the cheap pre-join screens,
    /// the running top-k lower bound, ranking, truncation — lives here, once.
    ///
    /// **Early termination** (interval policy with `top_k > 0`): candidates
    /// are processed in chunks; between chunks the tracker knows the k-th
    /// largest credible lower bound `L` among scored candidates, and any
    /// later candidate whose cheap upper bound (from the join-size bound,
    /// valid for every shipped estimator) is strictly below `L` is skipped.
    /// Its point estimate could be at most that upper bound `< L ≤` the k-th
    /// largest final MI, so it can never enter the top-k — even on ties —
    /// under any processing order. Hence parallel, sequential, cached, and
    /// exhaustive runs all return the identical top-k.
    ///
    /// **Distinct pruning** (`prune_by_distinct`, any policy): a candidate
    /// whose join-size upper bound is below `min_join_size` is skipped before
    /// the join; the bound is sound, so the gate would have dropped it anyway.
    fn run_engine<S, F>(
        &self,
        repository: &S,
        cache: Option<&CacheScope<'_>>,
        mut score_batch: F,
    ) -> Result<(Vec<RankedCandidate>, QueryStats)>
    where
        S: CandidateSource,
        F: FnMut(&ColumnSketch, (u64, u64), &[(usize, usize)]) -> Vec<Option<RankedCandidate>>,
    {
        if let ScoringPolicy::Interval { level } = self.policy {
            if !(level > 0.0 && level < 1.0) {
                return Err(TableError::Unsupported(format!(
                    "interval scoring requires a confidence level in (0, 1), got {level}"
                )));
            }
        }
        let (query_sketch, hits) = self.probe(repository)?;
        let left_fp = left_fingerprint(&query_sketch, cache);
        let mut stats = QueryStats::default();

        let early_term = matches!(self.policy, ScoringPolicy::Interval { .. }) && self.top_k > 0;
        let prune = self.prune_by_distinct && self.min_join_size > 0;
        // Both cheap screens consume the same join-size upper bound; the
        // query-side multiplicity profile is computed once, and only when a
        // screen is active.
        let multiplicity =
            (prune || early_term).then(|| KeyMultiplicity::from_sketch(&query_sketch));

        // Point scoring processes all hits as one batch (identical to the
        // historical fan-out); early termination needs chunk boundaries to
        // refresh the top-k lower bound between batches.
        let chunk_size = if early_term {
            EARLY_TERM_CHUNK
        } else {
            usize::MAX
        };
        let mut tracker = TopKLowerBound::new(if early_term { self.top_k } else { 0 });
        let mut results: Vec<RankedCandidate> = Vec::new();
        let mut batch: Vec<(usize, usize)> = Vec::new();

        for chunk in hits.chunks(chunk_size) {
            batch.clear();
            for &(candidate_index, key_overlap) in chunk {
                if let Some(mult) = &multiplicity {
                    let bound =
                        join_size_upper_bound(repository, mult, candidate_index, key_overlap);
                    if prune && bound < self.min_join_size {
                        stats.pruned += 1;
                        continue;
                    }
                    if let Some(threshold) = tracker.threshold() {
                        if cheap_mi_upper(bound) < threshold {
                            stats.early_stopped += 1;
                            continue;
                        }
                    }
                }
                batch.push((candidate_index, key_overlap));
            }
            if batch.is_empty() {
                continue;
            }
            for ranked in score_batch(&query_sketch, left_fp, &batch)
                .into_iter()
                .flatten()
            {
                if let Some(interval) = &ranked.interval {
                    tracker.push(interval.ci_lo);
                }
                results.push(ranked);
            }
        }
        stats.scored = results.len();
        sort_by_mi_desc(&mut results);
        if self.top_k > 0 {
            results.truncate(self.top_k);
        }
        Ok((results, stats))
    }

    /// Stages 2–3 — **join** and **estimate** for one pre-filter hit: sketch
    /// join, minimum-join-size gate, MI estimate (with interval decoration
    /// under [`ScoringPolicy::Interval`]). Shared by the parallel and
    /// sequential execution paths so they cannot drift.
    ///
    /// Cache interaction, in order:
    /// * **Level-2 hit** (same left sketch, candidate, `k`, and policy): the
    ///   stored estimate — interval included — is replayed; no join, no
    ///   estimator. The `min_join_size` gate is re-applied to the stored join
    ///   size, so a query with a stricter threshold still drops the candidate
    ///   exactly as its cold run would.
    /// * **Level-1 hit**: the cached [`JoinedSketch`] feeds the estimator
    ///   directly — estimation is deterministic and workspace-independent,
    ///   so the result is bit-identical to re-joining.
    /// * **Miss**: compute both stages and populate both levels. The join is
    ///   cached even when it fails the size gate (a later query with a lower
    ///   threshold can still reuse it); failed estimates are never cached.
    #[allow(clippy::too_many_arguments)] // internal: the staged pipeline's plumbing
    fn score_hit<S: CandidateSource>(
        &self,
        repository: &S,
        query_sketch: &ColumnSketch,
        left_fp: (u64, u64),
        cache: Option<&CacheScope<'_>>,
        ws: &mut EstimatorWorkspace,
        candidate_index: usize,
        key_overlap: usize,
    ) -> Option<RankedCandidate> {
        let policy_code = self.policy.cache_code();
        if let Some(scope) = cache {
            if let Some(hit) = scope.get_estimate(left_fp, candidate_index, self.k, policy_code) {
                if hit.join_size < self.min_join_size {
                    return None;
                }
                let interval = match (self.policy, hit.interval) {
                    (ScoringPolicy::Interval { level }, Some(iv)) => Some(MiInterval {
                        variance: iv.variance,
                        ci_lo: iv.ci_lo,
                        ci_hi: iv.ci_hi,
                        level,
                    }),
                    _ => None,
                };
                let candidate = repository.candidate(candidate_index);
                return Some(RankedCandidate {
                    candidate_index,
                    table_index: candidate.table_index,
                    table_name: candidate.table_name.clone(),
                    key_column: candidate.key_column.clone(),
                    feature_column: candidate.feature_column.clone(),
                    aggregation: candidate.aggregation,
                    mi: hit.mi,
                    estimator: hit.estimator,
                    sketch_join_size: hit.join_size,
                    key_overlap,
                    interval,
                });
            }
        }

        let candidate = repository.candidate(candidate_index);
        let joined: Arc<JoinedSketch> =
            match cache.and_then(|scope| scope.get_join(left_fp, candidate_index)) {
                Some(joined) => joined,
                None => {
                    let joined = Arc::new(query_sketch.join(&candidate.sketch));
                    if let Some(scope) = cache {
                        scope.put_join(left_fp, candidate_index, Arc::clone(&joined));
                    }
                    joined
                }
            };
        if joined.len() < self.min_join_size {
            return None;
        }
        let (estimate, interval) = match self.policy {
            ScoringPolicy::Point => (joined.estimate_mi_in(ws, self.k).ok()?, None),
            ScoringPolicy::Interval { level } => {
                let (est, iv) = joined.estimate_mi_interval_in(ws, self.k, level).ok()?;
                (est, Some(iv))
            }
        };
        if let Some(scope) = cache {
            scope.put_estimate(
                left_fp,
                candidate_index,
                self.k,
                policy_code,
                CachedEstimate {
                    mi: estimate.mi,
                    estimator: estimate.estimator,
                    n: estimate.n,
                    join_size: joined.len(),
                    interval: interval.map(|iv| CachedInterval {
                        variance: iv.variance,
                        ci_lo: iv.ci_lo,
                        ci_hi: iv.ci_hi,
                    }),
                },
            );
        }
        Some(RankedCandidate {
            candidate_index,
            table_index: candidate.table_index,
            table_name: candidate.table_name.clone(),
            key_column: candidate.key_column.clone(),
            feature_column: candidate.feature_column.clone(),
            aggregation: candidate.aggregation,
            mi: estimate.mi,
            estimator: estimate.estimator,
            sketch_join_size: joined.len(),
            key_overlap,
            interval,
        })
    }

    /// Executes the query and groups the ranking by estimator, reflecting the
    /// paper's observation (Section V-C3) that MI magnitudes produced by
    /// different estimators are not directly comparable and should be ranked
    /// separately.
    pub fn execute_grouped<S: CandidateSource + Sync>(
        &self,
        repository: &S,
    ) -> Result<HashMap<EstimatorKind, Vec<RankedCandidate>>> {
        let all = self.with_unlimited_k().execute(repository)?;
        let mut grouped: HashMap<EstimatorKind, Vec<RankedCandidate>> = HashMap::new();
        for candidate in all {
            grouped
                .entry(candidate.estimator)
                .or_default()
                .push(candidate);
        }
        for ranking in grouped.values_mut() {
            sort_by_mi_desc(ranking);
            if self.top_k > 0 {
                ranking.truncate(self.top_k);
            }
        }
        Ok(grouped)
    }

    fn with_unlimited_k(&self) -> Self {
        let mut q = self.clone();
        q.top_k = 0;
        q
    }
}

/// Chunk size of the early-terminating interval scan: small enough that the
/// top-k lower bound tightens quickly, large enough that the parallel
/// strategy still has a worthwhile fan-out per batch.
const EARLY_TERM_CHUNK: usize = 32;

/// A universal upper bound (in nats) on any shipped estimator's MI estimate
/// computed from at most `join_size_bound` pairs:
///
/// * MLE / smoothed MLE: `Î ≤ ln n` exactly (bounded by the sample entropy);
/// * KSG: `Î ≤ ψ(n) < ln n`;
/// * Mixed-KSG: every sample term is `≤ ln n − ln kᵢ ≤ ln n`;
/// * DC-KSG (Ross): `Î ≤ ψ(n) + γ < ln(n + 1) + γ`.
///
/// `ln(n + 1) + γ` covers all of them. Intentionally loose — it only needs
/// to be *sound*; it bites exactly on the long tail of candidates whose
/// plausible join is a handful of rows.
fn cheap_mi_upper(join_size_bound: usize) -> f64 {
    ((join_size_bound + 1) as f64).ln() + EULER_MASCHERONI
}

/// An upper bound on the sketch-join size of one candidate.
///
/// The joinability index reports `key_overlap` — the exact number of distinct
/// key digests shared by the query sketch and the candidate sketch — and the
/// join emits at most one pair per left row whose digest matches, so the join
/// size is at most the sum of the `key_overlap` largest per-digest row
/// multiplicities on the query side. The candidate's key-column distinct
/// sketch caps the number of matchable digests as well (binding only while
/// the KMV sketch is exact, i.e. under capacity — a belt-and-braces cap, the
/// overlap term is the one that usually bites). NULL-valued rows are excluded
/// from the multiplicities because the join drops NULL pairs.
fn join_size_upper_bound<S: CandidateSource>(
    repository: &S,
    mult: &KeyMultiplicity,
    candidate_index: usize,
    key_overlap: usize,
) -> usize {
    let m = match repository.key_distinct_bound(candidate_index) {
        Some(distinct) => key_overlap.min(distinct),
        None => key_overlap,
    };
    mult.top_m_sum(m)
}

/// Per-digest row multiplicities of the query sketch, preprocessed into
/// descending-order prefix sums so `top_m_sum(m)` — the largest number of
/// left rows any `m` distinct digests can match — is O(1) per candidate.
struct KeyMultiplicity {
    /// `prefix[m]` = sum of the `m` largest per-digest multiplicities.
    prefix: Vec<usize>,
}

impl KeyMultiplicity {
    fn from_sketch(sketch: &ColumnSketch) -> Self {
        let mut counts: DigestHashMap<usize> = digest_map_with_capacity(sketch.len());
        for row in sketch.rows() {
            if row.value.is_null() {
                continue; // NULL pairs are dropped by the join
            }
            *counts.entry(row.key.raw()).or_default() += 1;
        }
        let mut mult: Vec<usize> = counts.into_values().collect();
        mult.sort_unstable_by(|a, b| b.cmp(a));
        let mut prefix = Vec::with_capacity(mult.len() + 1);
        prefix.push(0);
        let mut acc = 0usize;
        for m in mult {
            acc += m;
            prefix.push(acc);
        }
        Self { prefix }
    }

    fn top_m_sum(&self, m: usize) -> usize {
        self.prefix[m.min(self.prefix.len() - 1)]
    }
}

/// Running tracker of the k-th largest credible lower bound among scored
/// candidates. The threshold is only defined once `k` candidates have
/// contributed — before that, nothing may be skipped.
struct TopKLowerBound {
    k: usize,
    /// The `k` largest lower bounds seen so far, sorted ascending.
    best: Vec<f64>,
}

impl TopKLowerBound {
    fn new(k: usize) -> Self {
        Self {
            k,
            best: Vec::with_capacity(k.min(1024)),
        }
    }

    fn push(&mut self, lo: f64) {
        if self.k == 0 {
            return;
        }
        if self.best.len() == self.k {
            if lo.total_cmp(&self.best[0]) != std::cmp::Ordering::Greater {
                return;
            }
            self.best.remove(0);
        }
        let pos = self
            .best
            .partition_point(|b| b.total_cmp(&lo) == std::cmp::Ordering::Less);
        self.best.insert(pos, lo);
    }

    fn threshold(&self) -> Option<f64> {
        (self.k > 0 && self.best.len() == self.k).then(|| self.best[0])
    }
}

/// Sorts a ranking by MI, highest first, with [`f64::total_cmp`]: a total
/// order with no panic path, matching the kernel-sort convention of the
/// estimator crate. The sort is stable, so equal-MI ties keep the pre-filter
/// hit order; a NaN estimate (which no shipped estimator produces) would
/// sort deterministically instead of aborting the query.
pub fn sort_by_mi_desc(results: &mut [RankedCandidate]) {
    results.sort_by(|a, b| b.mi.total_cmp(&a.mi));
}

/// The level-1/level-2 cache key component identifying the query-side
/// sketch. Only computed when a cache is actually in play — the fingerprint
/// walks every sketch row.
fn left_fingerprint(query_sketch: &ColumnSketch, cache: Option<&CacheScope<'_>>) -> (u64, u64) {
    match cache {
        Some(_) => query_sketch.content_fingerprint(),
        None => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{RepositoryConfig, TableRepository};
    use joinmi_synth::TaxiScenario;

    fn repo_and_query() -> (TableRepository, RelationshipQuery) {
        let scenario = TaxiScenario::generate(40, 15, 3);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(512, 3),
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(scenario.demographics.clone()).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        let query = RelationshipQuery::new(scenario.taxi, "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 3))
            .with_min_join_size(10);
        (repo, query)
    }

    /// A corpus where interval early termination actually fires: a few
    /// strong candidates whose keys fully overlap the query (near-functional
    /// features, so credible lower bounds are high) and a tail of weak
    /// candidates sharing only three sampled keys each (so their cheap MI
    /// upper bound is tiny).
    fn skewed_repo_and_query() -> (TableRepository, RelationshipQuery) {
        let keys: Vec<String> = (0..64).map(|i| format!("key-{i:02}")).collect();
        fn key_refs(v: &[String]) -> Vec<&str> {
            v.iter().map(String::as_str).collect()
        }

        let target: Vec<String> = (0..64).map(|i| format!("t{i}")).collect();
        let train = Table::builder("train")
            .push_str_column("key", key_refs(&keys))
            .push_str_column("target", key_refs(&target))
            .build()
            .unwrap();

        let config = RepositoryConfig {
            sketch: SketchConfig::new(256, 5),
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        // Strong candidates: same key universe, feature = function of key —
        // MLE scores them at ln 64 with a near-zero posterior variance, so
        // the top-k credible lower bound lands high.
        for t in 0..3 {
            let feature: Vec<String> = (0..64).map(|i| format!("f{t}-{i}")).collect();
            let table = Table::builder(format!("strong{t}"))
                .push_str_column("key", key_refs(&keys))
                .push_str_column("feat", key_refs(&feature))
                .build()
                .unwrap();
            repo.add_table(table).unwrap();
        }
        // Weak candidates: eight shared keys, the rest disjoint — so their
        // cheap MI upper bound is ln 9 + γ ≈ 2.8 nats, below the strong
        // candidates' lower bound. Forty of them spill past the first
        // early-termination chunk.
        for t in 0..40 {
            let mut weak_keys: Vec<String> = (0..8).map(|i| format!("key-{i:02}")).collect();
            weak_keys.extend((0..40).map(|j| format!("weak{t}-{j}")));
            let feature: Vec<String> = (0..weak_keys.len()).map(|i| format!("w{t}-{i}")).collect();
            let table = Table::builder(format!("weak{t}"))
                .push_str_column("key", key_refs(&weak_keys))
                .push_str_column("feat", key_refs(&feature))
                .build()
                .unwrap();
            repo.add_table(table).unwrap();
        }
        let query = RelationshipQuery::new(train, "key", "target")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(256, 5))
            .with_min_join_size(3);
        (repo, query)
    }

    #[test]
    fn ranking_is_sorted_and_respects_top_k() {
        let (repo, query) = repo_and_query();
        let results = query.clone().with_top_k(3).execute(&repo).unwrap();
        assert!(!results.is_empty());
        assert!(results.len() <= 3);
        assert!(results.windows(2).all(|w| w[0].mi >= w[1].mi));
        for r in &results {
            assert!(r.sketch_join_size >= 10);
            assert!(r.mi >= 0.0);
            assert!(!r.label().is_empty());
            assert!(r.interval.is_none(), "point policy must not decorate");
        }
    }

    #[test]
    fn zipcode_query_only_matches_zipcode_keyed_candidates() {
        let (repo, query) = repo_and_query();
        let results = query.with_top_k(0).execute(&repo).unwrap();
        // Weather is keyed on date / hour, which do not overlap zip codes.
        assert!(results.iter().all(|r| r.key_column == "zipcode"));
        // Both demographics and inspections should appear.
        assert!(results.iter().any(|r| r.table_name == "demographics"));
        assert!(results.iter().any(|r| r.table_name == "inspections"));
    }

    #[test]
    fn demographics_population_is_a_strong_candidate() {
        // Population drives the planted per-ZIP demand signal, so its
        // sketch-estimated MI must be clearly non-zero. (Comparisons against
        // candidates scored by *different* estimators are deliberately not
        // asserted — the paper's Section V-C3 explains why such magnitudes
        // are not comparable.)
        let (repo, query) = repo_and_query();
        let results = query.with_top_k(0).execute(&repo).unwrap();
        let pop = results
            .iter()
            .find(|r| r.table_name == "demographics" && r.feature_column == "population")
            .expect("population candidate missing from ranking");
        assert!(pop.mi > 0.2, "population MI suspiciously low: {}", pop.mi);
    }

    #[test]
    fn grouped_ranking_separates_estimators() {
        let (repo, query) = repo_and_query();
        let grouped = query.execute_grouped(&repo).unwrap();
        assert!(!grouped.is_empty());
        for (kind, ranking) in &grouped {
            assert!(ranking.iter().all(|r| r.estimator == *kind));
            assert!(ranking.windows(2).all(|w| w[0].mi >= w[1].mi));
        }
    }

    #[test]
    fn sequential_execute_in_matches_parallel_execute() {
        let (repo, query) = repo_and_query();
        let parallel = query.execute(&repo).unwrap();
        assert!(!parallel.is_empty());

        // One workspace reused across repeated calls, daemon-style.
        let mut ws = joinmi_estimators::EstimatorWorkspace::new();
        for _ in 0..2 {
            let sequential = query.execute_in(&repo, &mut ws).unwrap();
            let key = |r: &RankedCandidate| (r.candidate_index, r.mi.to_bits(), r.key_overlap);
            assert_eq!(
                parallel.iter().map(key).collect::<Vec<_>>(),
                sequential.iter().map(key).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn missing_query_columns_error() {
        let (repo, query) = repo_and_query();
        let mut bad = query;
        bad.key_column = "nope".to_owned();
        assert!(bad.execute(&repo).is_err());
    }

    fn fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
        results
            .iter()
            .map(|r| {
                (
                    r.candidate_index,
                    r.mi.to_bits(),
                    r.sketch_join_size,
                    r.key_overlap,
                )
            })
            .collect()
    }

    /// Fingerprint including the interval decoration bits.
    fn interval_fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, u64, u64, u64)> {
        results
            .iter()
            .map(|r| {
                let iv = r.interval.as_ref().expect("interval missing");
                (
                    r.candidate_index,
                    r.mi.to_bits(),
                    iv.variance.to_bits(),
                    iv.ci_lo.to_bits(),
                    iv.ci_hi.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn cached_execution_is_bit_identical_and_skips_the_estimator() {
        let (repo, query) = repo_and_query();
        let query = query.with_top_k(0);
        let cold = query.execute(&repo).unwrap();
        assert!(!cold.is_empty());

        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();

        // First cached run: all misses, cache populated.
        let first = query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&first));
        let after_first = cache.stats();
        assert_eq!(after_first.estimate_hits, 0);
        assert_eq!(after_first.estimate_misses as usize, cold.len());

        // Second run: every scored candidate is a level-2 hit — the join and
        // the estimator never run — and the ranking replays bit-for-bit.
        let second = query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&second));
        let after_second = cache.stats();
        assert_eq!(after_second.estimate_hits as usize, cold.len());
        assert_eq!(after_second.estimate_misses, after_first.estimate_misses);
        assert_eq!(after_second.join_misses, after_first.join_misses);

        // The parallel path shares the same cache plumbing.
        let parallel = query.execute_cached(&repo, Some(&scope)).unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&parallel));
    }

    #[test]
    fn join_level_hit_re_estimates_bit_identically() {
        let (repo, query) = repo_and_query();
        let query = query.with_top_k(0);
        let cold = query.execute(&repo).unwrap();

        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();

        // Drop level 2, keep level 1: the next run re-estimates from the
        // cached joins and must still agree bit-for-bit.
        cache.clear_estimates();
        let joins_before = cache.stats().join_hits;
        let warm = query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&warm));
        assert!(cache.stats().join_hits > joins_before);
    }

    #[test]
    fn stricter_min_join_size_gates_cached_estimates() {
        let (repo, query) = repo_and_query();
        let query = query.with_top_k(0);
        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();

        // A stricter gate over a warm cache must agree with its own cold run.
        let strict = query.clone().with_min_join_size(200);
        let cold = strict.execute(&repo).unwrap();
        let cached = strict
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&cached));
    }

    #[test]
    fn with_k_changes_the_estimate_and_the_cache_key() {
        let (repo, query) = repo_and_query();
        let base = query.clone().with_top_k(0);
        let k7 = query.with_top_k(0).with_k(7);
        assert_eq!(base.k, DEFAULT_K);
        assert_eq!(k7.k, 7);

        let default_ranking = base.execute(&repo).unwrap();
        let k7_ranking = k7.execute(&repo).unwrap();
        // KSG-family estimates move with k; MLE-scored candidates do not.
        let moved = default_ranking.iter().any(|a| {
            k7_ranking
                .iter()
                .any(|b| b.candidate_index == a.candidate_index && b.mi.to_bits() != a.mi.to_bits())
        });
        assert!(moved, "k had no effect on any continuous candidate");

        // Different k populates distinct level-2 entries for the same pairs.
        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        base.execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        let misses_after_base = cache.stats().estimate_misses;
        k7.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.estimate_hits, 0);
        assert!(stats.estimate_misses > misses_after_base);

        // And each replays bit-for-bit from its own entries.
        let base_cached = base
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        let k7_cached = k7.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
        assert_eq!(fingerprint(&default_ranking), fingerprint(&base_cached));
        assert_eq!(fingerprint(&k7_ranking), fingerprint(&k7_cached));
    }

    #[test]
    fn interval_scoring_decorates_without_changing_the_ranking() {
        let (repo, query) = repo_and_query();
        let point = query.clone().with_top_k(0).execute(&repo).unwrap();
        let interval = query
            .clone()
            .with_top_k(0)
            .with_confidence(0.95)
            .execute(&repo)
            .unwrap();
        // Same candidates, same order, same point estimates to the last bit.
        assert_eq!(fingerprint(&point), fingerprint(&interval));
        for r in &interval {
            let iv = r.interval.as_ref().expect("interval policy must decorate");
            assert_eq!(iv.level, 0.95);
            assert!(iv.ci_lo >= 0.0);
            assert!(iv.ci_lo <= r.mi && r.mi <= iv.ci_hi);
            assert!(iv.variance >= 0.0);
        }
    }

    #[test]
    fn invalid_confidence_level_fails_the_query() {
        let (repo, query) = repo_and_query();
        assert!(query.clone().with_confidence(0.0).execute(&repo).is_err());
        assert!(query.clone().with_confidence(1.0).execute(&repo).is_err());
        assert!(query.with_confidence(f64::NAN).execute(&repo).is_err());
    }

    #[test]
    fn early_termination_matches_exhaustive_scoring_and_fires() {
        let (repo, query) = skewed_repo_and_query();
        let query = query.with_confidence(0.9);

        // Exhaustive interval ranking (top_k = 0 disables early termination),
        // truncated by hand to the top 2.
        let mut exhaustive = query.clone().with_top_k(0).execute(&repo).unwrap();
        assert!(
            exhaustive.len() > 5,
            "corpus too small to exercise the tail"
        );
        exhaustive.truncate(2);

        // Early-terminating run, parallel and sequential, with stats.
        let early = query.clone().with_top_k(2);
        let (parallel, stats) = early.execute_cached_stats(&repo, None).unwrap();
        assert_eq!(
            interval_fingerprint(&exhaustive),
            interval_fingerprint(&parallel)
        );
        assert!(
            stats.early_stopped > 0,
            "early termination never fired: {stats:?}"
        );

        let mut ws = EstimatorWorkspace::new();
        let (sequential, seq_stats) = early.execute_in_cached_stats(&repo, &mut ws, None).unwrap();
        assert_eq!(
            interval_fingerprint(&parallel),
            interval_fingerprint(&sequential)
        );
        assert!(seq_stats.early_stopped > 0);
    }

    #[test]
    fn distinct_pruning_is_bit_identical_and_skips_joins() {
        let (repo, query) = skewed_repo_and_query();
        // min_join_size 10 > the weak candidates' 3-row join bound: pruning
        // must skip them before the join without changing the ranking.
        let query = query.with_min_join_size(10).with_top_k(0);
        let (pruned, stats) = query.execute_cached_stats(&repo, None).unwrap();
        assert!(stats.pruned > 0, "pruning never fired: {stats:?}");

        let unpruned = query
            .clone()
            .with_distinct_pruning(false)
            .execute(&repo)
            .unwrap();
        assert_eq!(fingerprint(&unpruned), fingerprint(&pruned));

        // Pruned candidates are exactly the ones the join-size gate would
        // have dropped, so the scored count matches the result count.
        assert_eq!(stats.scored, pruned.len());
    }

    #[test]
    fn point_and_interval_cache_entries_never_alias() {
        let (repo, query) = repo_and_query();
        let point = query.clone().with_top_k(0);
        let interval = query.with_top_k(0).with_confidence(0.95);

        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();

        let point_cold = point
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert!(!point_cold.is_empty());
        let after_point = cache.stats();
        assert_eq!(after_point.estimate_hits, 0);

        // The interval run must not hit the point entries...
        let interval_cold = interval
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(cache.stats().estimate_hits, 0);
        // ...but replays bit-for-bit from its own, interval included.
        let interval_warm = interval
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(
            interval_fingerprint(&interval_cold),
            interval_fingerprint(&interval_warm)
        );
        assert_eq!(
            cache.stats().estimate_hits as usize,
            interval_cold.len(),
            "interval replay missed its own entries"
        );
        // The point ranking still replays from the point entries.
        let point_warm = point
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&point_cold), fingerprint(&point_warm));
    }

    #[test]
    fn nan_estimates_sort_deterministically_without_panicking() {
        let ranked = |mi: f64, idx: usize| RankedCandidate {
            candidate_index: idx,
            table_index: 0,
            table_name: "t".to_owned(),
            key_column: "k".to_owned(),
            feature_column: "f".to_owned(),
            aggregation: Aggregation::First,
            mi,
            estimator: EstimatorKind::Mle,
            sketch_join_size: 10,
            key_overlap: 1,
            interval: None,
        };
        let mut results = vec![
            ranked(0.5, 0),
            ranked(f64::NAN, 1),
            ranked(1.5, 2),
            ranked(-f64::NAN, 3),
            ranked(f64::NEG_INFINITY, 4),
        ];
        // The old partial_cmp sort aborted the whole query here; total_cmp
        // gives NaN a fixed place in the order instead.
        sort_by_mi_desc(&mut results);
        let order: Vec<usize> = results.iter().map(|r| r.candidate_index).collect();
        assert_eq!(order, vec![1, 2, 0, 4, 3]);
    }

    #[test]
    fn top_k_lower_bound_tracker_tracks_the_kth_largest() {
        let mut t = TopKLowerBound::new(2);
        assert_eq!(t.threshold(), None);
        t.push(0.5);
        assert_eq!(t.threshold(), None);
        t.push(0.2);
        assert_eq!(t.threshold(), Some(0.2));
        t.push(0.9); // displaces 0.2
        assert_eq!(t.threshold(), Some(0.5));
        t.push(0.1); // below the floor: ignored
        assert_eq!(t.threshold(), Some(0.5));
        // k = 0 never defines a threshold.
        let mut z = TopKLowerBound::new(0);
        z.push(1.0);
        assert_eq!(z.threshold(), None);
    }
}
