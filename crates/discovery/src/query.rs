//! Relationship-discovery queries: rank candidate augmentations by estimated
//! MI with the query table's target column, without materializing any join.

use std::collections::HashMap;
use std::sync::Arc;

use joinmi_estimators::{EstimatorKind, EstimatorWorkspace, DEFAULT_K};
use joinmi_sketch::{Aggregation, ColumnSketch, JoinedSketch, SketchConfig, SketchKind};
use joinmi_table::Table;

use crate::cache::{CacheScope, CachedEstimate};
use crate::repository::CandidateSource;
use crate::Result;

/// One ranked candidate augmentation.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// Index of the candidate inside the repository's candidate list.
    pub candidate_index: usize,
    /// Index of the owning table inside the repository.
    pub table_index: usize,
    /// Owning table name.
    pub table_name: String,
    /// Join-key column of the candidate table.
    pub key_column: String,
    /// Feature column of the candidate table.
    pub feature_column: String,
    /// Featurization function used for the candidate.
    pub aggregation: Aggregation,
    /// Estimated mutual information (nats).
    pub mi: f64,
    /// Estimator that produced the estimate.
    pub estimator: EstimatorKind,
    /// Number of paired samples recovered by the sketch join.
    pub sketch_join_size: usize,
    /// Number of overlapping sampled keys found by the joinability index.
    pub key_overlap: usize,
}

impl RankedCandidate {
    /// A short human-readable description of the candidate.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}.{}({}) on {}",
            self.table_name,
            self.aggregation.name(),
            self.feature_column,
            self.key_column
        )
    }
}

/// A relationship-discovery query over a repository.
#[derive(Debug, Clone)]
pub struct RelationshipQuery {
    /// The user's base table.
    pub train: Table,
    /// Join-key column of the base table.
    pub key_column: String,
    /// Target column of the base table.
    pub target_column: String,
    /// Maximum number of results to return (`0` = unlimited).
    pub top_k: usize,
    /// Minimum sketch-join size for an estimate to be considered meaningful
    /// (the paper discards estimates with join size ≤ 100 on real data).
    pub min_join_size: usize,
    /// Minimum key overlap (in sampled keys) required by the joinability
    /// pre-filter.
    pub min_key_overlap: usize,
    /// Sketching strategy for the query table (should match the repository's).
    pub sketch_kind: SketchKind,
    /// Sketch configuration for the query table (should match the repository's).
    pub sketch: SketchConfig,
    /// Neighbour count for the KSG-family estimators (part of the estimator
    /// configuration, and therefore of the level-2 cache key).
    pub k: usize,
}

impl RelationshipQuery {
    /// Creates a query with default parameters (top 10, minimum join size 20,
    /// TUPSK sketches of size 1024).
    #[must_use]
    pub fn new(train: Table, key_column: &str, target_column: &str) -> Self {
        Self {
            train,
            key_column: key_column.to_owned(),
            target_column: target_column.to_owned(),
            top_k: 10,
            min_join_size: 20,
            min_key_overlap: 1,
            sketch_kind: SketchKind::Tupsk,
            sketch: SketchConfig::new(1024, 0),
            k: DEFAULT_K,
        }
    }

    /// Sets the number of results to return.
    #[must_use]
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Sets the minimum sketch-join size.
    #[must_use]
    pub fn with_min_join_size(mut self, n: usize) -> Self {
        self.min_join_size = n;
        self
    }

    /// Sets the sketch strategy and configuration.
    #[must_use]
    pub fn with_sketch(mut self, kind: SketchKind, cfg: SketchConfig) -> Self {
        self.sketch_kind = kind;
        self.sketch = cfg;
        self
    }

    /// Sets the neighbour count `k` for the KSG-family estimators (default
    /// [`DEFAULT_K`]). Discrete estimators (MLE) ignore it, but it is always
    /// part of the estimator configuration for caching purposes.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builds the query-side sketch.
    pub fn build_query_sketch(&self) -> Result<ColumnSketch> {
        self.sketch_kind.build_left(
            &self.train,
            &self.key_column,
            &self.target_column,
            &self.sketch,
        )
    }

    /// Stage 1 — **probe**: builds the query-side sketch and runs the
    /// joinability pre-filter, returning the sketch together with the
    /// surviving `(candidate_index, key_overlap)` hits in their fixed
    /// pre-filter order. The later stages (join, estimate) consume this;
    /// exposing it separately lets callers inspect or cache the candidate
    /// set without scoring it.
    pub fn probe<S: CandidateSource>(
        &self,
        repository: &S,
    ) -> Result<(ColumnSketch, Vec<(usize, usize)>)> {
        let query_sketch = self.build_query_sketch()?;
        let hits = repository
            .joinability()
            .query(&query_sketch, self.min_key_overlap.max(1));
        Ok((query_sketch, hits))
    }

    /// Executes the query: prune by key overlap, join sketches, estimate MI,
    /// rank. Candidates whose estimate fails (e.g. degenerate samples) are
    /// skipped rather than failing the whole query.
    ///
    /// The repository can be any [`CandidateSource`]: the in-memory
    /// [`TableRepository`](crate::TableRepository) or a read-only
    /// [`RepositorySnapshot`](crate::persist::RepositorySnapshot) loaded from
    /// disk — the ranking is bit-for-bit identical either way. The key-overlap
    /// pre-filter runs on the source's persisted/maintained joinability index,
    /// so only surviving candidates' sketches are touched (for a lazy
    /// snapshot, only those are ever decoded).
    ///
    /// Surviving candidates are scored (sketch join + estimator) in parallel
    /// across `JOINMI_THREADS` workers. The pre-filter hit order is fixed
    /// before the fan-out and the final sort is stable over it, so the
    /// ranking — including the order of equal-MI ties — is identical to a
    /// sequential run.
    pub fn execute<S: CandidateSource + Sync>(
        &self,
        repository: &S,
    ) -> Result<Vec<RankedCandidate>> {
        self.execute_cached(repository, None)
    }

    /// [`Self::execute`] with an optional cross-query stage cache.
    ///
    /// With a [`CacheScope`], the join and estimate stages consult the cache
    /// before computing (see [`crate::cache`]); the ranking is bit-for-bit
    /// identical to an uncached run against the same (immutable) repository.
    pub fn execute_cached<S: CandidateSource + Sync>(
        &self,
        repository: &S,
        cache: Option<&CacheScope<'_>>,
    ) -> Result<Vec<RankedCandidate>> {
        let (query_sketch, hits) = self.probe(repository)?;
        let left_fp = left_fingerprint(&query_sketch, cache);

        // One estimator workspace per worker: candidates scored on the same
        // worker share the sort-once buffers of the KSG-family estimators.
        let scored: Vec<Option<RankedCandidate>> = joinmi_par::par_map_with(
            &hits,
            EstimatorWorkspace::new,
            |ws, &(candidate_index, key_overlap)| {
                self.score_hit(
                    repository,
                    &query_sketch,
                    left_fp,
                    cache,
                    ws,
                    candidate_index,
                    key_overlap,
                )
            },
        );
        let mut results: Vec<RankedCandidate> = scored.into_iter().flatten().collect();
        sort_by_mi_desc(&mut results);
        if self.top_k > 0 {
            results.truncate(self.top_k);
        }
        Ok(results)
    }

    /// Executes the query sequentially, scoring every surviving candidate
    /// with the caller-provided [`EstimatorWorkspace`].
    ///
    /// The ranking is bit-for-bit identical to [`Self::execute`] (the
    /// parallel fan-out there is pinned to agree with a sequential run), but
    /// this entry point lets a long-lived caller — a serving daemon's worker
    /// thread — own **one** workspace across every query it handles instead
    /// of rebuilding scratch buffers per call.
    pub fn execute_in<S: CandidateSource>(
        &self,
        repository: &S,
        ws: &mut EstimatorWorkspace,
    ) -> Result<Vec<RankedCandidate>> {
        self.execute_in_cached(repository, ws, None)
    }

    /// [`Self::execute_in`] with an optional cross-query stage cache — the
    /// serving daemon's hot path (one shared cache, one workspace per
    /// worker). Bit-for-bit identical to the uncached run against the same
    /// (immutable) repository.
    pub fn execute_in_cached<S: CandidateSource>(
        &self,
        repository: &S,
        ws: &mut EstimatorWorkspace,
        cache: Option<&CacheScope<'_>>,
    ) -> Result<Vec<RankedCandidate>> {
        let (query_sketch, hits) = self.probe(repository)?;
        let left_fp = left_fingerprint(&query_sketch, cache);

        let mut results: Vec<RankedCandidate> = hits
            .iter()
            .filter_map(|&(candidate_index, key_overlap)| {
                self.score_hit(
                    repository,
                    &query_sketch,
                    left_fp,
                    cache,
                    ws,
                    candidate_index,
                    key_overlap,
                )
            })
            .collect();
        sort_by_mi_desc(&mut results);
        if self.top_k > 0 {
            results.truncate(self.top_k);
        }
        Ok(results)
    }

    /// Stages 2–3 — **join** and **estimate** for one pre-filter hit: sketch
    /// join, minimum-join-size gate, MI estimate. Shared by the parallel and
    /// sequential execution paths so they cannot drift.
    ///
    /// Cache interaction, in order:
    /// * **Level-2 hit** (same left sketch, candidate, and `k`): the stored
    ///   estimate is replayed — no join, no estimator. The `min_join_size`
    ///   gate is re-applied to the stored join size, so a query with a
    ///   stricter threshold still drops the candidate exactly as its cold
    ///   run would.
    /// * **Level-1 hit**: the cached [`JoinedSketch`] feeds the estimator
    ///   directly — estimation is deterministic and workspace-independent,
    ///   so the result is bit-identical to re-joining.
    /// * **Miss**: compute both stages and populate both levels. The join is
    ///   cached even when it fails the size gate (a later query with a lower
    ///   threshold can still reuse it); failed estimates are never cached.
    #[allow(clippy::too_many_arguments)] // internal: the staged pipeline's plumbing
    fn score_hit<S: CandidateSource>(
        &self,
        repository: &S,
        query_sketch: &ColumnSketch,
        left_fp: (u64, u64),
        cache: Option<&CacheScope<'_>>,
        ws: &mut EstimatorWorkspace,
        candidate_index: usize,
        key_overlap: usize,
    ) -> Option<RankedCandidate> {
        if let Some(scope) = cache {
            if let Some(hit) = scope.get_estimate(left_fp, candidate_index, self.k) {
                if hit.join_size < self.min_join_size {
                    return None;
                }
                let candidate = repository.candidate(candidate_index);
                return Some(RankedCandidate {
                    candidate_index,
                    table_index: candidate.table_index,
                    table_name: candidate.table_name.clone(),
                    key_column: candidate.key_column.clone(),
                    feature_column: candidate.feature_column.clone(),
                    aggregation: candidate.aggregation,
                    mi: hit.mi,
                    estimator: hit.estimator,
                    sketch_join_size: hit.join_size,
                    key_overlap,
                });
            }
        }

        let candidate = repository.candidate(candidate_index);
        let joined: Arc<JoinedSketch> =
            match cache.and_then(|scope| scope.get_join(left_fp, candidate_index)) {
                Some(joined) => joined,
                None => {
                    let joined = Arc::new(query_sketch.join(&candidate.sketch));
                    if let Some(scope) = cache {
                        scope.put_join(left_fp, candidate_index, Arc::clone(&joined));
                    }
                    joined
                }
            };
        if joined.len() < self.min_join_size {
            return None;
        }
        let estimate = joined.estimate_mi_in(ws, self.k).ok()?;
        if let Some(scope) = cache {
            scope.put_estimate(
                left_fp,
                candidate_index,
                self.k,
                CachedEstimate {
                    mi: estimate.mi,
                    estimator: estimate.estimator,
                    n: estimate.n,
                    join_size: joined.len(),
                },
            );
        }
        Some(RankedCandidate {
            candidate_index,
            table_index: candidate.table_index,
            table_name: candidate.table_name.clone(),
            key_column: candidate.key_column.clone(),
            feature_column: candidate.feature_column.clone(),
            aggregation: candidate.aggregation,
            mi: estimate.mi,
            estimator: estimate.estimator,
            sketch_join_size: joined.len(),
            key_overlap,
        })
    }

    /// Executes the query and groups the ranking by estimator, reflecting the
    /// paper's observation (Section V-C3) that MI magnitudes produced by
    /// different estimators are not directly comparable and should be ranked
    /// separately.
    pub fn execute_grouped<S: CandidateSource + Sync>(
        &self,
        repository: &S,
    ) -> Result<HashMap<EstimatorKind, Vec<RankedCandidate>>> {
        let all = self.with_unlimited_k().execute(repository)?;
        let mut grouped: HashMap<EstimatorKind, Vec<RankedCandidate>> = HashMap::new();
        for candidate in all {
            grouped
                .entry(candidate.estimator)
                .or_default()
                .push(candidate);
        }
        for ranking in grouped.values_mut() {
            sort_by_mi_desc(ranking);
            if self.top_k > 0 {
                ranking.truncate(self.top_k);
            }
        }
        Ok(grouped)
    }

    fn with_unlimited_k(&self) -> Self {
        let mut q = self.clone();
        q.top_k = 0;
        q
    }
}

/// Sorts a ranking by MI, highest first, with [`f64::total_cmp`]: a total
/// order with no panic path, matching the kernel-sort convention of the
/// estimator crate. The sort is stable, so equal-MI ties keep the pre-filter
/// hit order; a NaN estimate (which no shipped estimator produces) would
/// sort deterministically instead of aborting the query.
pub fn sort_by_mi_desc(results: &mut [RankedCandidate]) {
    results.sort_by(|a, b| b.mi.total_cmp(&a.mi));
}

/// The level-1/level-2 cache key component identifying the query-side
/// sketch. Only computed when a cache is actually in play — the fingerprint
/// walks every sketch row.
fn left_fingerprint(query_sketch: &ColumnSketch, cache: Option<&CacheScope<'_>>) -> (u64, u64) {
    match cache {
        Some(_) => query_sketch.content_fingerprint(),
        None => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{RepositoryConfig, TableRepository};
    use joinmi_synth::TaxiScenario;

    fn repo_and_query() -> (TableRepository, RelationshipQuery) {
        let scenario = TaxiScenario::generate(40, 15, 3);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(512, 3),
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(scenario.demographics.clone()).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        let query = RelationshipQuery::new(scenario.taxi, "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 3))
            .with_min_join_size(10);
        (repo, query)
    }

    #[test]
    fn ranking_is_sorted_and_respects_top_k() {
        let (repo, query) = repo_and_query();
        let results = query.clone().with_top_k(3).execute(&repo).unwrap();
        assert!(!results.is_empty());
        assert!(results.len() <= 3);
        assert!(results.windows(2).all(|w| w[0].mi >= w[1].mi));
        for r in &results {
            assert!(r.sketch_join_size >= 10);
            assert!(r.mi >= 0.0);
            assert!(!r.label().is_empty());
        }
    }

    #[test]
    fn zipcode_query_only_matches_zipcode_keyed_candidates() {
        let (repo, query) = repo_and_query();
        let results = query.with_top_k(0).execute(&repo).unwrap();
        // Weather is keyed on date / hour, which do not overlap zip codes.
        assert!(results.iter().all(|r| r.key_column == "zipcode"));
        // Both demographics and inspections should appear.
        assert!(results.iter().any(|r| r.table_name == "demographics"));
        assert!(results.iter().any(|r| r.table_name == "inspections"));
    }

    #[test]
    fn demographics_population_is_a_strong_candidate() {
        // Population drives the planted per-ZIP demand signal, so its
        // sketch-estimated MI must be clearly non-zero. (Comparisons against
        // candidates scored by *different* estimators are deliberately not
        // asserted — the paper's Section V-C3 explains why such magnitudes
        // are not comparable.)
        let (repo, query) = repo_and_query();
        let results = query.with_top_k(0).execute(&repo).unwrap();
        let pop = results
            .iter()
            .find(|r| r.table_name == "demographics" && r.feature_column == "population")
            .expect("population candidate missing from ranking");
        assert!(pop.mi > 0.2, "population MI suspiciously low: {}", pop.mi);
    }

    #[test]
    fn grouped_ranking_separates_estimators() {
        let (repo, query) = repo_and_query();
        let grouped = query.execute_grouped(&repo).unwrap();
        assert!(!grouped.is_empty());
        for (kind, ranking) in &grouped {
            assert!(ranking.iter().all(|r| r.estimator == *kind));
            assert!(ranking.windows(2).all(|w| w[0].mi >= w[1].mi));
        }
    }

    #[test]
    fn sequential_execute_in_matches_parallel_execute() {
        let (repo, query) = repo_and_query();
        let parallel = query.execute(&repo).unwrap();
        assert!(!parallel.is_empty());

        // One workspace reused across repeated calls, daemon-style.
        let mut ws = joinmi_estimators::EstimatorWorkspace::new();
        for _ in 0..2 {
            let sequential = query.execute_in(&repo, &mut ws).unwrap();
            let key = |r: &RankedCandidate| (r.candidate_index, r.mi.to_bits(), r.key_overlap);
            assert_eq!(
                parallel.iter().map(key).collect::<Vec<_>>(),
                sequential.iter().map(key).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn missing_query_columns_error() {
        let (repo, query) = repo_and_query();
        let mut bad = query;
        bad.key_column = "nope".to_owned();
        assert!(bad.execute(&repo).is_err());
    }

    fn fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
        results
            .iter()
            .map(|r| {
                (
                    r.candidate_index,
                    r.mi.to_bits(),
                    r.sketch_join_size,
                    r.key_overlap,
                )
            })
            .collect()
    }

    #[test]
    fn cached_execution_is_bit_identical_and_skips_the_estimator() {
        let (repo, query) = repo_and_query();
        let query = query.with_top_k(0);
        let cold = query.execute(&repo).unwrap();
        assert!(!cold.is_empty());

        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();

        // First cached run: all misses, cache populated.
        let first = query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&first));
        let after_first = cache.stats();
        assert_eq!(after_first.estimate_hits, 0);
        assert_eq!(after_first.estimate_misses as usize, cold.len());

        // Second run: every scored candidate is a level-2 hit — the join and
        // the estimator never run — and the ranking replays bit-for-bit.
        let second = query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&second));
        let after_second = cache.stats();
        assert_eq!(after_second.estimate_hits as usize, cold.len());
        assert_eq!(after_second.estimate_misses, after_first.estimate_misses);
        assert_eq!(after_second.join_misses, after_first.join_misses);

        // The parallel path shares the same cache plumbing.
        let parallel = query.execute_cached(&repo, Some(&scope)).unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&parallel));
    }

    #[test]
    fn join_level_hit_re_estimates_bit_identically() {
        let (repo, query) = repo_and_query();
        let query = query.with_top_k(0);
        let cold = query.execute(&repo).unwrap();

        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();

        // Drop level 2, keep level 1: the next run re-estimates from the
        // cached joins and must still agree bit-for-bit.
        cache.clear_estimates();
        let joins_before = cache.stats().join_hits;
        let warm = query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&warm));
        assert!(cache.stats().join_hits > joins_before);
    }

    #[test]
    fn stricter_min_join_size_gates_cached_estimates() {
        let (repo, query) = repo_and_query();
        let query = query.with_top_k(0);
        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        query
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();

        // A stricter gate over a warm cache must agree with its own cold run.
        let strict = query.clone().with_min_join_size(200);
        let cold = strict.execute(&repo).unwrap();
        let cached = strict
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        assert_eq!(fingerprint(&cold), fingerprint(&cached));
    }

    #[test]
    fn with_k_changes_the_estimate_and_the_cache_key() {
        let (repo, query) = repo_and_query();
        let base = query.clone().with_top_k(0);
        let k7 = query.with_top_k(0).with_k(7);
        assert_eq!(base.k, DEFAULT_K);
        assert_eq!(k7.k, 7);

        let default_ranking = base.execute(&repo).unwrap();
        let k7_ranking = k7.execute(&repo).unwrap();
        // KSG-family estimates move with k; MLE-scored candidates do not.
        let moved = default_ranking.iter().any(|a| {
            k7_ranking
                .iter()
                .any(|b| b.candidate_index == a.candidate_index && b.mi.to_bits() != a.mi.to_bits())
        });
        assert!(moved, "k had no effect on any continuous candidate");

        // Different k populates distinct level-2 entries for the same pairs.
        let cache = crate::QueryStageCache::new(crate::StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        base.execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        let misses_after_base = cache.stats().estimate_misses;
        k7.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.estimate_hits, 0);
        assert!(stats.estimate_misses > misses_after_base);

        // And each replays bit-for-bit from its own entries.
        let base_cached = base
            .execute_in_cached(&repo, &mut ws, Some(&scope))
            .unwrap();
        let k7_cached = k7.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
        assert_eq!(fingerprint(&default_ranking), fingerprint(&base_cached));
        assert_eq!(fingerprint(&k7_ranking), fingerprint(&k7_cached));
    }

    #[test]
    fn nan_estimates_sort_deterministically_without_panicking() {
        let ranked = |mi: f64, idx: usize| RankedCandidate {
            candidate_index: idx,
            table_index: 0,
            table_name: "t".to_owned(),
            key_column: "k".to_owned(),
            feature_column: "f".to_owned(),
            aggregation: Aggregation::First,
            mi,
            estimator: EstimatorKind::Mle,
            sketch_join_size: 10,
            key_overlap: 1,
        };
        let mut results = vec![
            ranked(0.5, 0),
            ranked(f64::NAN, 1),
            ranked(1.5, 2),
            ranked(-f64::NAN, 3),
            ranked(f64::NEG_INFINITY, 4),
        ];
        // The old partial_cmp sort aborted the whole query here; total_cmp
        // gives NaN a fixed place in the order instead.
        sort_by_mi_desc(&mut results);
        let order: Vec<usize> = results.iter().map(|r| r.candidate_index).collect();
        assert_eq!(order, vec![1, 2, 0, 4, 3]);
    }
}
