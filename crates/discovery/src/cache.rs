//! Cross-query stage cache: bounded, concurrency-safe reuse of sketch joins
//! and MI estimates across [`RelationshipQuery`](crate::RelationshipQuery)
//! executions.
//!
//! The discovery workload is read-heavy: under real traffic the same popular
//! `(query column, candidate)` pairs are scored over and over, yet a plain
//! `execute` re-joins the sketches and re-runs the estimator from scratch
//! every time. This module memoizes the two expensive stages of the
//! probe → join → estimate pipeline:
//!
//! * **Level 1 — joined sketches**, keyed by `(left-sketch content
//!   fingerprint, candidate sketch id)`. A hit skips the hash join but still
//!   runs the estimator (needed when the same join is scored under a
//!   different neighbour count `k`).
//! * **Level 2 — full MI estimates**, keyed additionally by the estimator
//!   configuration (`k`). A hit skips both the join *and* the estimator.
//!
//! Both levels are scoped to one snapshot **generation**: the serving daemon
//! creates the cache with its [`ShardSet`] generation, and
//! [`QueryStageCache::set_generation`] clears everything when the generation
//! moves, so append epochs invalidate implicitly — no per-entry TTLs.
//!
//! Both levels are **bit-for-bit neutral**. A level-1 hit hands the estimator
//! the exact `JoinedSketch` the cold path would have built (estimation is
//! workspace-independent and deterministic, pinned by the estimator crate's
//! tests); a level-2 hit replays the stored `mi` bits verbatim. Failed
//! estimates are never cached, and the `min_join_size` gate is re-applied on
//! every hit, so queries with different thresholds still agree with their
//! cold runs exactly.
//!
//! Capacity is bounded in **entries and resident bytes** (joined sketches
//! dominate; see [`JoinedSketch::resident_bytes`]). Eviction is
//! least-recently-used via a shared logical tick with a scan-for-minimum
//! victim search across both levels — the same "obviousness over
//! asymptotics" trade the serve daemon's response cache makes, sized for
//! thousands of entries, not millions.
//!
//! [`ShardSet`]: https://docs.rs/joinmi_serve

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use joinmi_estimators::EstimatorKind;
use joinmi_sketch::JoinedSketch;

/// Capacity bounds for a [`QueryStageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCacheConfig {
    /// Maximum number of cached entries across both levels. `0` disables the
    /// cache entirely (every lookup misses without counting, every insert is
    /// dropped).
    pub max_entries: usize,
    /// Maximum resident bytes across both levels; `0` means unbounded by
    /// bytes (the entry bound still applies). An entry larger than the whole
    /// byte budget is never admitted.
    pub max_bytes: usize,
}

impl Default for StageCacheConfig {
    /// 4096 entries / 64 MiB — small enough to be harmless on a laptop,
    /// large enough to keep a serving shard's hot set resident.
    fn default() -> Self {
        Self {
            max_entries: 4096,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A memoized level-2 result: everything the scoring engine needs to rebuild
/// a ranked candidate without touching the join or the estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedEstimate {
    /// Estimated mutual information (nats), bit-exact as first computed.
    pub mi: f64,
    /// Estimator that produced the estimate.
    pub estimator: EstimatorKind,
    /// Sample size the estimator saw.
    pub n: usize,
    /// Sketch-join size (needed to re-apply the `min_join_size` gate).
    pub join_size: usize,
    /// Credible interval around `mi`, present only for entries written under
    /// an interval scoring policy. Point entries store `None`; the policy
    /// component of the level-2 key keeps the two from ever aliasing.
    pub interval: Option<CachedInterval>,
}

/// The interval decoration of a cached interval-policy estimate, bit-exact as
/// first computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedInterval {
    /// Posterior variance of the estimate.
    pub variance: f64,
    /// Lower credible bound.
    pub ci_lo: f64,
    /// Upper credible bound.
    pub ci_hi: f64,
}

/// Counters and occupancy of a [`QueryStageCache`], as one coherent snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Level-1 (joined sketch) lookups that found an entry.
    pub join_hits: u64,
    /// Level-1 lookups that missed.
    pub join_misses: u64,
    /// Level-2 (MI estimate) lookups that found an entry.
    pub estimate_hits: u64,
    /// Level-2 lookups that missed.
    pub estimate_misses: u64,
    /// Entries discarded to stay within the entry or byte bound.
    pub evictions: u64,
    /// Entries currently resident (both levels).
    pub entries: usize,
    /// Approximate resident bytes (both levels).
    pub resident_bytes: usize,
    /// Snapshot generation the resident entries belong to.
    pub generation: u64,
}

/// Level-1 key: (left fingerprint hi, left fingerprint lo, candidate sketch id).
type JoinKey = (u64, u64, u64);
/// Level-2 key: the level-1 key plus the estimator neighbour count `k` and
/// the scoring-policy code (0 for point scoring, the confidence level's bit
/// pattern for interval scoring), so point and interval results never alias.
type EstimateKey = (u64, u64, u64, u64, u64);

#[derive(Debug)]
struct JoinEntry {
    tick: u64,
    joined: Arc<JoinedSketch>,
    bytes: usize,
}

#[derive(Debug)]
struct EstimateEntry {
    tick: u64,
    estimate: CachedEstimate,
}

/// Fixed accounting overhead per entry (key + map slot bookkeeping); resident
/// bytes are a sizing signal, not an allocator audit.
const ENTRY_OVERHEAD: usize = 64;

fn estimate_entry_bytes() -> usize {
    std::mem::size_of::<EstimateKey>() + std::mem::size_of::<EstimateEntry>() + ENTRY_OVERHEAD
}

#[derive(Debug, Default)]
struct Inner {
    generation: u64,
    tick: u64,
    joins: HashMap<JoinKey, JoinEntry>,
    estimates: HashMap<EstimateKey, EstimateEntry>,
    /// Resident bytes across both maps.
    bytes: usize,
    join_hits: u64,
    join_misses: u64,
    estimate_hits: u64,
    estimate_misses: u64,
    evictions: u64,
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn entries(&self) -> usize {
        self.joins.len() + self.estimates.len()
    }

    fn over_capacity(&self, config: &StageCacheConfig) -> bool {
        self.entries() > config.max_entries
            || (config.max_bytes > 0 && self.bytes > config.max_bytes)
    }

    /// Evicts the globally least-recently-used entry (across both levels)
    /// until within bounds. Scan-for-minimum: O(entries) per eviction, which
    /// is the obvious-and-correct choice at the few-thousand-entry capacities
    /// this cache is sized for.
    fn evict_to_fit(&mut self, config: &StageCacheConfig) {
        while self.over_capacity(config) {
            let join_victim = self
                .joins
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, e)| (*k, e.tick));
            let estimate_victim = self
                .estimates
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, e)| (*k, e.tick));
            match (join_victim, estimate_victim) {
                (Some((jk, jt)), Some((_, et))) if jt <= et => self.evict_join(jk),
                (Some((jk, _)), None) => self.evict_join(jk),
                (_, Some((ek, _))) => self.evict_estimate(ek),
                (None, None) => return,
            }
            self.evictions += 1;
        }
    }

    fn evict_join(&mut self, key: JoinKey) {
        if let Some(entry) = self.joins.remove(&key) {
            self.bytes -= entry.bytes;
        }
    }

    fn evict_estimate(&mut self, key: EstimateKey) {
        if self.estimates.remove(&key).is_some() {
            self.bytes -= estimate_entry_bytes();
        }
    }

    fn clear_entries(&mut self) {
        self.joins.clear();
        self.estimates.clear();
        self.bytes = 0;
    }
}

/// A bounded, thread-safe, two-level cross-query cache over one snapshot
/// generation.
///
/// One instance is shared by every worker scoring queries against the same
/// immutable snapshot (`Mutex`-guarded; the estimator itself always runs
/// outside the lock, so contention is limited to map lookups and inserts).
/// See the [module docs](self) for keying, neutrality, and eviction.
#[derive(Debug)]
pub struct QueryStageCache {
    config: StageCacheConfig,
    inner: Mutex<Inner>,
}

impl QueryStageCache {
    /// Creates a cache with the given bounds, at generation 0.
    #[must_use]
    pub fn new(config: StageCacheConfig) -> Self {
        Self::with_generation(config, 0)
    }

    /// Creates a cache bound to a specific snapshot generation.
    #[must_use]
    pub fn with_generation(config: StageCacheConfig, generation: u64) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                generation,
                ..Inner::default()
            }),
        }
    }

    /// The configured bounds.
    #[must_use]
    pub fn config(&self) -> StageCacheConfig {
        self.config
    }

    /// Returns `true` when `max_entries` is zero and the cache is a no-op.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.config.max_entries == 0
    }

    /// The generation the resident entries belong to.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Moves the cache to `generation`, clearing every entry if it differs
    /// from the current one. Callers that mutate their repository (append
    /// epochs) must bump the generation — entries are otherwise assumed to
    /// describe an immutable snapshot. Hit/miss/eviction counters survive the
    /// clear; they describe the cache, not one generation.
    pub fn set_generation(&self, generation: u64) {
        let mut inner = self.lock();
        if inner.generation != generation {
            inner.generation = generation;
            inner.clear_entries();
        }
    }

    /// Drops every cached MI estimate but keeps the joined sketches (used by
    /// the benchmark harness to isolate the level-1 hit path).
    pub fn clear_estimates(&self) {
        let mut inner = self.lock();
        let freed = inner.estimates.len() * estimate_entry_bytes();
        inner.estimates.clear();
        inner.bytes -= freed;
    }

    /// A view of the cache that namespaces candidate indices by
    /// `sketch_id_base`. The serving daemon passes each shard's global
    /// candidate offset so shard-local indices cannot collide inside the one
    /// shared cache; single-repository callers use `scope(0)`.
    #[must_use]
    pub fn scope(&self, sketch_id_base: u64) -> CacheScope<'_> {
        CacheScope {
            cache: self,
            base: sketch_id_base,
        }
    }

    /// A coherent snapshot of counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            join_hits: inner.join_hits,
            join_misses: inner.join_misses,
            estimate_hits: inner.estimate_hits,
            estimate_misses: inner.estimate_misses,
            evictions: inner.evictions,
            entries: inner.entries(),
            resident_bytes: inner.bytes,
            generation: inner.generation,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock can only leave stale-but-valid
        // entries behind; recovering keeps every other worker serving.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn get_join(&self, key: JoinKey) -> Option<Arc<JoinedSketch>> {
        if self.is_disabled() {
            return None;
        }
        let mut inner = self.lock();
        let tick = inner.next_tick();
        match inner.joins.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let joined = Arc::clone(&entry.joined);
                inner.join_hits += 1;
                Some(joined)
            }
            None => {
                inner.join_misses += 1;
                None
            }
        }
    }

    fn put_join(&self, key: JoinKey, joined: Arc<JoinedSketch>) {
        if self.is_disabled() {
            return;
        }
        let bytes = joined.resident_bytes() + std::mem::size_of::<JoinEntry>() + ENTRY_OVERHEAD;
        if self.config.max_bytes > 0 && bytes > self.config.max_bytes {
            return; // would immediately evict the whole cache, then itself
        }
        let mut inner = self.lock();
        let tick = inner.next_tick();
        let previous = inner.joins.insert(
            key,
            JoinEntry {
                tick,
                joined,
                bytes,
            },
        );
        inner.bytes += bytes;
        if let Some(previous) = previous {
            inner.bytes -= previous.bytes;
        }
        inner.evict_to_fit(&self.config);
    }

    fn get_estimate(&self, key: EstimateKey) -> Option<CachedEstimate> {
        if self.is_disabled() {
            return None;
        }
        let mut inner = self.lock();
        let tick = inner.next_tick();
        match inner.estimates.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let estimate = entry.estimate;
                inner.estimate_hits += 1;
                Some(estimate)
            }
            None => {
                inner.estimate_misses += 1;
                None
            }
        }
    }

    fn put_estimate(&self, key: EstimateKey, estimate: CachedEstimate) {
        if self.is_disabled() {
            return;
        }
        let bytes = estimate_entry_bytes();
        if self.config.max_bytes > 0 && bytes > self.config.max_bytes {
            return;
        }
        let mut inner = self.lock();
        let tick = inner.next_tick();
        if inner
            .estimates
            .insert(key, EstimateEntry { tick, estimate })
            .is_none()
        {
            inner.bytes += bytes;
        }
        inner.evict_to_fit(&self.config);
    }
}

/// A [`QueryStageCache`] view whose candidate indices are offset by a fixed
/// base, produced by [`QueryStageCache::scope`]. Copyable and `Sync`, so the
/// parallel scoring fan-out shares one scope across workers.
#[derive(Debug, Clone, Copy)]
pub struct CacheScope<'a> {
    cache: &'a QueryStageCache,
    base: u64,
}

impl CacheScope<'_> {
    /// The underlying cache.
    #[must_use]
    pub fn cache(&self) -> &QueryStageCache {
        self.cache
    }

    fn sketch_id(&self, candidate_index: usize) -> u64 {
        self.base + candidate_index as u64
    }

    /// Level-1 lookup: the joined sketch for (left fingerprint, candidate).
    #[must_use]
    pub fn get_join(
        &self,
        left_fp: (u64, u64),
        candidate_index: usize,
    ) -> Option<Arc<JoinedSketch>> {
        self.cache
            .get_join((left_fp.0, left_fp.1, self.sketch_id(candidate_index)))
    }

    /// Level-1 insert.
    pub fn put_join(&self, left_fp: (u64, u64), candidate_index: usize, joined: Arc<JoinedSketch>) {
        self.cache.put_join(
            (left_fp.0, left_fp.1, self.sketch_id(candidate_index)),
            joined,
        );
    }

    /// Level-2 lookup: the MI estimate for (left fingerprint, candidate, `k`,
    /// scoring policy). `policy` is the policy code — `0` for point scoring,
    /// the confidence level's bit pattern for interval scoring.
    #[must_use]
    pub fn get_estimate(
        &self,
        left_fp: (u64, u64),
        candidate_index: usize,
        k: usize,
        policy: u64,
    ) -> Option<CachedEstimate> {
        self.cache.get_estimate((
            left_fp.0,
            left_fp.1,
            self.sketch_id(candidate_index),
            k as u64,
            policy,
        ))
    }

    /// Level-2 insert.
    pub fn put_estimate(
        &self,
        left_fp: (u64, u64),
        candidate_index: usize,
        k: usize,
        policy: u64,
        estimate: CachedEstimate,
    ) {
        self.cache.put_estimate(
            (
                left_fp.0,
                left_fp.1,
                self.sketch_id(candidate_index),
                k as u64,
                policy,
            ),
            estimate,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::{DataType, Value};

    fn joined(n: usize) -> Arc<JoinedSketch> {
        let xs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
        let ys = xs.clone();
        Arc::new(JoinedSketch::from_pairs(
            xs,
            ys,
            DataType::Int,
            DataType::Int,
        ))
    }

    fn estimate(mi: f64) -> CachedEstimate {
        CachedEstimate {
            mi,
            estimator: EstimatorKind::Mle,
            n: 32,
            join_size: 32,
            interval: None,
        }
    }

    fn unbounded_bytes(max_entries: usize) -> StageCacheConfig {
        StageCacheConfig {
            max_entries,
            max_bytes: 0,
        }
    }

    #[test]
    fn hit_and_miss_counters_move() {
        let cache = QueryStageCache::new(StageCacheConfig::default());
        let scope = cache.scope(0);
        let fp = (1, 2);

        assert!(scope.get_join(fp, 0).is_none());
        scope.put_join(fp, 0, joined(8));
        assert!(scope.get_join(fp, 0).is_some());

        assert!(scope.get_estimate(fp, 0, 3, 0).is_none());
        scope.put_estimate(fp, 0, 3, 0, estimate(0.5));
        assert_eq!(scope.get_estimate(fp, 0, 3, 0).unwrap().mi, 0.5);
        // A different k is a different level-2 key.
        assert!(scope.get_estimate(fp, 0, 4, 0).is_none());
        // A different scoring policy is a different level-2 key: point (code
        // 0) and interval (level bit pattern) results never alias.
        let level_code = 0.95f64.to_bits();
        assert!(scope.get_estimate(fp, 0, 3, level_code).is_none());
        let with_interval = CachedEstimate {
            interval: Some(CachedInterval {
                variance: 0.01,
                ci_lo: 0.4,
                ci_hi: 0.6,
            }),
            ..estimate(0.5)
        };
        scope.put_estimate(fp, 0, 3, level_code, with_interval);
        assert_eq!(
            scope.get_estimate(fp, 0, 3, level_code).unwrap(),
            with_interval
        );
        assert_eq!(scope.get_estimate(fp, 0, 3, 0).unwrap(), estimate(0.5));

        let stats = cache.stats();
        assert_eq!(stats.join_hits, 1);
        assert_eq!(stats.join_misses, 1);
        assert_eq!(stats.estimate_hits, 3);
        assert_eq!(stats.estimate_misses, 3);
        assert_eq!(stats.entries, 3);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn scopes_namespace_candidate_indices() {
        let cache = QueryStageCache::new(StageCacheConfig::default());
        let fp = (7, 7);
        cache.scope(0).put_join(fp, 1, joined(4));
        // base 1 + index 0 aliases base 0 + index 1 by construction; bases in
        // real use are shard candidate offsets, which cannot overlap.
        assert!(cache.scope(100).get_join(fp, 1).is_none());
        assert!(cache.scope(0).get_join(fp, 1).is_some());
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let cache = QueryStageCache::new(unbounded_bytes(2));
        let scope = cache.scope(0);
        let fp = (0, 0);
        scope.put_join(fp, 0, joined(4));
        scope.put_join(fp, 1, joined(4));
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(scope.get_join(fp, 0).is_some());
        scope.put_join(fp, 2, joined(4));

        assert!(scope.get_join(fp, 0).is_some());
        assert!(scope.get_join(fp, 1).is_none());
        assert!(scope.get_join(fp, 2).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn eviction_spans_both_levels() {
        let cache = QueryStageCache::new(unbounded_bytes(2));
        let scope = cache.scope(0);
        let fp = (0, 0);
        scope.put_estimate(fp, 0, 3, 0, estimate(0.1));
        scope.put_join(fp, 1, joined(4));
        // The estimate is oldest, so it goes first.
        scope.put_join(fp, 2, joined(4));
        assert!(scope.get_estimate(fp, 0, 3, 0).is_none());
        assert!(scope.get_join(fp, 1).is_some());
        assert!(scope.get_join(fp, 2).is_some());
    }

    #[test]
    fn byte_bound_evicts_and_rejects_oversized() {
        let small = joined(4);
        let budget = small.resident_bytes() * 3;
        let cache = QueryStageCache::new(StageCacheConfig {
            max_entries: 1024,
            max_bytes: budget,
        });
        let scope = cache.scope(0);
        let fp = (0, 0);
        scope.put_join(fp, 0, Arc::clone(&small));
        scope.put_join(fp, 1, joined(4));
        // Third entry pushes resident bytes past the budget → LRU eviction.
        scope.put_join(fp, 2, joined(4));
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "byte bound never evicted");
        assert!(stats.resident_bytes <= budget);

        // An entry larger than the whole budget is never admitted.
        scope.put_join(fp, 3, joined(4096));
        assert!(scope.get_join(fp, 3).is_none());
        assert!(cache.stats().resident_bytes <= budget);
    }

    #[test]
    fn generation_bump_clears_entries_but_keeps_counters() {
        let cache = QueryStageCache::with_generation(StageCacheConfig::default(), 10);
        let scope = cache.scope(0);
        scope.put_join((1, 1), 0, joined(4));
        scope.put_estimate((1, 1), 0, 3, 0, estimate(0.2));
        assert!(scope.get_join((1, 1), 0).is_some());

        cache.set_generation(10); // same generation: no-op
        assert_eq!(cache.stats().entries, 2);

        cache.set_generation(11);
        let stats = cache.stats();
        assert_eq!(stats.generation, 11);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.join_hits, 1); // counters survive
        assert!(scope.get_join((1, 1), 0).is_none());
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = QueryStageCache::new(unbounded_bytes(0));
        assert!(cache.is_disabled());
        let scope = cache.scope(0);
        scope.put_join((1, 1), 0, joined(4));
        scope.put_estimate((1, 1), 0, 3, 0, estimate(0.2));
        assert!(scope.get_join((1, 1), 0).is_none());
        assert!(scope.get_estimate((1, 1), 0, 3, 0).is_none());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn clear_estimates_keeps_joins() {
        let cache = QueryStageCache::new(StageCacheConfig::default());
        let scope = cache.scope(0);
        scope.put_join((1, 1), 0, joined(4));
        scope.put_estimate((1, 1), 0, 3, 0, estimate(0.2));
        cache.clear_estimates();
        assert!(scope.get_join((1, 1), 0).is_some());
        assert!(scope.get_estimate((1, 1), 0, 3, 0).is_none());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn reinsert_replaces_without_double_counting_bytes() {
        let cache = QueryStageCache::new(StageCacheConfig::default());
        let scope = cache.scope(0);
        scope.put_join((1, 1), 0, joined(4));
        let once = cache.stats().resident_bytes;
        scope.put_join((1, 1), 0, joined(4));
        assert_eq!(cache.stats().resident_bytes, once);
        assert_eq!(cache.stats().entries, 1);

        scope.put_estimate((1, 1), 0, 3, 0, estimate(0.2));
        let with_est = cache.stats().resident_bytes;
        scope.put_estimate((1, 1), 0, 3, 0, estimate(0.3));
        assert_eq!(cache.stats().resident_bytes, with_est);
        assert_eq!(scope.get_estimate((1, 1), 0, 3, 0).unwrap().mi, 0.3);
    }
}
