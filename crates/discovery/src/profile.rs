//! Column and table profiling.
//!
//! Profiling decides which columns can act as join keys (string columns, as
//! in the paper's real-data setup) and which can act as features, and records
//! the statistics (distinct counts, null counts) that the repository uses to
//! skip degenerate candidates.

use joinmi_table::{DataType, Table};

use crate::Result;

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Physical data type.
    pub dtype: DataType,
    /// Number of distinct non-NULL values.
    pub distinct: usize,
    /// Number of NULL entries.
    pub nulls: usize,
    /// Total number of rows.
    pub rows: usize,
}

impl ColumnProfile {
    /// Fraction of rows that are non-NULL.
    #[must_use]
    pub fn completeness(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            (self.rows - self.nulls) as f64 / self.rows as f64
        }
    }

    /// Whether the column is usable as a join key: string-typed, mostly
    /// non-NULL, and not constant.
    #[must_use]
    pub fn is_key_candidate(&self) -> bool {
        self.dtype == DataType::Str && self.distinct > 1 && self.completeness() > 0.5
    }

    /// Whether the column is usable as a feature: not constant and mostly
    /// non-NULL (any type — the estimator is chosen from the type later).
    #[must_use]
    pub fn is_feature_candidate(&self) -> bool {
        self.distinct > 1 && self.completeness() > 0.5
    }
}

/// Profiles of all columns of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProfile {
    /// Table name.
    pub table: String,
    /// Number of rows.
    pub rows: usize,
    /// Per-column profiles, in schema order.
    pub columns: Vec<ColumnProfile>,
}

impl TableProfile {
    /// Profiles every column of a table.
    pub fn profile(table: &Table) -> Result<Self> {
        let mut columns = Vec::with_capacity(table.num_columns());
        for field in table.schema().fields() {
            let col = table.column(&field.name)?;
            columns.push(ColumnProfile {
                name: field.name.clone(),
                dtype: field.dtype,
                distinct: col.distinct_count(),
                nulls: col.null_count(),
                rows: table.num_rows(),
            });
        }
        Ok(Self {
            table: table.name().to_owned(),
            rows: table.num_rows(),
            columns,
        })
    }

    /// Columns usable as join keys.
    #[must_use]
    pub fn key_candidates(&self) -> Vec<&ColumnProfile> {
        self.columns
            .iter()
            .filter(|c| c.is_key_candidate())
            .collect()
    }

    /// Columns usable as features.
    #[must_use]
    pub fn feature_candidates(&self) -> Vec<&ColumnProfile> {
        self.columns
            .iter()
            .filter(|c| c.is_feature_candidate())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::builder("demo")
            .push_str_column("zip", vec!["a", "b", "c", "a"])
            .push_str_column("constant", vec!["x", "x", "x", "x"])
            .push_int_column("pop", vec![1, 2, 3, 4])
            .build()
            .unwrap()
    }

    #[test]
    fn profiles_counts_and_types() {
        let p = TableProfile::profile(&table()).unwrap();
        assert_eq!(p.rows, 4);
        assert_eq!(p.columns.len(), 3);
        let zip = &p.columns[0];
        assert_eq!(zip.distinct, 3);
        assert_eq!(zip.nulls, 0);
        assert!((zip.completeness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn key_candidates_are_non_constant_strings() {
        let p = TableProfile::profile(&table()).unwrap();
        let keys: Vec<&str> = p.key_candidates().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(keys, vec!["zip"]);
    }

    #[test]
    fn feature_candidates_exclude_constants() {
        let p = TableProfile::profile(&table()).unwrap();
        let feats: Vec<&str> = p
            .feature_candidates()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(feats, vec!["zip", "pop"]);
    }

    #[test]
    fn empty_column_completeness() {
        let profile = ColumnProfile {
            name: "x".into(),
            dtype: DataType::Int,
            distinct: 0,
            nulls: 0,
            rows: 0,
        };
        assert_eq!(profile.completeness(), 0.0);
        assert!(!profile.is_feature_candidate());
    }
}
