//! MI-based data discovery: the downstream system the sketches exist to
//! serve (Sections I and III of the paper).
//!
//! A [`TableRepository`] ingests candidate tables offline, profiles their
//! columns, and builds one right-side sketch per `(join key, value column)`
//! pair. At query time a [`RelationshipQuery`] sketches the user's base table
//! once, uses the [`JoinabilityIndex`] to prune candidates with no key
//! overlap, joins the remaining sketches, estimates MI on each recovered
//! sample, and returns a ranking of candidate augmentations — all without
//! materializing a single join. The chosen augmentation can then be
//! materialized exactly with [`AugmentationPlan`].
//!
//! ```
//! use joinmi_discovery::{RelationshipQuery, RepositoryConfig, TableRepository};
//! use joinmi_synth::TaxiScenario;
//!
//! let scenario = TaxiScenario::generate(30, 10, 7);
//! let mut repo = TableRepository::new(RepositoryConfig::default());
//! repo.add_table(scenario.weather.clone()).unwrap();
//! repo.add_table(scenario.demographics.clone()).unwrap();
//! repo.add_table(scenario.inspections.clone()).unwrap();
//!
//! let query = RelationshipQuery::new(scenario.taxi.clone(), "zipcode", "num_trips");
//! let ranking = query.execute(&repo).unwrap();
//! assert!(!ranking.is_empty());
//! // Results are sorted by estimated MI, highest first.
//! assert!(ranking.windows(2).all(|w| w[0].mi >= w[1].mi));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod cache;
pub mod index;
pub mod persist;
pub mod profile;
pub mod query;
pub mod repository;

pub use augment::AugmentationPlan;
pub use cache::{
    CacheScope, CacheStats, CachedEstimate, CachedInterval, QueryStageCache, StageCacheConfig,
};
pub use index::{IndexDelta, JoinabilityIndex};
pub use persist::{CompactMode, CompactionReport, RepositorySnapshot};
pub use profile::{ColumnProfile, TableProfile};
pub use query::{sort_by_mi_desc, QueryStats, RankedCandidate, RelationshipQuery, ScoringPolicy};
pub use repository::{CandidateColumn, CandidateSource, RepositoryConfig, TableRepository};

/// Result alias reusing the table error type.
pub type Result<T> = std::result::Result<T, joinmi_table::TableError>;
