//! Materializing a chosen augmentation.
//!
//! Once the ranking identifies a promising candidate, the actual augmentation
//! (Figure 1(d) of the paper) is produced with the exact join-aggregation
//! query — this is the only point in the discovery workflow where a full join
//! is computed, and only for the handful of candidates the user selects.

use joinmi_table::{augment as table_augment, AugmentSpec, JoinResult, Table};

use crate::query::RankedCandidate;
use crate::repository::TableRepository;
use crate::Result;

/// A plan describing how to materialize one augmentation.
#[derive(Debug, Clone)]
pub struct AugmentationPlan {
    /// Join-key column of the base table.
    pub train_key: String,
    /// Target column of the base table.
    pub target: String,
    /// The chosen candidate.
    pub candidate: RankedCandidate,
}

impl AugmentationPlan {
    /// Creates a plan from a ranked candidate and the query's own columns.
    #[must_use]
    pub fn new(train_key: &str, target: &str, candidate: RankedCandidate) -> Self {
        Self {
            train_key: train_key.to_owned(),
            target: target.to_owned(),
            candidate,
        }
    }

    /// The name the derived feature column will have in the augmented table.
    #[must_use]
    pub fn feature_column_name(&self) -> String {
        format!(
            "{}({})",
            self.candidate.aggregation.name(),
            self.candidate.feature_column
        )
    }

    /// Materializes the augmentation: group-by + left-outer join on the full
    /// tables. The number of rows of `train` is preserved.
    ///
    /// Requires the raw candidate table, so this errors with
    /// [`Unsupported`](joinmi_table::TableError::Unsupported) on a
    /// sketch-only repository loaded from disk — materialization is the one
    /// discovery step that genuinely needs the original data.
    pub fn materialize(&self, train: &Table, repository: &TableRepository) -> Result<JoinResult> {
        let cand_table = repository
            .raw_table(self.candidate.table_index)
            .ok_or_else(|| {
                joinmi_table::TableError::Unsupported(format!(
                    "cannot materialize `{}`: repository is sketch-only (loaded from disk) and \
                     holds no raw tables",
                    self.candidate.table_name
                ))
            })?;
        let spec = AugmentSpec::new(
            self.train_key.clone(),
            self.target.clone(),
            self.candidate.key_column.clone(),
            self.candidate.feature_column.clone(),
            self.candidate.aggregation,
        );
        table_augment(train, cand_table, &spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RelationshipQuery;
    use crate::repository::{RepositoryConfig, TableRepository};
    use joinmi_sketch::{SketchConfig, SketchKind};
    use joinmi_synth::TaxiScenario;

    #[test]
    fn top_candidate_materializes_with_preserved_row_count() {
        let scenario = TaxiScenario::generate(20, 8, 5);
        let mut repo = TableRepository::new(RepositoryConfig {
            sketch: SketchConfig::new(256, 5),
            ..RepositoryConfig::default()
        });
        repo.add_table(scenario.demographics.clone()).unwrap();
        repo.add_table(scenario.weather.clone()).unwrap();

        let query = RelationshipQuery::new(scenario.taxi.clone(), "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(256, 5))
            .with_min_join_size(5);
        let ranking = query.execute(&repo).unwrap();
        assert!(!ranking.is_empty());

        let plan = AugmentationPlan::new("zipcode", "num_trips", ranking[0].clone());
        let result = plan.materialize(&scenario.taxi, &repo).unwrap();
        assert_eq!(result.table.num_rows(), scenario.taxi.num_rows());
        assert!(result.table.schema().contains(&plan.feature_column_name()));
        assert!(result.containment() > 0.9);
    }
}
