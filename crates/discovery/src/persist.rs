//! Repository persistence: the offline-ingest → online-query split, plus the
//! on-disk **append path** that lets an ingest daemon extend a repository
//! without rewriting it.
//!
//! A [`TableRepository`] is expensive to build (every candidate table is
//! profiled and sketched) and cheap to use — exactly the paper's pitch that
//! sketches are "built in an offline preprocessing stage" and amortized over
//! many queries. This module makes the expensive half durable:
//!
//! * [`TableRepository::save`] writes a versioned, checksummed artifact
//!   containing the config, table profiles, joinability-index postings, and
//!   every candidate's sketch **and incremental-builder state** (the raw
//!   tables are deliberately *not* persisted — queries never touch them).
//! * [`TableRepository::load`] reads it back eagerly into a sketch-only
//!   repository that answers queries bit-identically to the original — and,
//!   thanks to the builder state, accepts [`TableRepository::append_rows`].
//! * [`TableRepository::load_mmap_like`] opens the artifact as a read-only
//!   [`RepositorySnapshot`]: the whole file is read into one buffer, every
//!   section checksum is verified up front, but candidate sketches are only
//!   decoded on first access — a query prunes through the persisted index
//!   and decodes just the surviving candidates.
//! * [`TableRepository::append_to`] writes the changes accumulated since the
//!   file was loaded as an **append group** after the existing payload:
//!   updated candidate sections plus an index delta, each checksummed. The
//!   existing bytes are never touched, so a torn append (crash mid-write)
//!   surfaces as a typed [`StoreError`] at the next open, never as silent
//!   corruption of the base artifact.
//!
//! Accumulated append groups cost read time (every group is re-validated and
//! replayed at open), so two maintenance operations complete the lifecycle:
//!
//! * [`TableRepository::compact`] folds a file's append groups back into a
//!   fresh flat base — written to a sibling temp file, fsynced, then atomically
//!   renamed over the original — restoring the flat-save read profile while
//!   answering queries bit-identically.
//! * **Seal mode** ([`CompactMode::Seal`]) additionally drops all
//!   incremental-builder state for frozen corpora: the file shrinks to the
//!   lean pre-append layout and further appends are rejected with a typed
//!   [`StoreError::Sealed`] / [`TableError`](joinmi_table::TableError)
//!   `::Sealed`.
//!
//! # Repository file layout (format v3)
//!
//! ```text
//! header            magic b"JMIS" | version = 3 | artifact = Repository
//! REPO_META         sketch kind/size/seed, max pairs, table + candidate
//!                   counts, distinct-sketch capacity, flags (bit 0 = sealed)
//! PROFILES          per table: name, rows, per-column stats
//! FEATURE_DISTINCT  per table, per column: bounded KMV distinct sketch
//! INDEX             joinability postings (digest → candidate ids) + counts
//! per candidate:
//!   CANDIDATE        identity fields + embedded sketch
//!   CANDIDATE_STATE  incremental-builder state (seen keys, KMV selection
//!                    entries with aggregation states) — omitted when sealed
//! zero or more append groups (none when sealed), each:
//!   APPEND_META       updated-candidate count + refreshed profiles +
//!                     refreshed distinct sketches
//!   per updated candidate:
//!     CANDIDATE_UPDATE  candidate id + identity + refreshed sketch
//!     CANDIDATE_STATE   refreshed builder state
//!   INDEX_DELTA       ordered postings deltas (removed / added / sizes)
//! ```
//!
//! v1 files (pre-append format) and v2 files (appendable, but without
//! distinct sketches or the sealed flag) still load; appending *to* them on
//! disk is rejected with a typed error until a re-save or
//! [`TableRepository::compact`] upgrades them to v3. Earlier readers reject
//! v3 files cleanly via the version check — the bump exists precisely so an
//! old binary never misparses a new section as trailing garbage.
//!
//! The byte-level specification of all of the above lives in
//! `docs/FORMAT.md` at the repository root.

use std::io::{Read, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::OnceLock;

use joinmi_sketch::persist::{aggregation_from_tag, aggregation_tag, dtype_from_tag, dtype_tag};
use joinmi_sketch::{incremental, ColumnSketch, DistinctSketch, RightSketchBuilder, SketchConfig};
use joinmi_store::{
    read_header, scan_section, write_header, ArtifactKind, GroupGrammar, Reader, RecoveryReport,
    Result, SectionBuilder, StoreError, Writer,
};

use crate::index::{IndexDelta, JoinabilityIndex};
use crate::profile::{ColumnProfile, TableProfile};
use crate::repository::{CandidateColumn, CandidateSource, RepositoryConfig, TableRepository};

/// Section tag: repository configuration and counts.
pub const SECTION_REPO_META: u8 = 0x10;
/// Section tag: table profiles.
pub const SECTION_PROFILES: u8 = 0x11;
/// Section tag: joinability-index postings.
pub const SECTION_INDEX: u8 = 0x12;
/// Section tag: one candidate column (identity + embedded sketch).
pub const SECTION_CANDIDATE: u8 = 0x13;
/// Section tag: one candidate's incremental-builder state (v2).
pub const SECTION_CANDIDATE_STATE: u8 = 0x14;
/// Section tag: header of one append group (v2).
pub const SECTION_APPEND_META: u8 = 0x15;
/// Section tag: one updated candidate inside an append group (v2).
pub const SECTION_CANDIDATE_UPDATE: u8 = 0x16;
/// Section tag: the ordered index deltas of one append group (v2).
pub const SECTION_INDEX_DELTA: u8 = 0x17;
/// Section tag: per-column bounded distinct sketches (v3).
pub const SECTION_FEATURE_DISTINCT: u8 = 0x18;

/// The v2 repository append-group grammar for the structural repair scanner
/// in [`joinmi_store::repair`]: a group opens with APPEND_META and commits
/// with INDEX_DELTA.
pub const REPOSITORY_GROUP_GRAMMAR: GroupGrammar = GroupGrammar {
    start_tag: SECTION_APPEND_META,
    end_tag: SECTION_INDEX_DELTA,
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Flag bit in the v3 REPO_META flags byte: the repository is sealed.
const META_FLAG_SEALED: u8 = 0x01;

fn write_repo_meta<W: Write>(
    w: &mut Writer<W>,
    config: &RepositoryConfig,
    num_tables: usize,
    num_candidates: usize,
    sealed: bool,
) -> Result<()> {
    let mut meta = SectionBuilder::new();
    {
        let m = meta.writer();
        m.write_u8(joinmi_sketch::persist::sketch_kind_tag(config.sketch_kind))?;
        m.write_len(config.sketch.size)?;
        m.write_u64(config.sketch.seed)?;
        m.write_len(config.max_pairs_per_table)?;
        m.write_len(num_tables)?;
        m.write_len(num_candidates)?;
        // v3 trailer: distinct-sketch capacity + flags byte.
        m.write_len(config.distinct_sketch_size)?;
        m.write_u8(if sealed { META_FLAG_SEALED } else { 0 })?;
    }
    meta.finish(SECTION_REPO_META, w)
}

/// Encodes the profiles payload (shared by the PROFILES section and the
/// refreshed profiles inside APPEND_META).
fn encode_profiles(p: &mut Writer<Vec<u8>>, profiles: &[TableProfile]) -> Result<()> {
    p.write_len(profiles.len())?;
    for profile in profiles {
        p.write_str(&profile.table)?;
        p.write_len(profile.rows)?;
        p.write_len(profile.columns.len())?;
        for column in &profile.columns {
            p.write_str(&column.name)?;
            p.write_u8(dtype_tag(column.dtype))?;
            p.write_len(column.distinct)?;
            p.write_len(column.nulls)?;
            p.write_len(column.rows)?;
        }
    }
    Ok(())
}

fn write_profiles<W: Write>(w: &mut Writer<W>, profiles: &[TableProfile]) -> Result<()> {
    let mut section = SectionBuilder::new();
    encode_profiles(section.writer(), profiles)?;
    section.finish(SECTION_PROFILES, w)
}

/// Encodes the per-column distinct sketches (shared by the FEATURE_DISTINCT
/// section and the refreshed block inside v3 APPEND_META payloads). Each
/// column carries a presence byte so columns loaded from pre-v3 files (no
/// sketch) survive a re-save.
fn encode_distincts(
    p: &mut Writer<Vec<u8>>,
    distincts: &[Vec<Option<DistinctSketch>>],
) -> Result<()> {
    p.write_len(distincts.len())?;
    for table in distincts {
        p.write_len(table.len())?;
        for sketch in table {
            match sketch {
                None => p.write_u8(0)?,
                Some(sketch) => {
                    p.write_u8(1)?;
                    p.write_len(sketch.capacity())?;
                    p.write_len(sketch.len())?;
                    for digest in sketch.digests() {
                        p.write_u64(digest)?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn write_distincts<W: Write>(
    w: &mut Writer<W>,
    distincts: &[Vec<Option<DistinctSketch>>],
) -> Result<()> {
    let mut section = SectionBuilder::new();
    encode_distincts(section.writer(), distincts)?;
    section.finish(SECTION_FEATURE_DISTINCT, w)
}

/// Decodes a distinct-sketch block, validating its shape against the decoded
/// profiles (one entry per table, one per column) and each sketch's
/// invariants (count ≤ capacity, digests strictly increasing).
fn decode_distincts<R: Read>(
    p: &mut Reader<R>,
    profiles: &[TableProfile],
) -> Result<Vec<Vec<Option<DistinctSketch>>>> {
    let table_count = p.read_len("distinct sketch table count")?;
    if table_count != profiles.len() {
        return Err(StoreError::corrupt(format!(
            "distinct sketch block covers {table_count} tables, profiles cover {}",
            profiles.len()
        )));
    }
    let mut distincts = Vec::with_capacity(table_count);
    for profile in profiles {
        let column_count = p.read_len("distinct sketch column count")?;
        if column_count != profile.columns.len() {
            return Err(StoreError::corrupt(format!(
                "distinct sketch block covers {column_count} columns of table `{}`, \
                 its profile covers {}",
                profile.table,
                profile.columns.len()
            )));
        }
        let mut table = Vec::with_capacity(column_count);
        for _ in 0..column_count {
            match p.read_u8("distinct sketch presence flag")? {
                0 => table.push(None),
                1 => {
                    let capacity = p.read_len("distinct sketch capacity")?;
                    if capacity == 0 {
                        return Err(StoreError::corrupt("distinct sketch capacity of zero"));
                    }
                    let count = p.read_len("distinct sketch digest count")?;
                    if count > capacity {
                        return Err(StoreError::corrupt(format!(
                            "distinct sketch holds {count} digests over capacity {capacity}"
                        )));
                    }
                    let mut digests = std::collections::BTreeSet::new();
                    let mut previous: Option<u64> = None;
                    for _ in 0..count {
                        let digest = p.read_u64("distinct sketch digest")?;
                        if previous.is_some_and(|prev| digest <= prev) {
                            return Err(StoreError::corrupt(
                                "distinct sketch digests are not strictly increasing",
                            ));
                        }
                        previous = Some(digest);
                        digests.insert(digest);
                    }
                    table.push(Some(DistinctSketch::from_parts(capacity, digests)));
                }
                other => {
                    return Err(StoreError::corrupt(format!(
                        "invalid distinct sketch presence flag {other}"
                    )))
                }
            }
        }
        distincts.push(table);
    }
    Ok(distincts)
}

/// The all-`None` distinct-sketch shape for pre-v3 files: counts stay at
/// their last fully-profiled values.
fn absent_distincts(profiles: &[TableProfile]) -> Vec<Vec<Option<DistinctSketch>>> {
    profiles
        .iter()
        .map(|profile| vec![None; profile.columns.len()])
        .collect()
}

fn write_index<W: Write>(w: &mut Writer<W>, index: &JoinabilityIndex) -> Result<()> {
    let (postings, sizes) = index.canonical_parts();
    let mut section = SectionBuilder::new();
    {
        let p = section.writer();
        p.write_len(sizes.len())?;
        for (id, size) in sizes {
            p.write_len(id)?;
            p.write_len(size)?;
        }
        p.write_len(postings.len())?;
        for (digest, ids) in postings {
            p.write_u64(digest)?;
            p.write_len(ids.len())?;
            for id in ids {
                p.write_len(id)?;
            }
        }
    }
    section.finish(SECTION_INDEX, w)
}

/// Encodes a candidate's identity + sketch (the shared body of CANDIDATE and
/// CANDIDATE_UPDATE payloads).
fn encode_candidate(p: &mut Writer<Vec<u8>>, candidate: &CandidateColumn) -> Result<()> {
    p.write_len(candidate.table_index)?;
    p.write_str(&candidate.table_name)?;
    p.write_str(&candidate.key_column)?;
    p.write_str(&candidate.feature_column)?;
    p.write_u8(aggregation_tag(candidate.aggregation))?;
    candidate.sketch.write_embedded(p)
}

fn write_candidate<W: Write>(w: &mut Writer<W>, candidate: &CandidateColumn) -> Result<()> {
    let mut section = SectionBuilder::new();
    encode_candidate(section.writer(), candidate)?;
    section.finish(SECTION_CANDIDATE, w)
}

/// Writes one CANDIDATE_STATE section: a presence flag plus the serialized
/// builder. A missing builder (candidate loaded from a v1 file) writes the
/// flag alone, keeping the section structure uniform.
fn write_candidate_state<W: Write>(
    w: &mut Writer<W>,
    builder: Option<&RightSketchBuilder>,
) -> Result<()> {
    let mut section = SectionBuilder::new();
    {
        let p = section.writer();
        match builder {
            None => p.write_u8(0)?,
            Some(builder) => {
                p.write_u8(1)?;
                builder.write_state(p)?;
            }
        }
    }
    section.finish(SECTION_CANDIDATE_STATE, w)
}

fn write_index_delta<W: Write>(w: &mut Writer<W>, deltas: &[IndexDelta]) -> Result<()> {
    let mut section = SectionBuilder::new();
    {
        let p = section.writer();
        p.write_len(deltas.len())?;
        for delta in deltas {
            p.write_len(delta.removed.len())?;
            for &(digest, id) in &delta.removed {
                p.write_u64(digest)?;
                p.write_len(id)?;
            }
            p.write_len(delta.added.len())?;
            for &(digest, id) in &delta.added {
                p.write_u64(digest)?;
                p.write_len(id)?;
            }
            p.write_len(delta.sizes.len())?;
            for &(id, size) in &delta.sizes {
                p.write_len(id)?;
                p.write_len(size)?;
            }
        }
    }
    section.finish(SECTION_INDEX_DELTA, w)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct RepoMeta {
    config: RepositoryConfig,
    num_tables: usize,
    num_candidates: usize,
    sealed: bool,
}

fn read_repo_meta(payload: &[u8], version: u16) -> Result<RepoMeta> {
    let mut m = Reader::new(payload);
    let sketch_kind = joinmi_sketch::persist::sketch_kind_from_tag(m.read_u8("repo sketch kind")?)?;
    let size = m.read_len("repo sketch size")?;
    let seed = m.read_u64("repo sketch seed")?;
    let max_pairs_per_table = m.read_len("repo max pairs per table")?;
    let num_tables = m.read_len("repo table count")?;
    let num_candidates = m.read_len("repo candidate count")?;
    // v3 trailer; pre-v3 files had no distinct sketches and cannot be sealed.
    let (distinct_sketch_size, sealed) = if version >= 3 {
        let capacity = m.read_len("repo distinct sketch size")?;
        let flags = m.read_u8("repo flags")?;
        if flags & !META_FLAG_SEALED != 0 {
            return Err(StoreError::corrupt(format!(
                "unknown repository flag bits {flags:#04x}"
            )));
        }
        (capacity, flags & META_FLAG_SEALED != 0)
    } else {
        (RepositoryConfig::default().distinct_sketch_size, false)
    };
    if !m.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in REPO_META section"));
    }
    Ok(RepoMeta {
        config: RepositoryConfig {
            sketch_kind,
            sketch: SketchConfig::new(size, seed),
            max_pairs_per_table,
            distinct_sketch_size,
        },
        num_tables,
        num_candidates,
        sealed,
    })
}

fn read_profiles(payload: &[u8], expected_tables: usize) -> Result<Vec<TableProfile>> {
    let mut p = Reader::new(payload);
    let profiles = decode_profiles(&mut p, expected_tables, payload.len())?;
    if !p.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in PROFILES section"));
    }
    Ok(profiles)
}

fn decode_profiles<R: Read>(
    p: &mut Reader<R>,
    expected_tables: usize,
    payload_len: usize,
) -> Result<Vec<TableProfile>> {
    let count = p.read_len("profile count")?;
    if count != expected_tables {
        return Err(StoreError::corrupt(format!(
            "profile count {count} does not match table count {expected_tables}"
        )));
    }
    let mut profiles = Vec::with_capacity(count.min(payload_len));
    for _ in 0..count {
        let table = p.read_string("profile table name")?;
        let rows = p.read_len("profile row count")?;
        let num_columns = p.read_len("profile column count")?;
        let mut columns = Vec::with_capacity(num_columns.min(payload_len));
        for _ in 0..num_columns {
            columns.push(ColumnProfile {
                name: p.read_string("column profile name")?,
                dtype: dtype_from_tag(p.read_u8("column profile dtype")?)?,
                distinct: p.read_len("column profile distinct")?,
                nulls: p.read_len("column profile nulls")?,
                rows: p.read_len("column profile rows")?,
            });
        }
        profiles.push(TableProfile {
            table,
            rows,
            columns,
        });
    }
    Ok(profiles)
}

fn read_index(payload: &[u8], num_candidates: usize) -> Result<JoinabilityIndex> {
    let mut p = Reader::new(payload);
    let size_count = p.read_len("index size count")?;
    let mut sizes = Vec::with_capacity(size_count.min(payload.len()));
    let mut covered = vec![false; num_candidates];
    for _ in 0..size_count {
        let id = p.read_len("index candidate id")?;
        if id >= num_candidates {
            return Err(StoreError::corrupt(format!(
                "index references candidate {id}, but the file holds {num_candidates}"
            )));
        }
        covered[id] = true;
        sizes.push((id, p.read_len("index candidate digest count")?));
    }
    let digest_count = p.read_len("index digest count")?;
    let mut postings = Vec::with_capacity(digest_count.min(payload.len()));
    for _ in 0..digest_count {
        let digest = p.read_u64("index digest")?;
        let id_count = p.read_len("index posting length")?;
        let mut ids = Vec::with_capacity(id_count.min(payload.len()));
        for _ in 0..id_count {
            let id = p.read_len("index posting id")?;
            // Posting ids must also appear in the sizes list: queries size
            // their per-candidate overlap counters from the sizes, so an
            // uncovered posting id would index out of bounds.
            if id >= num_candidates || !covered[id] {
                return Err(StoreError::corrupt(format!(
                    "index posting references candidate {id} with no digest-count entry"
                )));
            }
            ids.push(id);
        }
        postings.push((digest, ids));
    }
    if !p.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in INDEX section"));
    }
    Ok(JoinabilityIndex::from_canonical_parts(postings, sizes))
}

/// Decodes a candidate body (identity + sketch) from a payload slice,
/// requiring full consumption.
fn read_candidate_body(payload: &[u8]) -> Result<CandidateColumn> {
    let mut p = Reader::new(payload);
    let table_index = p.read_len("candidate table index")?;
    let table_name = p.read_string("candidate table name")?;
    let key_column = p.read_string("candidate key column")?;
    let feature_column = p.read_string("candidate feature column")?;
    let aggregation = aggregation_from_tag(p.read_u8("candidate aggregation")?)?;
    let sketch = ColumnSketch::read_embedded(&mut p)?;
    if !p.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in CANDIDATE section"));
    }
    Ok(CandidateColumn {
        table_index,
        table_name,
        key_column,
        feature_column,
        aggregation,
        sketch,
    })
}

/// Structurally validates one candidate body without materializing it
/// (borrowed reads only): identity fields, enum tags, the embedded sketch
/// ([`joinmi_sketch::persist::validate_embedded_sketch`]), and full payload
/// consumption. Run for every candidate at snapshot open, this is what makes
/// the lazy decode in [`RepositorySnapshot::candidate`] infallible — a
/// checksum only proves integrity, not that the payload *decodes*.
fn validate_candidate_body(payload: &[u8], num_tables: usize) -> Result<()> {
    let mut p = joinmi_store::SliceReader::new(payload);
    let table_index = p.read_len("candidate table index")?;
    if table_index >= num_tables {
        return Err(StoreError::corrupt(format!(
            "candidate references table {table_index}, but the file holds {num_tables}"
        )));
    }
    p.read_str("candidate table name")?;
    p.read_str("candidate key column")?;
    p.read_str("candidate feature column")?;
    aggregation_from_tag(p.read_u8("candidate aggregation")?)?;
    let consumed = joinmi_sketch::persist::validate_embedded_sketch(&payload[p.position()..])?;
    if p.position() + consumed != payload.len() {
        return Err(StoreError::corrupt("trailing bytes in CANDIDATE section"));
    }
    Ok(())
}

/// Structurally validates a CANDIDATE_STATE payload; returns `true` when a
/// builder state is present.
fn validate_state_payload(payload: &[u8]) -> Result<bool> {
    match payload.first() {
        None => Err(StoreError::Truncated {
            context: "candidate state flag",
        }),
        Some(0) => {
            if payload.len() != 1 {
                return Err(StoreError::corrupt(
                    "trailing bytes in empty CANDIDATE_STATE section",
                ));
            }
            Ok(false)
        }
        Some(1) => {
            let consumed = incremental::validate_builder_state(&payload[1..])?;
            if 1 + consumed != payload.len() {
                return Err(StoreError::corrupt(
                    "trailing bytes in CANDIDATE_STATE section",
                ));
            }
            Ok(true)
        }
        Some(other) => Err(StoreError::corrupt(format!(
            "invalid candidate state flag {other}"
        ))),
    }
}

fn read_index_delta(payload: &[u8], num_candidates: usize) -> Result<Vec<IndexDelta>> {
    let mut p = Reader::new(payload);
    let delta_count = p.read_len("index delta count")?;
    let mut deltas = Vec::with_capacity(delta_count.min(payload.len()));
    for _ in 0..delta_count {
        let mut delta = IndexDelta::default();
        let removed = p.read_len("index delta removed count")?;
        for _ in 0..removed {
            let digest = p.read_u64("index delta removed digest")?;
            let id = p.read_len("index delta removed id")?;
            check_candidate_id(id, num_candidates)?;
            delta.removed.push((digest, id));
        }
        let added = p.read_len("index delta added count")?;
        for _ in 0..added {
            let digest = p.read_u64("index delta added digest")?;
            let id = p.read_len("index delta added id")?;
            check_candidate_id(id, num_candidates)?;
            delta.added.push((digest, id));
        }
        let sizes = p.read_len("index delta size count")?;
        for _ in 0..sizes {
            let id = p.read_len("index delta size id")?;
            check_candidate_id(id, num_candidates)?;
            delta.sizes.push((id, p.read_len("index delta size")?));
        }
        deltas.push(delta);
    }
    if !p.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in INDEX_DELTA section"));
    }
    Ok(deltas)
}

fn check_candidate_id(id: usize, num_candidates: usize) -> Result<()> {
    if id >= num_candidates {
        return Err(StoreError::corrupt(format!(
            "append group references candidate {id}, but the file holds {num_candidates}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

impl TableRepository {
    /// Serializes the repository (config, profiles, distinct sketches, index
    /// postings, candidate sketches and builder states — not the raw tables)
    /// to any `std::io::Write`, as a flat (append-group-free) v3 artifact
    /// covering the repository's *current* state. A sealed repository writes
    /// the lean sealed layout: no `CANDIDATE_STATE` sections at all.
    pub fn save_to<W: Write>(&self, out: W) -> Result<()> {
        let mut w = Writer::new(out);
        write_header(&mut w, ArtifactKind::Repository)?;
        write_repo_meta(
            &mut w,
            &self.config(),
            self.num_tables(),
            self.candidates().len(),
            self.is_sealed(),
        )?;
        write_profiles(&mut w, self.profiles())?;
        write_distincts(&mut w, self.distinct_sketches())?;
        write_index(&mut w, self.joinability())?;
        for (candidate, builder) in self.candidates().iter().zip(self.builders()) {
            write_candidate(&mut w, candidate)?;
            if !self.is_sealed() {
                write_candidate_state(&mut w, builder.as_ref())?;
            }
        }
        Ok(())
    }

    /// Saves the repository to a file (see [`Self::save_to`]), flushed and
    /// fsynced before returning. The encoding is canonical: saving a loaded
    /// repository reproduces the bytes. All filesystem operations route
    /// through the [`joinmi_store::fault`] seam, so chaos sweeps can fail or
    /// corrupt any individual write.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let file = joinmi_store::fault::create(path)?;
        let mut buffered = std::io::BufWriter::new(file);
        self.save_to(&mut buffered)?;
        use std::io::Write as _;
        buffered.flush()?;
        let file = buffered
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?;
        file.sync_all()?;
        Ok(())
    }

    /// Appends the changes made since the repository was loaded or last
    /// appended — the [`Self::append_rows`] log — to an existing repository
    /// file as one append group, without rewriting any existing bytes.
    ///
    /// The target must be the v3 artifact this repository's base state came
    /// from (header and REPO_META are verified; appending to a mismatched,
    /// pre-v3, or sealed file is rejected before any byte is written — with
    /// [`StoreError::Sealed`] for the sealed case). A no-op when nothing
    /// changed. On success the pending log is cleared, so consecutive
    /// appends produce consecutive groups.
    ///
    /// Crash semantics: the group is flushed **and fsynced** before the
    /// pending log is cleared, so a successful return means the group is
    /// durable. A write torn mid-group leaves the base artifact and
    /// all previously completed groups byte-identical on disk, and the next
    /// open reports a typed error for the torn tail rather than silently
    /// dropping it — open cannot distinguish "crash mid-append" from
    /// "bit rot in the last group", so it refuses to guess; the explicit
    /// repair step is [`Self::recover_truncated`], which drops the torn tail
    /// at a durable boundary after verifying the surviving prefix opens.
    pub fn append_to<P: AsRef<Path>>(&mut self, path: P) -> Result<()> {
        if self.pending().is_empty() {
            return Ok(());
        }

        // Light compatibility check against the target's header + meta.
        {
            let file = joinmi_store::fault::open_read(&path)?;
            let mut r = Reader::new(std::io::BufReader::new(file));
            let version = read_header(&mut r, ArtifactKind::Repository)?;
            if version < 3 {
                return Err(StoreError::corrupt(format!(
                    "cannot append to a v{version} repository file (append groups need the v3 \
                     distinct-sketch layout); re-save or compact it to upgrade"
                )));
            }
            let meta_payload = joinmi_store::read_section(&mut r, SECTION_REPO_META)?;
            let meta = read_repo_meta(&meta_payload, version)?;
            if meta.sealed {
                return Err(StoreError::Sealed {
                    operation: "appending a group to a sealed repository file",
                });
            }
            let config = self.config();
            if meta.num_tables != self.num_tables()
                || meta.num_candidates != self.candidates().len()
                || meta.config.sketch != config.sketch
                || meta.config.sketch_kind != config.sketch_kind
            {
                return Err(StoreError::corrupt(
                    "append target does not match this repository (table/candidate counts or \
                     sketch configuration differ)",
                ));
            }
        }

        let file = joinmi_store::fault::open_append(&path)?;
        let mut w = Writer::new(std::io::BufWriter::new(file));

        let dirty: Vec<usize> = self.pending().dirty.iter().copied().collect();
        let mut meta = SectionBuilder::new();
        {
            let p = meta.writer();
            p.write_len(dirty.len())?;
            encode_profiles(p, self.profiles())?;
            encode_distincts(p, self.distinct_sketches())?;
        }
        meta.finish(SECTION_APPEND_META, &mut w)?;

        for &id in &dirty {
            let mut update = SectionBuilder::new();
            {
                let p = update.writer();
                p.write_len(id)?;
                encode_candidate(p, &self.candidates()[id])?;
            }
            update.finish(SECTION_CANDIDATE_UPDATE, &mut w)?;
            write_candidate_state(&mut w, self.builders()[id].as_ref())?;
        }
        write_index_delta(&mut w, &self.pending().deltas)?;

        let mut buffered = w.into_inner();
        use std::io::Write as _;
        buffered.flush()?;
        // Fsync before declaring the group durable: the closing INDEX_DELTA
        // section is the commit point only once it is actually on disk.
        let file = buffered
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?;
        file.sync_all()?;
        self.clear_pending();
        Ok(())
    }

    /// Loads a repository artifact eagerly from a reader (see [`Self::load`]).
    pub fn load_from<R: Read>(mut input: R) -> Result<TableRepository> {
        let mut buf = Vec::new();
        input.read_to_end(&mut buf).map_err(StoreError::from)?;
        Ok(RepositorySnapshot::from_bytes(buf)?.into_repository())
    }

    /// Loads a repository saved by [`Self::save`], decoding every candidate
    /// eagerly. The result is a *sketch-only* repository: it answers queries
    /// bit-identically to the original and — for v2 artifacts — accepts
    /// [`Self::append_rows`], but holds no raw tables, so new-table ingest
    /// and [`AugmentationPlan::materialize`](crate::AugmentationPlan) are
    /// rejected with typed errors.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<TableRepository> {
        Ok(Self::load_mmap_like(path)?.into_repository())
    }

    /// Opens a repository artifact as a read-only [`RepositorySnapshot`]:
    /// the file is read into a single buffer (one syscall — the closest to
    /// `mmap` the no-unsafe policy allows), every section checksum is
    /// verified immediately, and candidate sketches are decoded lazily on
    /// first access.
    pub fn load_mmap_like<P: AsRef<Path>>(path: P) -> Result<RepositorySnapshot> {
        RepositorySnapshot::from_bytes(joinmi_store::fault::read(path)?)
    }

    /// Repairs a repository file whose last append group was torn by a crash
    /// mid-[`Self::append_to`], truncating the file in place to the last
    /// durable boundary (end of the base payload or end of the last complete
    /// group) and returning a [`RecoveryReport`] of exactly what was dropped.
    ///
    /// This is the explicit counterpart to the deliberately strict open path:
    /// [`Self::load_mmap_like`] refuses a torn file with a typed error
    /// because it cannot tell a crash from bit rot; an operator (or a serving
    /// daemon bringing a shard online) calls this to resolve the ambiguity
    /// in favour of "crash" and shed the tail.
    ///
    /// Safety properties beyond the structural scan in
    /// [`joinmi_store::recover_truncated`]:
    ///
    /// * the recovered prefix is fully **opened as a repository snapshot**
    ///   before the file is touched — the boundary the truncation commits to
    ///   always decodes, never just "looks structurally plausible";
    /// * the structural scan is not trusted to declare *health* either: the
    ///   section payload checksum does not cover the frame (tag + length), so
    ///   a bit flipped in a section **tag** leaves a file the scan walks
    ///   cleanly but the strict open refuses. When that happens the repair
    ///   falls back to a semantic search — every section end is a candidate
    ///   boundary (framing survives tag damage), and only real durable
    ///   boundaries (end of base, end of a complete group) actually open —
    ///   and truncates to the longest prefix that opens;
    /// * damage in the base payload (before any append group) is never
    ///   repairable and returns a typed error — repair can only shed
    ///   appended history, never base data.
    ///
    /// Idempotent: repairing an already-valid file is a no-op reporting zero
    /// dropped bytes.
    pub fn recover_truncated<P: AsRef<Path>>(path: P) -> Result<RecoveryReport> {
        let buf = joinmi_store::fault::read(&path)?;
        let report = joinmi_store::scan_recoverable(
            &buf,
            ArtifactKind::Repository,
            REPOSITORY_GROUP_GRAMMAR,
        )?;
        let truncate_to = |len: u64| -> Result<()> {
            let file = joinmi_store::fault::open_rw(&path)?;
            file.set_len(len)?;
            file.sync_all()?;
            Ok(())
        };

        // Verify-before-trust: whatever boundary the structural scan chose
        // must decode as a repository before the file is shrunk to it — and
        // a "healthy" verdict must decode too, or it is not healthy.
        let prefix_len =
            usize::try_from(report.recovered_len).expect("recovered_len came from a usize");
        if RepositorySnapshot::from_bytes(buf[..prefix_len].to_vec()).is_ok() {
            if report.is_torn() {
                truncate_to(report.recovered_len)?;
            }
            return Ok(report);
        }

        // Semantic fallback: the structural boundary does not open (e.g. a
        // checksum-valid flip in a section tag). Collect every section-end
        // offset — framing (length + payload checksum) survives tag damage —
        // and truncate to the longest prefix that opens. Prefixes ending
        // mid-group refuse to open by construction, so only durable
        // boundaries can win.
        let mut section_ends = Vec::new();
        let mut pos = 8usize;
        while pos < buf.len() && joinmi_store::scan_section_any(&buf, &mut pos).is_ok() {
            section_ends.push(pos);
        }
        for &end in section_ends.iter().rev() {
            if end as u64 == report.recovered_len
                || RepositorySnapshot::from_bytes(buf[..end].to_vec()).is_err()
            {
                continue;
            }
            truncate_to(end as u64)?;
            // Rescan the surviving prefix so the report's group count is
            // exact; the prefix opens, so the clean scan cannot fail.
            let prefix = joinmi_store::scan_recoverable(
                &buf[..end],
                ArtifactKind::Repository,
                REPOSITORY_GROUP_GRAMMAR,
            )?;
            return Ok(RecoveryReport {
                file_len: buf.len() as u64,
                recovered_len: end as u64,
                complete_groups: prefix.complete_groups,
                dropped_bytes: buf.len() as u64 - end as u64,
                dropped_sections: section_ends.iter().filter(|&&e| e > end).count(),
                torn_error: Some(
                    "section stream is structurally clean but does not decode \
                     (frame damage, e.g. a flipped section tag); recovered to the \
                     longest prefix that opens"
                        .to_owned(),
                ),
            });
        }
        Err(StoreError::corrupt(
            "no prefix of the file opens as a repository; the damage precedes the last \
             durable boundary",
        ))
    }

    /// Rewrites a repository file in place, folding all accumulated append
    /// groups back into a fresh flat v3 base — the read-time cost of replayed
    /// groups goes to zero while queries stay bit-for-bit identical. With
    /// [`CompactMode::Seal`] the rewrite additionally drops every candidate's
    /// incremental-builder state and marks the file sealed: the lean
    /// pre-append read profile, at the price that further appends are
    /// rejected with typed `Sealed` errors. Compacting an already-sealed or
    /// already-flat file is a valid no-op-shaped rewrite (it reproduces the
    /// canonical bytes); pre-v3 files are upgraded to v3.
    ///
    /// Crash semantics: the new image is written to a sibling temp file,
    /// fsynced, **read back and verified to open**, then atomically renamed
    /// over the original — at every instant the path holds either the
    /// complete old file or the complete new one, so a crash mid-compaction
    /// never needs repair, and a write corrupted in flight (a flipped bit on
    /// the way to the temp file) is caught before the rename and leaves the
    /// original serving. Do not run concurrently with [`Self::append_to`] on
    /// the same path: the rename would discard a group appended after the
    /// compaction read its input.
    pub fn compact<P: AsRef<Path>>(path: P, mode: CompactMode) -> Result<CompactionReport> {
        let path = path.as_ref();
        let buf = joinmi_store::fault::read(path)?;
        let bytes_before = buf.len() as u64;
        let snapshot = RepositorySnapshot::from_bytes(buf)?;
        let groups_folded = snapshot.append_groups();
        let mut repo = snapshot.into_repository();
        if matches!(mode, CompactMode::Seal) {
            repo.seal();
        }

        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".compact-tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let write_result = (|| -> Result<u64> {
            let file = joinmi_store::fault::create(&tmp)?;
            let mut buffered = std::io::BufWriter::new(file);
            repo.save_to(&mut buffered)?;
            use std::io::Write as _;
            buffered.flush()?;
            let file = buffered
                .into_inner()
                .map_err(|e| StoreError::Io(e.into_error()))?;
            file.sync_all()?;
            // Verify-before-rename: re-read the temp image and require it to
            // open as a repository. Corruption introduced between the
            // in-memory encoding and the platters never replaces a healthy
            // live file.
            let written = joinmi_store::fault::read(&tmp)?;
            RepositorySnapshot::from_bytes(written)?;
            Ok(file.metadata()?.len())
        })();
        let bytes_after = match write_result {
            Ok(len) => len,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        if let Err(e) = joinmi_store::fault::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(StoreError::Io(e));
        }
        Ok(CompactionReport {
            groups_folded,
            bytes_before,
            bytes_after,
            sealed: repo.is_sealed(),
        })
    }
}

/// How [`TableRepository::compact`] rewrites the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactMode {
    /// Fold append groups into a fresh base but keep every candidate's
    /// builder state: the file stays appendable.
    Preserve,
    /// Fold append groups *and* drop all builder state, marking the file
    /// sealed: the leanest read profile, no further appends.
    Seal,
}

/// What a [`TableRepository::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Append groups folded into the new base.
    pub groups_folded: usize,
    /// File size before the rewrite, in bytes.
    pub bytes_before: u64,
    /// File size after the rewrite, in bytes.
    pub bytes_after: u64,
    /// `true` when the rewritten file is sealed.
    pub sealed: bool,
}

/// A candidate section that decodes its [`CandidateColumn`] on first access.
#[derive(Debug)]
struct LazyCandidate {
    /// Payload byte range inside [`RepositorySnapshot::buf`] (checksum
    /// already verified at open). For a candidate refreshed by an append
    /// group this points at the latest CANDIDATE_UPDATE body.
    payload: Range<usize>,
    /// Byte range of the serialized builder state, when present (v2).
    state: Option<Range<usize>>,
    cell: OnceLock<CandidateColumn>,
}

/// A read-only repository view over a single in-memory copy of the file.
///
/// Produced by [`TableRepository::load_mmap_like`]. All section checksums are
/// verified at open — including every append group's; truncation, bit rot,
/// torn appends, wrong magic, and future versions all surface as typed
/// [`StoreError`]s, never panics. After open, candidate sketches are decoded
/// lazily: a query that prunes to `k` candidates through the persisted
/// joinability index decodes exactly those `k` sketches and leaves the rest
/// (and every builder state) as raw bytes.
#[derive(Debug)]
pub struct RepositorySnapshot {
    buf: Vec<u8>,
    config: RepositoryConfig,
    num_tables: usize,
    profiles: Vec<TableProfile>,
    distincts: Vec<Vec<Option<DistinctSketch>>>,
    index: JoinabilityIndex,
    candidates: Vec<LazyCandidate>,
    /// Number of append groups the artifact carried.
    append_groups: usize,
    /// Byte length of the base image (everything before the first append
    /// group); `buf.len() - base_len` is the appended-history weight.
    base_len: usize,
    /// `true` when the artifact is sealed (v3 flag).
    sealed: bool,
}

impl RepositorySnapshot {
    /// Parses a repository artifact held in memory, verifying the header and
    /// every section checksum up front and applying any append groups.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self> {
        // Header (8 bytes) via the streaming reader, then section scanning.
        let mut header = Reader::new(buf.as_slice());
        let version = read_header(&mut header, ArtifactKind::Repository)?;
        let mut pos = 8usize;

        let meta_range = scan_section(&buf, &mut pos, SECTION_REPO_META)?;
        let meta = read_repo_meta(&buf[meta_range], version)?;
        let profiles_range = scan_section(&buf, &mut pos, SECTION_PROFILES)?;
        let mut profiles = read_profiles(&buf[profiles_range], meta.num_tables)?;
        let mut distincts = if version >= 3 {
            let distincts_range = scan_section(&buf, &mut pos, SECTION_FEATURE_DISTINCT)?;
            let mut p = Reader::new(&buf[distincts_range]);
            let decoded = decode_distincts(&mut p, &profiles)?;
            if !p.into_inner().is_empty() {
                return Err(StoreError::corrupt(
                    "trailing bytes in FEATURE_DISTINCT section",
                ));
            }
            decoded
        } else {
            absent_distincts(&profiles)
        };
        let index_range = scan_section(&buf, &mut pos, SECTION_INDEX)?;
        let mut index = read_index(&buf[index_range], meta.num_candidates)?;

        let mut candidates = Vec::with_capacity(meta.num_candidates.min(buf.len()));
        for _ in 0..meta.num_candidates {
            let payload = scan_section(&buf, &mut pos, SECTION_CANDIDATE)?;
            // Structural validation (borrowed reads, no allocation): after
            // this, the lazy decode below cannot fail — a checksum-valid but
            // malformed payload is rejected here with a typed error instead
            // of panicking at first access.
            validate_candidate_body(&buf[payload.clone()], meta.num_tables)?;
            // Sealed files carry no builder state at all (that is the point
            // of sealing); appendable v2+ files carry one per candidate.
            let state = if version >= 2 && !meta.sealed {
                let state_payload = scan_section(&buf, &mut pos, SECTION_CANDIDATE_STATE)?;
                validate_state_payload(&buf[state_payload.clone()])?
                    .then(|| state_payload.start + 1..state_payload.end)
            } else {
                None
            };
            candidates.push(LazyCandidate {
                payload,
                state,
                cell: OnceLock::new(),
            });
        }
        let base_len = pos;
        if meta.sealed && pos < buf.len() {
            return Err(StoreError::corrupt(
                "sealed repository file carries trailing bytes (append groups are not \
                 allowed after a seal)",
            ));
        }

        // Append groups (v2+): replace updated candidates' payload ranges,
        // replay index deltas, adopt refreshed profiles + distinct sketches.
        let mut append_groups = 0usize;
        while version >= 2 && pos < buf.len() {
            let meta_payload = scan_section(&buf, &mut pos, SECTION_APPEND_META)?;
            let (updated_count, new_profiles, new_distincts) = {
                let mut p = Reader::new(&buf[meta_payload.clone()]);
                let updated = p.read_len("append group update count")?;
                let profiles = decode_profiles(&mut p, meta.num_tables, meta_payload.len())?;
                let distincts = if version >= 3 {
                    Some(decode_distincts(&mut p, &profiles)?)
                } else {
                    None
                };
                if !p.into_inner().is_empty() {
                    return Err(StoreError::corrupt("trailing bytes in APPEND_META section"));
                }
                (updated, profiles, distincts)
            };
            for _ in 0..updated_count {
                let update_payload = scan_section(&buf, &mut pos, SECTION_CANDIDATE_UPDATE)?;
                let mut p = joinmi_store::SliceReader::new(&buf[update_payload.clone()]);
                let id = p.read_len("updated candidate id")?;
                check_candidate_id(id, meta.num_candidates)?;
                let body = update_payload.start + p.position()..update_payload.end;
                validate_candidate_body(&buf[body.clone()], meta.num_tables)?;
                let state_payload = scan_section(&buf, &mut pos, SECTION_CANDIDATE_STATE)?;
                let state = validate_state_payload(&buf[state_payload.clone()])?
                    .then(|| state_payload.start + 1..state_payload.end);
                candidates[id] = LazyCandidate {
                    payload: body,
                    state,
                    cell: OnceLock::new(),
                };
            }
            let delta_payload = scan_section(&buf, &mut pos, SECTION_INDEX_DELTA)?;
            for delta in read_index_delta(&buf[delta_payload], meta.num_candidates)? {
                index.apply_delta(&delta);
            }
            profiles = new_profiles;
            if let Some(new_distincts) = new_distincts {
                distincts = new_distincts;
            }
            append_groups += 1;
        }
        if pos != buf.len() {
            return Err(StoreError::corrupt(format!(
                "{} trailing bytes after the last section",
                buf.len() - pos
            )));
        }

        Ok(Self {
            buf,
            config: meta.config,
            num_tables: meta.num_tables,
            profiles,
            distincts,
            index,
            candidates,
            append_groups,
            base_len,
            sealed: meta.sealed,
        })
    }

    /// The repository configuration recorded at ingest time.
    #[must_use]
    pub fn config(&self) -> RepositoryConfig {
        self.config
    }

    /// Number of tables the repository was built from.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Profiles of the ingested tables (refreshed by append groups).
    #[must_use]
    pub fn profiles(&self) -> &[TableProfile] {
        &self.profiles
    }

    /// Number of append groups the artifact carried (0 for a flat save).
    #[must_use]
    pub fn append_groups(&self) -> usize {
        self.append_groups
    }

    /// Bytes of appended history after the base image (0 for a flat save) —
    /// the weight [`TableRepository::compact`] would fold away.
    #[must_use]
    pub fn appended_bytes(&self) -> usize {
        self.buf.len() - self.base_len
    }

    /// `true` when the artifact is sealed: no builder state on disk, and
    /// further on-disk appends are rejected with [`StoreError::Sealed`].
    #[must_use]
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// Number of candidate sketches already decoded (observability for the
    /// lazy path; a fresh snapshot reports 0).
    #[must_use]
    pub fn decoded_candidates(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| c.cell.get().is_some())
            .count()
    }

    /// Decodes every candidate (and its builder state, when present) and
    /// assembles a sketch-only [`TableRepository`].
    #[must_use]
    pub fn into_repository(self) -> TableRepository {
        let candidates: Vec<CandidateColumn> = self
            .candidates
            .iter()
            .map(|lazy| match lazy.cell.get() {
                Some(done) => done.clone(),
                None => Self::decode_candidate(&self.buf, &lazy.payload),
            })
            .collect();
        let builders: Vec<Option<RightSketchBuilder>> = self
            .candidates
            .iter()
            .map(|lazy| {
                lazy.state.as_ref().map(|range| {
                    // Validated structurally at open (the walker mirrors the
                    // decoder), so this cannot fail on input data.
                    RightSketchBuilder::read_state(&mut Reader::new(&self.buf[range.clone()]))
                        .expect("validated builder state failed to decode")
                })
            })
            .collect();
        TableRepository::from_loaded_parts(
            self.config,
            self.profiles,
            candidates,
            self.index,
            builders,
            self.distincts,
            self.sealed,
        )
    }

    fn decode_candidate(buf: &[u8], payload: &Range<usize>) -> CandidateColumn {
        // Every candidate payload passed `validate_candidate_body` (the
        // structural walker covering exactly the fields read here) when the
        // snapshot was opened, so this decode is infallible by construction;
        // a failure would be a walker/decoder mismatch, i.e. a bug, not
        // input-dependent behaviour.
        read_candidate_body(&buf[payload.clone()])
            .expect("validated candidate section failed to decode")
    }
}

impl CandidateSource for RepositorySnapshot {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn candidate(&self, index: usize) -> &CandidateColumn {
        let lazy = &self.candidates[index];
        lazy.cell
            .get_or_init(|| Self::decode_candidate(&self.buf, &lazy.payload))
    }

    fn joinability(&self) -> &JoinabilityIndex {
        &self.index
    }

    fn key_distinct_bound(&self, index: usize) -> Option<usize> {
        // Resolving the bound decodes the candidate (key-column name), which
        // the scoring path was about to do anyway for any candidate it joins;
        // pruned candidates pay one decode but skip the join and estimate.
        crate::repository::key_distinct_bound_from(
            self.candidate(index),
            &self.profiles,
            &self.distincts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RelationshipQuery, RepositoryConfig};
    use joinmi_sketch::SketchKind;
    use joinmi_synth::TaxiScenario;

    fn sample_repo() -> (TableRepository, RelationshipQuery) {
        let scenario = TaxiScenario::generate(40, 15, 3);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(256, 3),
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(scenario.demographics.clone()).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        let query = RelationshipQuery::new(scenario.taxi, "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(256, 3))
            .with_min_join_size(10);
        (repo, query)
    }

    fn save_bytes(repo: &TableRepository) -> Vec<u8> {
        let mut buf = Vec::new();
        repo.save_to(&mut buf).unwrap();
        buf
    }

    fn fingerprint(results: &[crate::RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
        results
            .iter()
            .map(|r| {
                (
                    r.candidate_index,
                    r.mi.to_bits(),
                    r.sketch_join_size,
                    r.key_overlap,
                )
            })
            .collect()
    }

    #[test]
    fn save_load_round_trips_candidates_and_profiles() {
        let (repo, _) = sample_repo();
        let bytes = save_bytes(&repo);
        let loaded = TableRepository::load_from(bytes.as_slice()).unwrap();

        assert!(loaded.is_sketch_only());
        assert!(loaded.is_appendable());
        assert_eq!(loaded.num_tables(), repo.num_tables());
        assert_eq!(loaded.profiles(), repo.profiles());
        assert_eq!(loaded.candidates().len(), repo.candidates().len());
        for (a, b) in loaded.candidates().iter().zip(repo.candidates()) {
            assert_eq!(a.table_index, b.table_index);
            assert_eq!(a.label(), b.label());
            assert_eq!(a.aggregation, b.aggregation);
            assert_eq!(a.sketch, b.sketch);
        }
        let cfg = loaded.config();
        assert_eq!(cfg.sketch_kind, repo.config().sketch_kind);
        assert_eq!(cfg.sketch, repo.config().sketch);
        assert_eq!(cfg.max_pairs_per_table, repo.config().max_pairs_per_table);
    }

    #[test]
    fn encoding_is_canonical_across_save_load_save() {
        let (repo, _) = sample_repo();
        let first = save_bytes(&repo);
        let loaded = TableRepository::load_from(first.as_slice()).unwrap();
        let second = save_bytes(&loaded);
        assert_eq!(first, second);
    }

    #[test]
    fn loaded_repository_answers_queries_bit_identically() {
        let (repo, query) = sample_repo();
        let in_memory = query.execute(&repo).unwrap();
        assert!(!in_memory.is_empty());

        let bytes = save_bytes(&repo);
        let loaded = TableRepository::load_from(bytes.as_slice()).unwrap();
        let from_disk = query.execute(&loaded).unwrap();
        assert_eq!(fingerprint(&in_memory), fingerprint(&from_disk));

        let snapshot = RepositorySnapshot::from_bytes(bytes).unwrap();
        let from_snapshot = query.execute(&snapshot).unwrap();
        assert_eq!(fingerprint(&in_memory), fingerprint(&from_snapshot));
    }

    #[test]
    fn snapshot_decodes_only_pruned_candidates() {
        let (repo, query) = sample_repo();
        let hits = query.execute(&repo).unwrap();
        let snapshot = RepositorySnapshot::from_bytes(save_bytes(&repo)).unwrap();
        assert_eq!(snapshot.decoded_candidates(), 0);
        assert_eq!(snapshot.append_groups(), 0);
        let _ = query.execute(&snapshot).unwrap();
        let decoded = snapshot.decoded_candidates();
        // The weather table's date/hour-keyed candidates never overlap the
        // zipcode query, so laziness must leave some candidates undecoded.
        assert!(decoded >= hits.len());
        assert!(
            decoded < snapshot.candidate_count(),
            "expected some of the {} candidates to stay undecoded, decoded {decoded}",
            snapshot.candidate_count()
        );
    }

    #[test]
    fn sketch_only_repository_rejects_new_tables_and_materialize() {
        let (repo, query) = sample_repo();
        let mut loaded = TableRepository::load_from(save_bytes(&repo).as_slice()).unwrap();
        let ranking = query.execute(&loaded).unwrap();

        let err = loaded
            .add_table(repo.table(0).clone())
            .expect_err("sealed repo must reject new-table ingest");
        assert!(matches!(err, joinmi_table::TableError::Unsupported(_)));

        let plan = crate::AugmentationPlan::new("zipcode", "num_trips", ranking[0].clone());
        let err = plan
            .materialize(&query.train, &loaded)
            .expect_err("sketch-only repo cannot materialize");
        assert!(matches!(err, joinmi_table::TableError::Unsupported(_)));
    }

    #[test]
    fn corrupt_repository_files_give_typed_errors() {
        let (repo, _) = sample_repo();
        let bytes = save_bytes(&repo);

        // Truncations at every interesting boundary.
        for cut in [0, 3, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            match RepositorySnapshot::from_bytes(bytes[..cut].to_vec()) {
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::UnexpectedSection { .. }
                    | StoreError::Corrupt(_),
                ) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }

        // Wrong magic.
        let mut wrong_magic = bytes.clone();
        wrong_magic[..4].copy_from_slice(b"ELF\x7F");
        assert!(matches!(
            RepositorySnapshot::from_bytes(wrong_magic),
            Err(StoreError::BadMagic { .. })
        ));

        // Future version.
        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            RepositorySnapshot::from_bytes(future),
            Err(StoreError::UnsupportedVersion { .. })
        ));

        // Flipped payload bit -> checksum mismatch.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            RepositorySnapshot::from_bytes(flipped),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Trailing garbage after the last section.
        let mut trailing = bytes;
        trailing.extend_from_slice(b"junk");
        assert!(matches!(
            RepositorySnapshot::from_bytes(trailing),
            Err(StoreError::Corrupt(_)
                | StoreError::Truncated { .. }
                | StoreError::UnexpectedSection { .. })
        ));
    }

    #[test]
    fn checksum_valid_but_malformed_candidate_is_corrupt_not_a_panic() {
        // A checksum proves integrity, not decodability: craft a file whose
        // first CANDIDATE payload carries an invalid aggregation tag under a
        // correct checksum. Open must return a typed error, and the eager
        // load path (which shares the open) must never reach the panic in
        // decode_candidate.
        let (repo, _) = sample_repo();
        let mut bytes = save_bytes(&repo);

        let mut pos = 8usize;
        for tag in [
            SECTION_REPO_META,
            SECTION_PROFILES,
            SECTION_FEATURE_DISTINCT,
            SECTION_INDEX,
        ] {
            joinmi_store::scan_section(&bytes, &mut pos, tag).unwrap();
        }
        let payload = joinmi_store::scan_section(&bytes, &mut pos, SECTION_CANDIDATE).unwrap();

        // Locate the aggregation tag inside the payload: u64 index, 3 strings.
        let mut walker = joinmi_store::SliceReader::new(&bytes[payload.clone()]);
        walker.read_len("index").unwrap();
        for _ in 0..3 {
            walker.read_str("s").unwrap();
        }
        let agg_offset = payload.start + walker.position();
        bytes[agg_offset] = 99;
        let fixed = joinmi_store::checksum(&bytes[payload.clone()]);
        bytes[payload.start - 8..payload.start].copy_from_slice(&fixed.to_le_bytes());

        assert!(matches!(
            RepositorySnapshot::from_bytes(bytes.clone()),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            TableRepository::load_from(bytes.as_slice()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn index_postings_must_be_covered_by_digest_counts() {
        // A posting id with no digest-count entry would make queries size
        // their overlap counters too small; the loader must reject it.
        let inconsistent = JoinabilityIndex::from_canonical_parts(
            vec![(42u64, vec![5usize])],
            vec![(0usize, 1usize)],
        );
        let mut w = joinmi_store::Writer::new(Vec::new());
        super::write_index(&mut w, &inconsistent).unwrap();
        let bytes = w.into_inner();
        let mut pos = 0usize;
        let payload = joinmi_store::scan_section(&bytes, &mut pos, SECTION_INDEX).unwrap();
        assert!(matches!(
            super::read_index(&bytes[payload], 6),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let (repo, query) = sample_repo();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("joinmi-persist-test-{}.jmi", std::process::id()));

        repo.save(&path).unwrap();
        let loaded = TableRepository::load(&path).unwrap();
        let snapshot = TableRepository::load_mmap_like(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let a = query.execute(&repo).unwrap();
        let b = query.execute(&loaded).unwrap();
        let c = query.execute(&snapshot).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&c));
    }

    // -- append path ------------------------------------------------------

    /// Splits the demographics table of a fresh scenario into a prefix and a
    /// tail chunk.
    fn scenario_with_split(
        split: usize,
    ) -> (TableRepository, RelationshipQuery, joinmi_table::Table) {
        let scenario = TaxiScenario::generate(40, 15, 3);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(256, 3),
            ..RepositoryConfig::default()
        };
        let demo = scenario.demographics.clone();
        let prefix = demo.slice_rows(0..split);
        let tail = demo.slice_rows(split..demo.num_rows());
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(prefix).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        let query = RelationshipQuery::new(scenario.taxi, "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(256, 3))
            .with_min_join_size(10);
        (repo, query, tail)
    }

    #[test]
    fn file_append_group_round_trips_and_matches_flat_save() {
        let (repo, query, tail) = scenario_with_split(8);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("joinmi-append-test-{}.jmi", std::process::id()));
        repo.save(&path).unwrap();

        // Daemon flow: reload the persisted repository, append rows, extend
        // the file in place.
        let mut reloaded = TableRepository::load(&path).unwrap();
        let appended = reloaded.append_rows(&tail).unwrap();
        assert!(appended > 0);
        let before = std::fs::metadata(&path).unwrap().len();
        reloaded.append_to(&path).unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after > before, "append must grow the file");
        // Appending again with no pending changes is a no-op.
        reloaded.append_to(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), after);

        // The appended file opens with one append group and answers queries
        // bit-identically to the in-memory appended repository…
        let snapshot = TableRepository::load_mmap_like(&path).unwrap();
        assert_eq!(snapshot.append_groups(), 1);
        let from_disk = query.execute(&snapshot).unwrap();
        let in_memory = query.execute(&reloaded).unwrap();
        assert_eq!(fingerprint(&from_disk), fingerprint(&in_memory));

        // …and to an in-memory repository that appended without persisting.
        let (mut direct, _, tail2) = scenario_with_split(8);
        direct.append_rows(&tail2).unwrap();
        assert_eq!(
            fingerprint(&from_disk),
            fingerprint(&query.execute(&direct).unwrap())
        );

        // A flat save of the appended repository loads identically too.
        let flat_path = dir.join(format!("joinmi-append-flat-{}.jmi", std::process::id()));
        reloaded.save(&flat_path).unwrap();
        let flat = TableRepository::load(&flat_path).unwrap();
        assert_eq!(
            fingerprint(&in_memory),
            fingerprint(&query.execute(&flat).unwrap())
        );

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&flat_path).unwrap();
    }

    #[test]
    fn torn_append_group_is_a_typed_error_never_a_panic() {
        let (repo, _, tail) = scenario_with_split(8);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("joinmi-torn-append-{}.jmi", std::process::id()));
        repo.save(&path).unwrap();
        let base_len = std::fs::metadata(&path).unwrap().len() as usize;

        let mut reloaded = TableRepository::load(&path).unwrap();
        reloaded.append_rows(&tail).unwrap();
        reloaded.append_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(bytes.len() > base_len);

        // Every torn prefix of the append group must fail typed; the base
        // artifact alone must still open.
        assert!(RepositorySnapshot::from_bytes(bytes[..base_len].to_vec()).is_ok());
        for cut in [
            base_len + 1,
            base_len + 17,
            (base_len + bytes.len()) / 2,
            bytes.len() - 1,
        ] {
            match RepositorySnapshot::from_bytes(bytes[..cut].to_vec()) {
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::UnexpectedSection { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt(_),
                ) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }

        // A flipped bit inside the group is a checksum mismatch.
        let mut flipped = bytes.clone();
        let target = base_len + (bytes.len() - base_len) / 2;
        flipped[target] ^= 0x10;
        assert!(matches!(
            RepositorySnapshot::from_bytes(flipped),
            Err(StoreError::ChecksumMismatch { .. } | StoreError::Corrupt(_))
        ));
    }

    /// Builds a repository file with two append groups and returns its bytes
    /// plus the durable boundaries: [base_end, group1_end, group2_end].
    fn appended_repo_bytes() -> (Vec<u8>, Vec<usize>, RelationshipQuery) {
        let (repo, query, tail) = scenario_with_split(8);
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "joinmi-recover-build-{}-{:?}.jmi",
            std::process::id(),
            std::thread::current().id()
        ));
        repo.save(&path).unwrap();
        let mut boundaries = vec![std::fs::metadata(&path).unwrap().len() as usize];

        let mut reloaded = TableRepository::load(&path).unwrap();
        let split = tail.num_rows() / 2;
        reloaded.append_rows(&tail.slice_rows(0..split)).unwrap();
        reloaded.append_to(&path).unwrap();
        boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);
        reloaded
            .append_rows(&tail.slice_rows(split..tail.num_rows()))
            .unwrap();
        reloaded.append_to(&path).unwrap();
        boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);

        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        (bytes, boundaries, query)
    }

    #[test]
    fn recover_truncated_repairs_every_truncation_offset() {
        let (bytes, boundaries, query) = appended_repo_bytes();
        let base_end = boundaries[0];
        let path =
            std::env::temp_dir().join(format!("joinmi-recover-sweep-{}.jmi", std::process::id()));

        // Expected post-repair ranking per boundary, computed once.
        let rankings: Vec<_> = boundaries
            .iter()
            .map(|&b| {
                let snap = RepositorySnapshot::from_bytes(bytes[..b].to_vec()).unwrap();
                fingerprint(&query.execute(&snap).unwrap())
            })
            .collect();
        let mut ranked_boundaries = vec![false; boundaries.len()];

        for cut in base_end + 1..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let report = TableRepository::recover_truncated(&path).unwrap();
            let (bi, &expected) = boundaries
                .iter()
                .enumerate()
                .rfind(|&(_, &b)| b <= cut)
                .unwrap();
            assert_eq!(report.recovered_len, expected as u64, "cut at {cut}");
            assert_eq!(report.file_len, cut as u64, "cut at {cut}");
            assert_eq!(report.is_torn(), cut != expected, "cut at {cut}");
            assert_eq!(report.complete_groups, bi, "cut at {cut}");

            // The repaired file is the exact durable prefix (and, for torn
            // cuts, recover_truncated already re-opened it before shrinking).
            let repaired = std::fs::read(&path).unwrap();
            assert_eq!(repaired, &bytes[..expected], "cut at {cut}");

            // Once per reachable boundary, also pin that the repaired file
            // answers queries as that prefix of the append history.
            if !ranked_boundaries[bi] {
                ranked_boundaries[bi] = true;
                let snap = RepositorySnapshot::from_bytes(repaired).unwrap();
                assert_eq!(snap.append_groups(), bi, "cut at {cut}");
                assert_eq!(
                    fingerprint(&query.execute(&snap).unwrap()),
                    rankings[bi],
                    "cut at {cut}"
                );
            }
        }
        assert!(ranked_boundaries[..2].iter().all(|&r| r));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_truncated_never_drops_base_data() {
        let (bytes, boundaries, _) = appended_repo_bytes();
        let path =
            std::env::temp_dir().join(format!("joinmi-recover-base-{}.jmi", std::process::id()));

        // Truncation inside the base payload is unrecoverable: typed error,
        // file untouched.
        let cut = boundaries[0] / 2;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(TableRepository::recover_truncated(&path).is_err());
        assert_eq!(std::fs::read(&path).unwrap().len(), cut);

        // A flipped bit inside the base is damage, not a torn append.
        let mut flipped = bytes.clone();
        flipped[boundaries[0] / 2] ^= 0x20;
        std::fs::write(&path, &flipped).unwrap();
        assert!(TableRepository::recover_truncated(&path).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), flipped);

        // An intact file is a no-op.
        std::fs::write(&path, &bytes).unwrap();
        let report = TableRepository::recover_truncated(&path).unwrap();
        assert!(!report.is_torn());
        assert_eq!(report.complete_groups, 2);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);

        std::fs::remove_file(&path).unwrap();
    }

    // -- compaction + sealing ---------------------------------------------

    #[test]
    fn compact_folds_append_groups_bit_for_bit() {
        let (bytes, _, query) = appended_repo_bytes();
        let path =
            std::env::temp_dir().join(format!("joinmi-compact-fold-{}.jmi", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let before = RepositorySnapshot::from_bytes(bytes.clone()).unwrap();
        let expected = fingerprint(&query.execute(&before).unwrap());
        assert_eq!(before.append_groups(), 2);
        assert!(before.appended_bytes() > 0);

        let report = TableRepository::compact(&path, CompactMode::Preserve).unwrap();
        assert_eq!(report.groups_folded, 2);
        assert_eq!(report.bytes_before, bytes.len() as u64);
        assert!(!report.sealed);

        let snap = TableRepository::load_mmap_like(&path).unwrap();
        assert_eq!(snap.append_groups(), 0);
        assert_eq!(snap.appended_bytes(), 0);
        assert!(!snap.sealed());
        assert_eq!(fingerprint(&query.execute(&snap).unwrap()), expected);

        // Preserve mode keeps the file appendable: a load → append → append_to
        // cycle still works against the compacted file.
        let mut reloaded = TableRepository::load(&path).unwrap();
        assert!(reloaded.is_appendable());
        let extra = joinmi_synth::TaxiScenario::generate(40, 15, 3)
            .demographics
            .slice_rows(0..3);
        reloaded.append_rows(&extra).unwrap();
        reloaded.append_to(&path).unwrap();
        assert_eq!(
            TableRepository::load_mmap_like(&path)
                .unwrap()
                .append_groups(),
            1
        );

        // Compaction is idempotent and canonical: compacting the compacted
        // file again reproduces its exact bytes.
        TableRepository::compact(&path, CompactMode::Preserve).unwrap();
        let first = std::fs::read(&path).unwrap();
        let report = TableRepository::compact(&path, CompactMode::Preserve).unwrap();
        assert_eq!(report.groups_folded, 0);
        assert_eq!(std::fs::read(&path).unwrap(), first);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn seal_compaction_drops_state_and_rejects_appends() {
        let (bytes, _, query) = appended_repo_bytes();
        let path =
            std::env::temp_dir().join(format!("joinmi-compact-seal-{}.jmi", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let expected = {
            let snap = RepositorySnapshot::from_bytes(bytes.clone()).unwrap();
            fingerprint(&query.execute(&snap).unwrap())
        };

        let report = TableRepository::compact(&path, CompactMode::Seal).unwrap();
        assert_eq!(report.groups_folded, 2);
        assert!(report.sealed);
        assert!(
            report.bytes_after < report.bytes_before,
            "sealing must shed appended history and builder state \
             ({} -> {})",
            report.bytes_before,
            report.bytes_after
        );

        // Queries against the sealed file are bit-identical.
        let snap = TableRepository::load_mmap_like(&path).unwrap();
        assert!(snap.sealed());
        assert_eq!(snap.append_groups(), 0);
        assert_eq!(fingerprint(&query.execute(&snap).unwrap()), expected);

        // In-memory: a loaded sealed repository rejects all ingest, typed.
        let mut sealed = TableRepository::load(&path).unwrap();
        assert!(sealed.is_sealed());
        assert!(!sealed.is_appendable());
        let chunk = joinmi_synth::TaxiScenario::generate(40, 15, 3)
            .demographics
            .slice_rows(0..3);
        let err = sealed.append_rows(&chunk).expect_err("sealed repo");
        assert!(matches!(err, joinmi_table::TableError::Sealed(_)));

        // On disk: appending a group to the sealed file is typed too, and
        // leaves the file untouched.
        let (mut other, _, tail) = scenario_with_split(8);
        other.append_rows(&tail).unwrap();
        let file_before = std::fs::read(&path).unwrap();
        let err = other.append_to(&path).expect_err("sealed file");
        assert!(matches!(err, StoreError::Sealed { .. }));
        assert_eq!(std::fs::read(&path).unwrap(), file_before);

        // Sealing is sticky through another compaction.
        let report = TableRepository::compact(&path, CompactMode::Preserve).unwrap();
        assert!(report.sealed);
        assert!(TableRepository::load_mmap_like(&path).unwrap().sealed());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sealing_in_memory_rejects_ingest_and_saves_lean() {
        let (mut repo, query) = sample_repo();
        let expected = fingerprint(&query.execute(&repo).unwrap());
        let unsealed_len = save_bytes(&repo).len();
        repo.seal();
        assert!(repo.is_sealed());
        let err = repo
            .add_table(demo_sealed_table())
            .expect_err("sealed repo rejects new tables");
        assert!(matches!(err, joinmi_table::TableError::Sealed(_)));

        let sealed_bytes = save_bytes(&repo);
        assert!(
            sealed_bytes.len() < unsealed_len,
            "sealed save must drop builder state ({unsealed_len} -> {})",
            sealed_bytes.len()
        );
        let loaded = TableRepository::load_from(sealed_bytes.as_slice()).unwrap();
        assert!(loaded.is_sealed());
        assert_eq!(fingerprint(&query.execute(&loaded).unwrap()), expected);
    }

    fn demo_sealed_table() -> joinmi_table::Table {
        joinmi_table::Table::builder("late")
            .push_str_column("k", vec!["a", "b"])
            .push_int_column("v", vec![1, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn compact_composes_with_recover_truncated() {
        let (bytes, boundaries, query) = appended_repo_bytes();
        let path =
            std::env::temp_dir().join(format!("joinmi-compact-recover-{}.jmi", std::process::id()));

        // Tear the file mid-second-group, repair, then compact: the result
        // must rank exactly as the surviving one-group prefix.
        let cut = (boundaries[1] + boundaries[2]) / 2;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let report = TableRepository::recover_truncated(&path).unwrap();
        assert!(report.is_torn());
        assert_eq!(report.complete_groups, 1);
        let expected = {
            let snap = RepositorySnapshot::from_bytes(bytes[..boundaries[1]].to_vec()).unwrap();
            fingerprint(&query.execute(&snap).unwrap())
        };

        let compaction = TableRepository::compact(&path, CompactMode::Preserve).unwrap();
        assert_eq!(compaction.groups_folded, 1);
        let snap = TableRepository::load_mmap_like(&path).unwrap();
        assert_eq!(snap.append_groups(), 0);
        assert_eq!(fingerprint(&query.execute(&snap).unwrap()), expected);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_compacted_files_are_typed_errors() {
        // The compacted (sealed) writer produces a new layout — sweep
        // truncation offsets over it like the original corrupt-input suite.
        let (bytes, _, _) = appended_repo_bytes();
        let path = std::env::temp_dir().join(format!(
            "joinmi-compact-truncate-{}.jmi",
            std::process::id()
        ));
        std::fs::write(&path, &bytes).unwrap();
        TableRepository::compact(&path, CompactMode::Seal).unwrap();
        let sealed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        assert!(RepositorySnapshot::from_bytes(sealed.clone()).is_ok());
        for cut in (0..sealed.len()).step_by(61).chain([sealed.len() - 1]) {
            match RepositorySnapshot::from_bytes(sealed[..cut].to_vec()) {
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::UnexpectedSection { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt(_),
                ) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }

        // A sealed file with trailing bytes (a smuggled append group) is
        // rejected outright.
        let mut trailing = sealed;
        trailing.extend_from_slice(&bytes[bytes.len() - 64..]);
        assert!(matches!(
            RepositorySnapshot::from_bytes(trailing),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn append_to_rejects_pre_v3_targets() {
        // A v2 target (no distinct sketches) must be rejected with the
        // upgrade hint, not extended with mixed-format groups.
        let (mut repo, _, tail) = scenario_with_split(8);
        let path =
            std::env::temp_dir().join(format!("joinmi-append-v2-{}.jmi", std::process::id()));
        repo.save(&path).unwrap();

        // Downgrade the header to v2 in place (the payload difference does
        // not matter: the version gate fires before the meta is decoded).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        repo.append_rows(&tail).unwrap();
        let err = repo.append_to(&path).expect_err("v2 target");
        match err {
            StoreError::Corrupt(msg) => assert!(msg.contains("compact"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appended_distinct_counts_stay_fresh() {
        // Regression for the PR 5 trade-off: feature-column distinct counts
        // used to freeze at their base-ingest values under appends.
        let (mut repo, _, tail) = scenario_with_split(8);
        let table_index = repo
            .profiles()
            .iter()
            .position(|p| p.table == tail.name())
            .unwrap();
        let before: Vec<usize> = repo.profiles()[table_index]
            .columns
            .iter()
            .map(|c| c.distinct)
            .collect();
        repo.append_rows(&tail).unwrap();
        let after: Vec<usize> = repo.profiles()[table_index]
            .columns
            .iter()
            .map(|c| c.distinct)
            .collect();
        assert!(
            after.iter().zip(&before).any(|(a, b)| a > b),
            "appending fresh rows must raise at least one distinct count \
             (before {before:?}, after {after:?})"
        );
        // And the freshened counts survive a persistence round-trip.
        let reloaded = TableRepository::load_from(save_bytes(&repo).as_slice()).unwrap();
        let persisted: Vec<usize> = reloaded.profiles()[table_index]
            .columns
            .iter()
            .map(|c| c.distinct)
            .collect();
        assert_eq!(after, persisted);
    }

    #[test]
    fn append_to_rejects_mismatched_target() {
        let (mut repo, _, tail) = scenario_with_split(8);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("joinmi-append-mismatch-{}.jmi", std::process::id()));

        // Persist a *different* repository (one table only) as the target.
        let scenario = TaxiScenario::generate(40, 15, 3);
        let mut other = TableRepository::new(RepositoryConfig {
            sketch: SketchConfig::new(256, 3),
            ..RepositoryConfig::default()
        });
        other.add_table(scenario.weather).unwrap();
        other.save(&path).unwrap();

        repo.append_rows(&tail).unwrap();
        let err = repo.append_to(&path).expect_err("mismatched target");
        assert!(matches!(err, StoreError::Corrupt(_)));
        std::fs::remove_file(&path).unwrap();
    }
}
