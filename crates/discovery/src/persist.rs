//! Repository persistence: the offline-ingest → online-query split.
//!
//! A [`TableRepository`] is expensive to build (every candidate table is
//! profiled and sketched) and cheap to use — exactly the paper's pitch that
//! sketches are "built in an offline preprocessing stage" and amortized over
//! many queries. This module makes the expensive half durable:
//!
//! * [`TableRepository::save`] writes a versioned, checksummed artifact
//!   containing the config, table profiles, joinability-index postings, and
//!   every candidate's sketch (the raw tables are deliberately *not*
//!   persisted — queries never touch them).
//! * [`TableRepository::load`] reads it back eagerly into a sketch-only
//!   repository that answers queries bit-identically to the original.
//! * [`TableRepository::load_mmap_like`] opens the artifact as a read-only
//!   [`RepositorySnapshot`]: the whole file is read into one buffer, every
//!   section checksum is verified up front, but candidate sketches are only
//!   decoded on first access — a query prunes through the persisted index
//!   and decodes just the surviving candidates.
//!
//! # Repository file layout
//!
//! ```text
//! header      magic b"JMIS" | version | artifact = Repository
//! REPO_META   sketch kind/size/seed, max pairs, table + candidate counts
//! PROFILES    per table: name, rows, per-column stats
//! INDEX       joinability postings (digest → candidate ids) + digest counts
//! CANDIDATE*  one section per candidate: identity fields + embedded sketch
//! ```

use std::io::{Read, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::OnceLock;

use joinmi_sketch::persist::{aggregation_from_tag, aggregation_tag, dtype_from_tag, dtype_tag};
use joinmi_sketch::{ColumnSketch, SketchConfig};
use joinmi_store::{
    read_header, scan_section, write_header, ArtifactKind, Reader, Result, SectionBuilder,
    StoreError, Writer,
};

use crate::index::JoinabilityIndex;
use crate::profile::{ColumnProfile, TableProfile};
use crate::repository::{CandidateColumn, CandidateSource, RepositoryConfig, TableRepository};

/// Section tag: repository configuration and counts.
pub const SECTION_REPO_META: u8 = 0x10;
/// Section tag: table profiles.
pub const SECTION_PROFILES: u8 = 0x11;
/// Section tag: joinability-index postings.
pub const SECTION_INDEX: u8 = 0x12;
/// Section tag: one candidate column (identity + embedded sketch).
pub const SECTION_CANDIDATE: u8 = 0x13;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn write_repo_meta<W: Write>(
    w: &mut Writer<W>,
    config: &RepositoryConfig,
    num_tables: usize,
    num_candidates: usize,
) -> Result<()> {
    let mut meta = SectionBuilder::new();
    {
        let m = meta.writer();
        m.write_u8(joinmi_sketch::persist::sketch_kind_tag(config.sketch_kind))?;
        m.write_len(config.sketch.size)?;
        m.write_u64(config.sketch.seed)?;
        m.write_len(config.max_pairs_per_table)?;
        m.write_len(num_tables)?;
        m.write_len(num_candidates)?;
    }
    meta.finish(SECTION_REPO_META, w)
}

fn write_profiles<W: Write>(w: &mut Writer<W>, profiles: &[TableProfile]) -> Result<()> {
    let mut section = SectionBuilder::new();
    {
        let p = section.writer();
        p.write_len(profiles.len())?;
        for profile in profiles {
            p.write_str(&profile.table)?;
            p.write_len(profile.rows)?;
            p.write_len(profile.columns.len())?;
            for column in &profile.columns {
                p.write_str(&column.name)?;
                p.write_u8(dtype_tag(column.dtype))?;
                p.write_len(column.distinct)?;
                p.write_len(column.nulls)?;
                p.write_len(column.rows)?;
            }
        }
    }
    section.finish(SECTION_PROFILES, w)
}

fn write_index<W: Write>(w: &mut Writer<W>, index: &JoinabilityIndex) -> Result<()> {
    let (postings, sizes) = index.canonical_parts();
    let mut section = SectionBuilder::new();
    {
        let p = section.writer();
        p.write_len(sizes.len())?;
        for (id, size) in sizes {
            p.write_len(id)?;
            p.write_len(size)?;
        }
        p.write_len(postings.len())?;
        for (digest, ids) in postings {
            p.write_u64(digest)?;
            p.write_len(ids.len())?;
            for id in ids {
                p.write_len(id)?;
            }
        }
    }
    section.finish(SECTION_INDEX, w)
}

fn write_candidate<W: Write>(w: &mut Writer<W>, candidate: &CandidateColumn) -> Result<()> {
    let mut section = SectionBuilder::new();
    {
        let p = section.writer();
        p.write_len(candidate.table_index)?;
        p.write_str(&candidate.table_name)?;
        p.write_str(&candidate.key_column)?;
        p.write_str(&candidate.feature_column)?;
        p.write_u8(aggregation_tag(candidate.aggregation))?;
        candidate.sketch.write_embedded(p)?;
    }
    section.finish(SECTION_CANDIDATE, w)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct RepoMeta {
    config: RepositoryConfig,
    num_tables: usize,
    num_candidates: usize,
}

fn read_repo_meta(payload: &[u8]) -> Result<RepoMeta> {
    let mut m = Reader::new(payload);
    let sketch_kind = joinmi_sketch::persist::sketch_kind_from_tag(m.read_u8("repo sketch kind")?)?;
    let size = m.read_len("repo sketch size")?;
    let seed = m.read_u64("repo sketch seed")?;
    let max_pairs_per_table = m.read_len("repo max pairs per table")?;
    let num_tables = m.read_len("repo table count")?;
    let num_candidates = m.read_len("repo candidate count")?;
    if !m.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in REPO_META section"));
    }
    Ok(RepoMeta {
        config: RepositoryConfig {
            sketch_kind,
            sketch: SketchConfig::new(size, seed),
            max_pairs_per_table,
        },
        num_tables,
        num_candidates,
    })
}

fn read_profiles(payload: &[u8], expected_tables: usize) -> Result<Vec<TableProfile>> {
    let mut p = Reader::new(payload);
    let count = p.read_len("profile count")?;
    if count != expected_tables {
        return Err(StoreError::corrupt(format!(
            "profile count {count} does not match table count {expected_tables}"
        )));
    }
    let mut profiles = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        let table = p.read_string("profile table name")?;
        let rows = p.read_len("profile row count")?;
        let num_columns = p.read_len("profile column count")?;
        let mut columns = Vec::with_capacity(num_columns.min(payload.len()));
        for _ in 0..num_columns {
            columns.push(ColumnProfile {
                name: p.read_string("column profile name")?,
                dtype: dtype_from_tag(p.read_u8("column profile dtype")?)?,
                distinct: p.read_len("column profile distinct")?,
                nulls: p.read_len("column profile nulls")?,
                rows: p.read_len("column profile rows")?,
            });
        }
        profiles.push(TableProfile {
            table,
            rows,
            columns,
        });
    }
    if !p.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in PROFILES section"));
    }
    Ok(profiles)
}

fn read_index(payload: &[u8], num_candidates: usize) -> Result<JoinabilityIndex> {
    let mut p = Reader::new(payload);
    let size_count = p.read_len("index size count")?;
    let mut sizes = Vec::with_capacity(size_count.min(payload.len()));
    let mut covered = vec![false; num_candidates];
    for _ in 0..size_count {
        let id = p.read_len("index candidate id")?;
        if id >= num_candidates {
            return Err(StoreError::corrupt(format!(
                "index references candidate {id}, but the file holds {num_candidates}"
            )));
        }
        covered[id] = true;
        sizes.push((id, p.read_len("index candidate digest count")?));
    }
    let digest_count = p.read_len("index digest count")?;
    let mut postings = Vec::with_capacity(digest_count.min(payload.len()));
    for _ in 0..digest_count {
        let digest = p.read_u64("index digest")?;
        let id_count = p.read_len("index posting length")?;
        let mut ids = Vec::with_capacity(id_count.min(payload.len()));
        for _ in 0..id_count {
            let id = p.read_len("index posting id")?;
            // Posting ids must also appear in the sizes list: queries size
            // their per-candidate overlap counters from the sizes, so an
            // uncovered posting id would index out of bounds.
            if id >= num_candidates || !covered[id] {
                return Err(StoreError::corrupt(format!(
                    "index posting references candidate {id} with no digest-count entry"
                )));
            }
            ids.push(id);
        }
        postings.push((digest, ids));
    }
    if !p.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in INDEX section"));
    }
    Ok(JoinabilityIndex::from_canonical_parts(postings, sizes))
}

fn read_candidate(payload: &[u8]) -> Result<CandidateColumn> {
    let mut p = Reader::new(payload);
    let table_index = p.read_len("candidate table index")?;
    let table_name = p.read_string("candidate table name")?;
    let key_column = p.read_string("candidate key column")?;
    let feature_column = p.read_string("candidate feature column")?;
    let aggregation = aggregation_from_tag(p.read_u8("candidate aggregation")?)?;
    let sketch = ColumnSketch::read_embedded(&mut p)?;
    if !p.into_inner().is_empty() {
        return Err(StoreError::corrupt("trailing bytes in CANDIDATE section"));
    }
    Ok(CandidateColumn {
        table_index,
        table_name,
        key_column,
        feature_column,
        aggregation,
        sketch,
    })
}

/// Structurally validates one CANDIDATE payload without materializing it
/// (borrowed reads only): identity fields, enum tags, the embedded sketch
/// ([`joinmi_sketch::persist::validate_embedded_sketch`]), and full payload
/// consumption. Run for every candidate at snapshot open, this is what makes
/// the lazy decode in [`RepositorySnapshot::candidate`] infallible — a
/// checksum only proves integrity, not that the payload *decodes*.
fn validate_candidate_payload(payload: &[u8], num_tables: usize) -> Result<()> {
    let mut p = joinmi_store::SliceReader::new(payload);
    let table_index = p.read_len("candidate table index")?;
    if table_index >= num_tables {
        return Err(StoreError::corrupt(format!(
            "candidate references table {table_index}, but the file holds {num_tables}"
        )));
    }
    p.read_str("candidate table name")?;
    p.read_str("candidate key column")?;
    p.read_str("candidate feature column")?;
    aggregation_from_tag(p.read_u8("candidate aggregation")?)?;
    let consumed = joinmi_sketch::persist::validate_embedded_sketch(&payload[p.position()..])?;
    if p.position() + consumed != payload.len() {
        return Err(StoreError::corrupt("trailing bytes in CANDIDATE section"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

impl TableRepository {
    /// Serializes the repository (config, profiles, index postings, candidate
    /// sketches — not the raw tables) to any `std::io::Write`.
    pub fn save_to<W: Write>(&self, out: W) -> Result<()> {
        let mut w = Writer::new(out);
        write_header(&mut w, ArtifactKind::Repository)?;
        write_repo_meta(
            &mut w,
            &self.config(),
            self.num_tables(),
            self.candidates().len(),
        )?;
        write_profiles(&mut w, self.profiles())?;
        write_index(&mut w, self.joinability())?;
        for candidate in self.candidates() {
            write_candidate(&mut w, candidate)?;
        }
        Ok(())
    }

    /// Saves the repository to a file (see [`Self::save_to`]). The encoding
    /// is canonical: saving a loaded repository reproduces the bytes.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut buffered = std::io::BufWriter::new(file);
        self.save_to(&mut buffered)?;
        use std::io::Write as _;
        buffered.flush()?;
        Ok(())
    }

    /// Loads a repository artifact eagerly from a reader (see [`Self::load`]).
    pub fn load_from<R: Read>(mut input: R) -> Result<TableRepository> {
        let mut buf = Vec::new();
        input.read_to_end(&mut buf).map_err(StoreError::from)?;
        Ok(RepositorySnapshot::from_bytes(buf)?.into_repository())
    }

    /// Loads a repository saved by [`Self::save`], decoding every candidate
    /// eagerly. The result is a *sketch-only* repository: it answers queries
    /// bit-identically to the original, but holds no raw tables, so further
    /// ingest and [`AugmentationPlan::materialize`](crate::AugmentationPlan)
    /// are rejected with typed errors.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<TableRepository> {
        Ok(Self::load_mmap_like(path)?.into_repository())
    }

    /// Opens a repository artifact as a read-only [`RepositorySnapshot`]:
    /// the file is read into a single buffer (one syscall — the closest to
    /// `mmap` the no-unsafe policy allows), every section checksum is
    /// verified immediately, and candidate sketches are decoded lazily on
    /// first access.
    pub fn load_mmap_like<P: AsRef<Path>>(path: P) -> Result<RepositorySnapshot> {
        RepositorySnapshot::from_bytes(std::fs::read(path)?)
    }
}

/// A candidate section that decodes its [`CandidateColumn`] on first access.
#[derive(Debug)]
struct LazyCandidate {
    /// Payload byte range inside [`RepositorySnapshot::buf`] (checksum
    /// already verified at open).
    payload: Range<usize>,
    cell: OnceLock<CandidateColumn>,
}

/// A read-only repository view over a single in-memory copy of the file.
///
/// Produced by [`TableRepository::load_mmap_like`]. All section checksums are
/// verified at open (truncation, bit rot, wrong magic, and future versions
/// all surface as typed [`StoreError`]s — never panics), after which
/// candidate sketches are decoded lazily: a query that prunes to `k`
/// candidates through the persisted joinability index decodes exactly those
/// `k` sketches and leaves the rest as raw bytes.
#[derive(Debug)]
pub struct RepositorySnapshot {
    buf: Vec<u8>,
    config: RepositoryConfig,
    num_tables: usize,
    profiles: Vec<TableProfile>,
    index: JoinabilityIndex,
    candidates: Vec<LazyCandidate>,
}

impl RepositorySnapshot {
    /// Parses a repository artifact held in memory, verifying the header and
    /// every section checksum up front.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self> {
        // Header (8 bytes) via the streaming reader, then section scanning.
        let mut header = Reader::new(buf.as_slice());
        read_header(&mut header, ArtifactKind::Repository)?;
        let mut pos = 8usize;

        let meta_range = scan_section(&buf, &mut pos, SECTION_REPO_META)?;
        let meta = read_repo_meta(&buf[meta_range])?;
        let profiles_range = scan_section(&buf, &mut pos, SECTION_PROFILES)?;
        let profiles = read_profiles(&buf[profiles_range], meta.num_tables)?;
        let index_range = scan_section(&buf, &mut pos, SECTION_INDEX)?;
        let index = read_index(&buf[index_range], meta.num_candidates)?;

        let mut candidates = Vec::with_capacity(meta.num_candidates.min(buf.len()));
        for _ in 0..meta.num_candidates {
            let payload = scan_section(&buf, &mut pos, SECTION_CANDIDATE)?;
            // Structural validation (borrowed reads, no allocation): after
            // this, the lazy decode below cannot fail — a checksum-valid but
            // malformed payload is rejected here with a typed error instead
            // of panicking at first access.
            validate_candidate_payload(&buf[payload.clone()], meta.num_tables)?;
            candidates.push(LazyCandidate {
                payload,
                cell: OnceLock::new(),
            });
        }
        if pos != buf.len() {
            return Err(StoreError::corrupt(format!(
                "{} trailing bytes after the last candidate section",
                buf.len() - pos
            )));
        }

        Ok(Self {
            buf,
            config: meta.config,
            num_tables: meta.num_tables,
            profiles,
            index,
            candidates,
        })
    }

    /// The repository configuration recorded at ingest time.
    #[must_use]
    pub fn config(&self) -> RepositoryConfig {
        self.config
    }

    /// Number of tables the repository was built from.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Profiles of the ingested tables.
    #[must_use]
    pub fn profiles(&self) -> &[TableProfile] {
        &self.profiles
    }

    /// Number of candidate sketches already decoded (observability for the
    /// lazy path; a fresh snapshot reports 0).
    #[must_use]
    pub fn decoded_candidates(&self) -> usize {
        self.candidates
            .iter()
            .filter(|c| c.cell.get().is_some())
            .count()
    }

    /// Decodes every candidate and assembles a sketch-only
    /// [`TableRepository`].
    #[must_use]
    pub fn into_repository(self) -> TableRepository {
        let candidates: Vec<CandidateColumn> = self
            .candidates
            .iter()
            .map(|lazy| match lazy.cell.get() {
                Some(done) => done.clone(),
                None => Self::decode_candidate(&self.buf, &lazy.payload),
            })
            .collect();
        TableRepository::from_loaded_parts(self.config, self.profiles, candidates, self.index)
    }

    fn decode_candidate(buf: &[u8], payload: &Range<usize>) -> CandidateColumn {
        // Every candidate payload passed `validate_candidate_payload` (the
        // structural walker covering exactly the fields read here) when the
        // snapshot was opened, so this decode is infallible by construction;
        // a failure would be a walker/decoder mismatch, i.e. a bug, not
        // input-dependent behaviour.
        read_candidate(&buf[payload.clone()]).expect("validated candidate section failed to decode")
    }
}

impl CandidateSource for RepositorySnapshot {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn candidate(&self, index: usize) -> &CandidateColumn {
        let lazy = &self.candidates[index];
        lazy.cell
            .get_or_init(|| Self::decode_candidate(&self.buf, &lazy.payload))
    }

    fn joinability(&self) -> &JoinabilityIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RelationshipQuery, RepositoryConfig};
    use joinmi_sketch::SketchKind;
    use joinmi_synth::TaxiScenario;

    fn sample_repo() -> (TableRepository, RelationshipQuery) {
        let scenario = TaxiScenario::generate(40, 15, 3);
        let config = RepositoryConfig {
            sketch: SketchConfig::new(256, 3),
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        repo.add_table(scenario.weather.clone()).unwrap();
        repo.add_table(scenario.demographics.clone()).unwrap();
        repo.add_table(scenario.inspections.clone()).unwrap();
        let query = RelationshipQuery::new(scenario.taxi, "zipcode", "num_trips")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(256, 3))
            .with_min_join_size(10);
        (repo, query)
    }

    fn save_bytes(repo: &TableRepository) -> Vec<u8> {
        let mut buf = Vec::new();
        repo.save_to(&mut buf).unwrap();
        buf
    }

    fn fingerprint(results: &[crate::RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
        results
            .iter()
            .map(|r| {
                (
                    r.candidate_index,
                    r.mi.to_bits(),
                    r.sketch_join_size,
                    r.key_overlap,
                )
            })
            .collect()
    }

    #[test]
    fn save_load_round_trips_candidates_and_profiles() {
        let (repo, _) = sample_repo();
        let bytes = save_bytes(&repo);
        let loaded = TableRepository::load_from(bytes.as_slice()).unwrap();

        assert!(loaded.is_sketch_only());
        assert_eq!(loaded.num_tables(), repo.num_tables());
        assert_eq!(loaded.profiles(), repo.profiles());
        assert_eq!(loaded.candidates().len(), repo.candidates().len());
        for (a, b) in loaded.candidates().iter().zip(repo.candidates()) {
            assert_eq!(a.table_index, b.table_index);
            assert_eq!(a.label(), b.label());
            assert_eq!(a.aggregation, b.aggregation);
            assert_eq!(a.sketch, b.sketch);
        }
        let cfg = loaded.config();
        assert_eq!(cfg.sketch_kind, repo.config().sketch_kind);
        assert_eq!(cfg.sketch, repo.config().sketch);
        assert_eq!(cfg.max_pairs_per_table, repo.config().max_pairs_per_table);
    }

    #[test]
    fn encoding_is_canonical_across_save_load_save() {
        let (repo, _) = sample_repo();
        let first = save_bytes(&repo);
        let loaded = TableRepository::load_from(first.as_slice()).unwrap();
        let second = save_bytes(&loaded);
        assert_eq!(first, second);
    }

    #[test]
    fn loaded_repository_answers_queries_bit_identically() {
        let (repo, query) = sample_repo();
        let in_memory = query.execute(&repo).unwrap();
        assert!(!in_memory.is_empty());

        let bytes = save_bytes(&repo);
        let loaded = TableRepository::load_from(bytes.as_slice()).unwrap();
        let from_disk = query.execute(&loaded).unwrap();
        assert_eq!(fingerprint(&in_memory), fingerprint(&from_disk));

        let snapshot = RepositorySnapshot::from_bytes(bytes).unwrap();
        let from_snapshot = query.execute(&snapshot).unwrap();
        assert_eq!(fingerprint(&in_memory), fingerprint(&from_snapshot));
    }

    #[test]
    fn snapshot_decodes_only_pruned_candidates() {
        let (repo, query) = sample_repo();
        let hits = query.execute(&repo).unwrap();
        let snapshot = RepositorySnapshot::from_bytes(save_bytes(&repo)).unwrap();
        assert_eq!(snapshot.decoded_candidates(), 0);
        let _ = query.execute(&snapshot).unwrap();
        let decoded = snapshot.decoded_candidates();
        // The weather table's date/hour-keyed candidates never overlap the
        // zipcode query, so laziness must leave some candidates undecoded.
        assert!(decoded >= hits.len());
        assert!(
            decoded < snapshot.candidate_count(),
            "expected some of the {} candidates to stay undecoded, decoded {decoded}",
            snapshot.candidate_count()
        );
    }

    #[test]
    fn sketch_only_repository_rejects_ingest_and_materialize() {
        let (repo, query) = sample_repo();
        let mut loaded = TableRepository::load_from(save_bytes(&repo).as_slice()).unwrap();
        let ranking = query.execute(&loaded).unwrap();

        let err = loaded
            .add_table(repo.table(0).clone())
            .expect_err("sealed repo must reject ingest");
        assert!(matches!(err, joinmi_table::TableError::Unsupported(_)));

        let plan = crate::AugmentationPlan::new("zipcode", "num_trips", ranking[0].clone());
        let err = plan
            .materialize(&query.train, &loaded)
            .expect_err("sketch-only repo cannot materialize");
        assert!(matches!(err, joinmi_table::TableError::Unsupported(_)));
    }

    #[test]
    fn corrupt_repository_files_give_typed_errors() {
        let (repo, _) = sample_repo();
        let bytes = save_bytes(&repo);

        // Truncations at every interesting boundary.
        for cut in [0, 3, 8, 20, bytes.len() / 2, bytes.len() - 1] {
            match RepositorySnapshot::from_bytes(bytes[..cut].to_vec()) {
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::UnexpectedSection { .. }
                    | StoreError::Corrupt(_),
                ) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }

        // Wrong magic.
        let mut wrong_magic = bytes.clone();
        wrong_magic[..4].copy_from_slice(b"ELF\x7F");
        assert!(matches!(
            RepositorySnapshot::from_bytes(wrong_magic),
            Err(StoreError::BadMagic { .. })
        ));

        // Future version.
        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            RepositorySnapshot::from_bytes(future),
            Err(StoreError::UnsupportedVersion { .. })
        ));

        // Flipped payload bit -> checksum mismatch.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            RepositorySnapshot::from_bytes(flipped),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Trailing garbage after the last section.
        let mut trailing = bytes;
        trailing.extend_from_slice(b"junk");
        assert!(matches!(
            RepositorySnapshot::from_bytes(trailing),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn checksum_valid_but_malformed_candidate_is_corrupt_not_a_panic() {
        // A checksum proves integrity, not decodability: craft a file whose
        // first CANDIDATE payload carries an invalid aggregation tag under a
        // correct checksum. Open must return a typed error, and the eager
        // load path (which shares the open) must never reach the panic in
        // decode_candidate.
        let (repo, _) = sample_repo();
        let mut bytes = save_bytes(&repo);

        let mut pos = 8usize;
        for tag in [SECTION_REPO_META, SECTION_PROFILES, SECTION_INDEX] {
            joinmi_store::scan_section(&bytes, &mut pos, tag).unwrap();
        }
        let payload = joinmi_store::scan_section(&bytes, &mut pos, SECTION_CANDIDATE).unwrap();

        // Locate the aggregation tag inside the payload: u64 index, 3 strings.
        let mut walker = joinmi_store::SliceReader::new(&bytes[payload.clone()]);
        walker.read_len("index").unwrap();
        for _ in 0..3 {
            walker.read_str("s").unwrap();
        }
        let agg_offset = payload.start + walker.position();
        bytes[agg_offset] = 99;
        let fixed = joinmi_store::checksum(&bytes[payload.clone()]);
        bytes[payload.start - 8..payload.start].copy_from_slice(&fixed.to_le_bytes());

        assert!(matches!(
            RepositorySnapshot::from_bytes(bytes.clone()),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            TableRepository::load_from(bytes.as_slice()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn index_postings_must_be_covered_by_digest_counts() {
        // A posting id with no digest-count entry would make queries size
        // their overlap counters too small; the loader must reject it.
        let inconsistent = JoinabilityIndex::from_canonical_parts(
            vec![(42u64, vec![5usize])],
            vec![(0usize, 1usize)],
        );
        let mut w = joinmi_store::Writer::new(Vec::new());
        super::write_index(&mut w, &inconsistent).unwrap();
        let bytes = w.into_inner();
        let mut pos = 0usize;
        let payload = joinmi_store::scan_section(&bytes, &mut pos, SECTION_INDEX).unwrap();
        assert!(matches!(
            super::read_index(&bytes[payload], 6),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let (repo, query) = sample_repo();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("joinmi-persist-test-{}.jmi", std::process::id()));

        repo.save(&path).unwrap();
        let loaded = TableRepository::load(&path).unwrap();
        let snapshot = TableRepository::load_mmap_like(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        let a = query.execute(&repo).unwrap();
        let b = query.execute(&loaded).unwrap();
        let c = query.execute(&snapshot).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&c));
    }
}
