//! The candidate-table repository.
//!
//! Ingests external tables offline: profiles them, chooses `(key, feature)`
//! column pairs, and builds one right-side sketch per pair. This is the
//! "sketches are typically built in an offline preprocessing stage" part of
//! the paper's approach overview.

use joinmi_sketch::{Aggregation, ColumnSketch, SketchConfig, SketchKind};
use joinmi_table::{DataType, Table};

use crate::profile::TableProfile;
use crate::Result;

/// Configuration of a repository.
#[derive(Debug, Clone, Copy)]
pub struct RepositoryConfig {
    /// Sketching strategy used for candidate columns.
    pub sketch_kind: SketchKind,
    /// Sketch size / seed.
    pub sketch: SketchConfig,
    /// Maximum number of `(key, feature)` pairs ingested per table (guards
    /// against very wide tables exploding the index).
    pub max_pairs_per_table: usize,
}

impl Default for RepositoryConfig {
    fn default() -> Self {
        Self {
            sketch_kind: SketchKind::Tupsk,
            sketch: SketchConfig::new(1024, 0),
            max_pairs_per_table: 64,
        }
    }
}

/// One ingested candidate: a `(join key, feature)` column pair of a table,
/// its sketch, and the aggregation that will be used when augmenting.
#[derive(Debug, Clone)]
pub struct CandidateColumn {
    /// Index of the owning table inside the repository.
    pub table_index: usize,
    /// Owning table name.
    pub table_name: String,
    /// Join-key column name.
    pub key_column: String,
    /// Feature column name.
    pub feature_column: String,
    /// Featurization function used for repeated keys.
    pub aggregation: Aggregation,
    /// The right-side sketch of the pair.
    pub sketch: ColumnSketch,
}

impl CandidateColumn {
    /// A human-readable identifier `table.feature (on key)`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}.{} (on {})",
            self.table_name, self.feature_column, self.key_column
        )
    }
}

/// A repository of candidate tables with pre-built sketches.
#[derive(Debug, Default)]
pub struct TableRepository {
    config: Option<RepositoryConfig>,
    tables: Vec<Table>,
    profiles: Vec<TableProfile>,
    candidates: Vec<CandidateColumn>,
}

impl TableRepository {
    /// Creates an empty repository.
    #[must_use]
    pub fn new(config: RepositoryConfig) -> Self {
        Self {
            config: Some(config),
            tables: Vec::new(),
            profiles: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// The repository configuration.
    #[must_use]
    pub fn config(&self) -> RepositoryConfig {
        self.config.unwrap_or_default()
    }

    /// Ingests a table: profiles it and builds sketches for every usable
    /// `(key, feature)` pair. Returns the number of candidate pairs added.
    pub fn add_table(&mut self, table: Table) -> Result<usize> {
        let config = self.config();
        let profile = TableProfile::profile(&table)?;
        let table_index = self.tables.len();

        let mut added = 0usize;
        'outer: for key in profile.key_candidates() {
            for feature in profile.feature_candidates() {
                if key.name == feature.name {
                    continue;
                }
                if added >= config.max_pairs_per_table {
                    break 'outer;
                }
                let aggregation = default_aggregation(feature.dtype);
                let sketch = config.sketch_kind.build_right(
                    &table,
                    &key.name,
                    &feature.name,
                    aggregation,
                    &config.sketch,
                )?;
                self.candidates.push(CandidateColumn {
                    table_index,
                    table_name: table.name().to_owned(),
                    key_column: key.name.clone(),
                    feature_column: feature.name.clone(),
                    aggregation,
                    sketch,
                });
                added += 1;
            }
        }

        self.profiles.push(profile);
        self.tables.push(table);
        Ok(added)
    }

    /// Number of ingested tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// The ingested tables.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The table at a given index.
    #[must_use]
    pub fn table(&self, index: usize) -> &Table {
        &self.tables[index]
    }

    /// Profiles of the ingested tables.
    #[must_use]
    pub fn profiles(&self) -> &[TableProfile] {
        &self.profiles
    }

    /// All candidate `(key, feature)` pairs.
    #[must_use]
    pub fn candidates(&self) -> &[CandidateColumn] {
        &self.candidates
    }
}

/// The default featurization function for a feature type: `AVG` for numeric
/// features, `MODE` for categorical ones (the pairing suggested in
/// Section III-B).
#[must_use]
pub fn default_aggregation(dtype: DataType) -> Aggregation {
    if dtype.is_numeric() {
        Aggregation::Avg
    } else {
        Aggregation::Mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        Table::builder("demo")
            .push_str_column("zip", vec!["a", "b", "c", "a", "b"])
            .push_str_column("borough", vec!["x", "y", "x", "x", "y"])
            .push_int_column("pop", vec![1, 2, 3, 1, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn ingestion_builds_candidate_pairs() {
        let mut repo = TableRepository::new(RepositoryConfig::default());
        let added = repo.add_table(demo_table()).unwrap();
        // Keys: zip, borough. Features: zip, borough, pop. Pairs exclude
        // key == feature: zip×{borough,pop} + borough×{zip,pop} = 4.
        assert_eq!(added, 4);
        assert_eq!(repo.num_tables(), 1);
        assert_eq!(repo.candidates().len(), 4);
        let labels: Vec<String> = repo
            .candidates()
            .iter()
            .map(CandidateColumn::label)
            .collect();
        assert!(labels.iter().any(|l| l.contains("pop (on zip)")));
    }

    #[test]
    fn aggregation_follows_feature_type() {
        assert_eq!(default_aggregation(DataType::Float), Aggregation::Avg);
        assert_eq!(default_aggregation(DataType::Int), Aggregation::Avg);
        assert_eq!(default_aggregation(DataType::Str), Aggregation::Mode);
        let mut repo = TableRepository::new(RepositoryConfig::default());
        repo.add_table(demo_table()).unwrap();
        let pop = repo
            .candidates()
            .iter()
            .find(|c| c.feature_column == "pop" && c.key_column == "zip")
            .unwrap();
        assert_eq!(pop.aggregation, Aggregation::Avg);
    }

    #[test]
    fn max_pairs_limit_is_respected() {
        let config = RepositoryConfig {
            max_pairs_per_table: 2,
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        let added = repo.add_table(demo_table()).unwrap();
        assert_eq!(added, 2);
    }

    #[test]
    fn tables_without_string_keys_produce_no_candidates() {
        let t = Table::builder("nums")
            .push_int_column("a", vec![1, 2, 3])
            .push_float_column("b", vec![0.1, 0.2, 0.3])
            .build()
            .unwrap();
        let mut repo = TableRepository::new(RepositoryConfig::default());
        assert_eq!(repo.add_table(t).unwrap(), 0);
        assert_eq!(repo.num_tables(), 1);
    }
}
