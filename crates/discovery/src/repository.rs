//! The candidate-table repository.
//!
//! Ingests external tables offline: profiles them, chooses `(key, feature)`
//! column pairs, and builds one right-side sketch per pair. This is the
//! "sketches are typically built in an offline preprocessing stage" part of
//! the paper's approach overview.
//!
//! Sketch construction is embarrassingly parallel — each `(key, feature)`
//! pair's sketch depends only on its source table — so both [`
//! TableRepository::add_table`] and the batch [`TableRepository::add_tables`]
//! build sketches with [`joinmi_par::par_map`]. The planned pair order is
//! fixed before the fan-out and results are reassembled in that order, so the
//! candidate list is bit-for-bit identical to a sequential ingest regardless
//! of `JOINMI_THREADS`.

use std::collections::BTreeSet;

use joinmi_sketch::{
    Aggregation, ColumnSketch, DistinctSketch, RightSketchBuilder, SketchConfig, SketchKind,
};
use joinmi_table::{DataType, Table, TableError};

use crate::index::{IndexDelta, JoinabilityIndex};
use crate::profile::TableProfile;
use crate::Result;

/// A `(key, feature)` pair chosen by the profiler, scheduled for sketching.
#[derive(Debug, Clone)]
struct PlannedPair {
    /// Index of the owning table within the batch being ingested.
    batch_index: usize,
    key_column: String,
    feature_column: String,
    aggregation: Aggregation,
}

/// Enumerates the sketchable `(key, feature)` pairs of one profiled table in
/// the repository's canonical order, honouring the per-table pair cap.
fn plan_pairs(profile: &TableProfile, batch_index: usize, max_pairs: usize) -> Vec<PlannedPair> {
    let mut pairs = Vec::new();
    'outer: for key in profile.key_candidates() {
        for feature in profile.feature_candidates() {
            if key.name == feature.name {
                continue;
            }
            if pairs.len() >= max_pairs {
                break 'outer;
            }
            pairs.push(PlannedPair {
                batch_index,
                key_column: key.name.clone(),
                feature_column: feature.name.clone(),
                aggregation: default_aggregation(feature.dtype),
            });
        }
    }
    pairs
}

/// Configuration of a repository.
#[derive(Debug, Clone, Copy)]
pub struct RepositoryConfig {
    /// Sketching strategy used for candidate columns.
    pub sketch_kind: SketchKind,
    /// Sketch size / seed.
    pub sketch: SketchConfig,
    /// Maximum number of `(key, feature)` pairs ingested per table (guards
    /// against very wide tables exploding the index).
    pub max_pairs_per_table: usize,
    /// Capacity (`k`) of the bounded KMV distinct sketch kept per profiled
    /// column so that distinct counts stay fresh under appends in `O(k)`
    /// space. At `k = 256` the standard error is ~6%.
    pub distinct_sketch_size: usize,
}

impl Default for RepositoryConfig {
    fn default() -> Self {
        Self {
            sketch_kind: SketchKind::Tupsk,
            sketch: SketchConfig::new(1024, 0),
            max_pairs_per_table: 64,
            distinct_sketch_size: 256,
        }
    }
}

/// One ingested candidate: a `(join key, feature)` column pair of a table,
/// its sketch, and the aggregation that will be used when augmenting.
#[derive(Debug, Clone)]
pub struct CandidateColumn {
    /// Index of the owning table inside the repository.
    pub table_index: usize,
    /// Owning table name.
    pub table_name: String,
    /// Join-key column name.
    pub key_column: String,
    /// Feature column name.
    pub feature_column: String,
    /// Featurization function used for repeated keys.
    pub aggregation: Aggregation,
    /// The right-side sketch of the pair.
    pub sketch: ColumnSketch,
}

impl CandidateColumn {
    /// A human-readable identifier `table.feature (on key)`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}.{} (on {})",
            self.table_name, self.feature_column, self.key_column
        )
    }
}

/// A repository of candidate tables with pre-built sketches.
///
/// The joinability index over candidate key digests is maintained
/// incrementally during ingest, so queries never rebuild it — and
/// [`TableRepository::save`](crate::persist) persists it alongside the
/// sketches for the offline-ingest → online-query split.
///
/// A repository loaded from disk is **sketch-only**: it holds config,
/// profiles, the index, and the candidate sketches, but not the raw tables
/// (the durable artifact is exactly what queries need). Sketch-only
/// repositories answer queries bit-identically to the in-memory original;
/// further ingest and full-join materialization are rejected with
/// [`TableError::Unsupported`].
#[derive(Debug, Default, Clone)]
pub struct TableRepository {
    config: Option<RepositoryConfig>,
    tables: Vec<Table>,
    profiles: Vec<TableProfile>,
    candidates: Vec<CandidateColumn>,
    index: JoinabilityIndex,
    /// `true` for repositories loaded from disk (no raw tables).
    sketch_only: bool,
    /// One appendable sketch builder per candidate. `None` only for
    /// candidates loaded from a pre-append-format (v1) file, which cannot
    /// absorb further rows — or after [`TableRepository::seal`] dropped them.
    builders: Vec<Option<RightSketchBuilder>>,
    /// One bounded distinct sketch per profiled column (`distincts[t][c]`
    /// parallels `profiles[t].columns[c]`), keeping feature-column distinct
    /// counts fresh under appends. `None` only for columns loaded from a
    /// pre-v3 file, whose counts stay at their last fully-profiled value.
    distincts: Vec<Vec<Option<DistinctSketch>>>,
    /// `true` once the repository was frozen by [`TableRepository::seal`]
    /// (directly or via a seal-mode compaction): all ingest is rejected with
    /// [`TableError::Sealed`] and builder state is dropped.
    sealed: bool,
    /// Changes accumulated since the repository was last persisted, consumed
    /// by the on-disk append path in [`crate::persist`].
    pending: PendingAppend,
}

/// The not-yet-persisted tail of an appendable repository: which candidates
/// changed and the ordered index deltas their updates produced.
#[derive(Debug, Default, Clone)]
pub(crate) struct PendingAppend {
    /// Candidate indices whose sketch or builder state changed.
    pub dirty: BTreeSet<usize>,
    /// Index deltas in the order they were produced (order matters: each
    /// delta is relative to the state the previous one left behind).
    pub deltas: Vec<IndexDelta>,
}

impl PendingAppend {
    pub(crate) fn is_empty(&self) -> bool {
        self.dirty.is_empty() && self.deltas.is_empty()
    }
}

impl TableRepository {
    /// Creates an empty repository.
    #[must_use]
    pub fn new(config: RepositoryConfig) -> Self {
        Self {
            config: Some(config),
            ..Self::default()
        }
    }

    /// Reassembles a sketch-only repository from persisted parts (the loader
    /// in [`crate::persist`] is the only caller).
    pub(crate) fn from_loaded_parts(
        config: RepositoryConfig,
        profiles: Vec<TableProfile>,
        candidates: Vec<CandidateColumn>,
        index: JoinabilityIndex,
        mut builders: Vec<Option<RightSketchBuilder>>,
        distincts: Vec<Vec<Option<DistinctSketch>>>,
        sealed: bool,
    ) -> Self {
        // The persisted sketch is the canonical finished form of the
        // persisted builder state: prime the finish cache from it so the
        // first append after a reload is O(changed), not O(sketch).
        for (builder, candidate) in builders.iter_mut().zip(&candidates) {
            if let Some(builder) = builder {
                builder.prime_cache(&candidate.sketch);
            }
        }
        Self {
            config: Some(config),
            tables: Vec::new(),
            profiles,
            candidates,
            index,
            sketch_only: true,
            builders,
            distincts,
            sealed,
            pending: PendingAppend::default(),
        }
    }

    /// The repository configuration.
    #[must_use]
    pub fn config(&self) -> RepositoryConfig {
        self.config.unwrap_or_default()
    }

    /// Ingests a table: profiles it and builds sketches for every usable
    /// `(key, feature)` pair — in parallel across pairs — and returns the
    /// number of candidate pairs added.
    ///
    /// The candidate order (and every sketch) is identical to a sequential
    /// ingest; on error no candidates of this table are added.
    pub fn add_table(&mut self, table: Table) -> Result<usize> {
        self.add_tables(vec![table])
    }

    /// Ingests a batch of tables, building all sketches of the whole batch in
    /// one parallel fan-out (the offline-preprocessing bulk path). Returns
    /// the total number of candidate pairs added across the batch.
    ///
    /// Equivalent to calling [`Self::add_table`] for each table in order —
    /// same profiles, same candidates, same sketches, bit for bit — but with
    /// a single work queue spanning the batch, so small and wide tables load-
    /// balance against each other. On error the repository is left unchanged.
    pub fn add_tables(&mut self, tables: Vec<Table>) -> Result<usize> {
        if self.sealed {
            return Err(TableError::Sealed(
                "cannot ingest tables into a sealed repository".to_owned(),
            ));
        }
        if self.sketch_only {
            return Err(TableError::Unsupported(
                "cannot ingest new tables into a sketch-only repository loaded from disk; \
                 rows of already-ingested tables can be added with `append_rows`"
                    .to_owned(),
            ));
        }
        let config = self.config();

        let mut profiles = Vec::with_capacity(tables.len());
        let mut distincts = Vec::with_capacity(tables.len());
        let mut planned: Vec<PlannedPair> = Vec::new();
        for (batch_index, table) in tables.iter().enumerate() {
            let profile = TableProfile::profile(table)?;
            distincts.push(profile_distinct_sketches(&config, table, &profile)?);
            planned.extend(plan_pairs(
                &profile,
                batch_index,
                config.max_pairs_per_table,
            ));
            profiles.push(profile);
        }

        // The parallel fan-out: one appendable sketch builder per planned
        // pair. `finish()` is pinned bit-for-bit against the one-shot
        // `SketchKind::build_right`, so candidates are identical to the
        // pre-incremental ingest path.
        let built: Vec<Result<(RightSketchBuilder, ColumnSketch)>> =
            joinmi_par::par_map(&planned, |pair| {
                let mut builder = RightSketchBuilder::start(
                    config.sketch_kind,
                    &tables[pair.batch_index],
                    &pair.key_column,
                    &pair.feature_column,
                    pair.aggregation,
                    &config.sketch,
                )?;
                // `finish_cached` warms the O(changed) refresh cache for
                // later appends while producing the same bits as `finish`.
                let sketch = builder.finish_cached();
                Ok((builder, sketch))
            });

        let first_table_index = self.tables.len();
        let mut candidates = Vec::with_capacity(planned.len());
        let mut builders = Vec::with_capacity(planned.len());
        for (pair, result) in planned.into_iter().zip(built) {
            let (builder, sketch) = result?;
            builders.push(Some(builder));
            candidates.push(CandidateColumn {
                table_index: first_table_index + pair.batch_index,
                table_name: tables[pair.batch_index].name().to_owned(),
                key_column: pair.key_column,
                feature_column: pair.feature_column,
                aggregation: pair.aggregation,
                sketch,
            });
        }

        let added = candidates.len();
        let first_candidate_index = self.candidates.len();
        for (offset, candidate) in candidates.iter().enumerate() {
            self.index
                .insert(first_candidate_index + offset, &candidate.sketch);
        }
        self.candidates.extend(candidates);
        self.builders.extend(builders);
        self.profiles.extend(profiles);
        self.distincts.extend(distincts);
        self.tables.extend(tables);
        Ok(added)
    }

    /// Appends a chunk of rows to an already-ingested table (matched by the
    /// chunk's table name; the schema must equal the ingested table's).
    /// Returns the number of appended rows — the chunk's full row count, the
    /// same accounting as the raw table and profiles (rows with a NULL join
    /// key are stored but, as at build time, never sampled into sketches).
    ///
    /// Works on in-memory repositories *and* on repositories loaded from an
    /// appendable (v2) file — this is the operation that used to be rejected
    /// outright for loaded repositories. Every candidate sketch of the table
    /// is updated in `O(changed)` via its [`RightSketchBuilder`] (the KMV
    /// threshold skips rows of non-qualifying keys), the joinability index
    /// is patched incrementally, and the resulting state is bit-for-bit
    /// identical to a from-scratch ingest of the extended table. On error
    /// (unknown table, schema mismatch, non-appendable candidate) the
    /// repository is left unchanged.
    ///
    /// Profile bookkeeping: table and per-column row/NULL counts are exact,
    /// join-key distinct counts come from the builders' seen-key sets, and
    /// every other column's distinct count is maintained through its bounded
    /// KMV [`DistinctSketch`] — exact while under
    /// [`RepositoryConfig::distinct_sketch_size`] distincts, then a fresh
    /// approximation (the sketch replaces the pre-v3 behaviour of freezing
    /// those counts at their base-ingest values).
    pub fn append_rows(&mut self, chunk: &Table) -> Result<usize> {
        self.append_tables(std::slice::from_ref(chunk))
    }

    /// Appends several row chunks (see [`Self::append_rows`]), validating all
    /// of them before mutating anything. Returns the total appended rows.
    pub fn append_tables(&mut self, chunks: &[Table]) -> Result<usize> {
        if self.sealed {
            return Err(TableError::Sealed(
                "cannot append rows to a sealed repository".to_owned(),
            ));
        }
        // Validation pass: resolve every chunk to a table and check schemas
        // and builder availability, so the mutation pass cannot fail midway.
        let mut resolved = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let table_index = self
                .profiles
                .iter()
                .position(|p| p.table == chunk.name())
                .ok_or_else(|| {
                    TableError::Unsupported(format!(
                        "cannot append rows: no ingested table named `{}`",
                        chunk.name()
                    ))
                })?;
            let profile = &self.profiles[table_index];
            let fields = chunk.schema().fields();
            if fields.len() != profile.columns.len()
                || fields
                    .iter()
                    .zip(&profile.columns)
                    .any(|(field, column)| field.name != column.name || field.dtype != column.dtype)
            {
                return Err(TableError::Unsupported(format!(
                    "append chunk schema does not match ingested table `{}`",
                    chunk.name()
                )));
            }
            for (candidate_index, candidate) in self.candidates.iter().enumerate() {
                if candidate.table_index != table_index {
                    continue;
                }
                if self.builders[candidate_index].is_none() {
                    return Err(TableError::Unsupported(format!(
                        "candidate `{}` was loaded from a pre-append repository file and \
                         cannot absorb new rows; re-ingest to upgrade it",
                        candidate.label()
                    )));
                }
            }
            resolved.push((table_index, chunk));
        }

        // Mutation pass.
        let mut appended_total = 0usize;
        for (table_index, chunk) in resolved {
            for candidate_index in 0..self.candidates.len() {
                if self.candidates[candidate_index].table_index != table_index {
                    continue;
                }
                let builder = self.builders[candidate_index]
                    .as_mut()
                    .expect("validated above");
                let diff = builder.append_table_diff(chunk)?;
                let new_sketch = builder.finish_cached();
                let delta = if diff.exact_membership {
                    // KMV kinds report exactly which keys entered/left the
                    // selection, so the index is patched in O(changed).
                    let size = self.builders[candidate_index]
                        .as_ref()
                        .expect("validated above")
                        .selection_len();
                    self.index.apply_membership_update(
                        candidate_index,
                        &diff.removed,
                        &diff.added,
                        size,
                    )
                } else {
                    // INDSK's Bernoulli selection is only determined at
                    // finish time: diff the finished sketches.
                    self.index.update(
                        candidate_index,
                        &self.candidates[candidate_index].sketch,
                        &new_sketch,
                    )
                };
                self.candidates[candidate_index].sketch = new_sketch;
                self.pending.dirty.insert(candidate_index);
                if !delta.is_empty() {
                    self.pending.deltas.push(delta);
                }
            }
            appended_total += chunk.num_rows();

            // Exact row/NULL bookkeeping; distinct counts route through the
            // bounded sketches, then key columns are overridden with the
            // builders' exact seen-key counts (see `append_rows` docs).
            let hasher = self.config().sketch.key_hasher();
            let profile = &mut self.profiles[table_index];
            profile.rows += chunk.num_rows();
            for (column_index, column) in profile.columns.iter_mut().enumerate() {
                column.rows += chunk.num_rows();
                if let Ok(col) = chunk.column(&column.name) {
                    column.nulls += col.null_count();
                    if let Some(sketch) = self.distincts[table_index][column_index].as_mut() {
                        for value in col.iter() {
                            if !value.is_null() {
                                sketch.observe(value.key_hash(&hasher).raw());
                            }
                        }
                        column.distinct = sketch.estimate();
                    }
                }
            }
            for (candidate_index, candidate) in self.candidates.iter().enumerate() {
                if candidate.table_index != table_index {
                    continue;
                }
                if let Some(builder) = &self.builders[candidate_index] {
                    if let Some(column) = self.profiles[table_index]
                        .columns
                        .iter_mut()
                        .find(|c| c.name == candidate.key_column)
                    {
                        column.distinct = builder.distinct_keys();
                    }
                }
            }

            // Keep the raw table in sync when we still hold it, so
            // materialization sees the appended rows too.
            if let Some(table) = self.tables.get_mut(table_index) {
                table.extend_rows(chunk)?;
            }
        }
        Ok(appended_total)
    }

    /// Returns `true` when every candidate carries the appendable builder
    /// state required by [`Self::append_rows`] (always true for in-memory
    /// ingests and v2+ files; false for repositories loaded from v1 files
    /// and for sealed repositories).
    #[must_use]
    pub fn is_appendable(&self) -> bool {
        !self.sealed && self.builders.iter().all(Option::is_some)
    }

    /// Freezes the repository: drops all incremental builder state, discards
    /// the unpersisted append log, and rejects every further
    /// [`Self::add_table`] / [`Self::append_rows`] with
    /// [`TableError::Sealed`]. Saving a sealed repository produces a lean
    /// flat file without `CANDIDATE_STATE` sections — the pre-append read
    /// profile. Irreversible (re-ingest from source data to unfreeze).
    pub fn seal(&mut self) {
        self.sealed = true;
        for builder in &mut self.builders {
            *builder = None;
        }
        self.pending = PendingAppend::default();
    }

    /// Returns `true` once the repository was frozen by [`Self::seal`].
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Per-table, per-column bounded distinct sketches, parallel to
    /// [`Self::profiles`] (persistence internals).
    pub(crate) fn distinct_sketches(&self) -> &[Vec<Option<DistinctSketch>>] {
        &self.distincts
    }

    /// Per-candidate builders, parallel to [`Self::candidates`] (persistence
    /// internals).
    pub(crate) fn builders(&self) -> &[Option<RightSketchBuilder>] {
        &self.builders
    }

    /// The unpersisted append log (persistence internals).
    pub(crate) fn pending(&self) -> &PendingAppend {
        &self.pending
    }

    /// Clears the append log after it has been persisted (or folded into a
    /// full rewrite by `save`).
    pub(crate) fn clear_pending(&mut self) {
        self.pending = PendingAppend::default();
    }

    /// Number of ingested tables (counted from the profiles, which are
    /// present whether or not the raw tables are — see
    /// [sketch-only repositories](Self#method.is_sketch_only)).
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.profiles.len()
    }

    /// The raw ingested tables. Empty for a sketch-only repository loaded
    /// from disk.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The table at a given index.
    ///
    /// # Panics
    /// Panics on a sketch-only repository (no raw tables); use
    /// [`Self::raw_table`] to handle that case.
    #[must_use]
    pub fn table(&self, index: usize) -> &Table {
        &self.tables[index]
    }

    /// The raw table at a given index, or `None` when the repository is
    /// sketch-only (loaded from disk).
    #[must_use]
    pub fn raw_table(&self, index: usize) -> Option<&Table> {
        self.tables.get(index)
    }

    /// Returns `true` when the repository was loaded from disk and holds
    /// sketches, profiles, and the index but no raw tables.
    #[must_use]
    pub fn is_sketch_only(&self) -> bool {
        self.sketch_only
    }

    /// Profiles of the ingested tables.
    #[must_use]
    pub fn profiles(&self) -> &[TableProfile] {
        &self.profiles
    }

    /// All candidate `(key, feature)` pairs.
    #[must_use]
    pub fn candidates(&self) -> &[CandidateColumn] {
        &self.candidates
    }

    /// The joinability index over the candidates' sampled key digests,
    /// maintained incrementally during ingest.
    #[must_use]
    pub fn joinability(&self) -> &JoinabilityIndex {
        &self.index
    }
}

/// Anything that can answer relationship queries: a set of candidate sketches
/// plus a joinability index over their key digests.
///
/// Implemented by the in-memory [`TableRepository`] and by the read-only
/// [`RepositorySnapshot`](crate::persist::RepositorySnapshot) loaded from
/// disk, so [`RelationshipQuery::execute`](crate::RelationshipQuery::execute)
/// runs unchanged — and bit-identically — against either.
pub trait CandidateSource {
    /// Number of candidates.
    fn candidate_count(&self) -> usize;

    /// The candidate at `index` (must be `< candidate_count()`).
    fn candidate(&self, index: usize) -> &CandidateColumn;

    /// The joinability index over all candidates.
    fn joinability(&self) -> &JoinabilityIndex;

    /// An upper bound on the number of distinct values of the candidate's
    /// key column, when the source can prove one — i.e. while the column's
    /// bounded [`DistinctSketch`] is still exact (under capacity). `None`
    /// means "no bound available"; callers must treat it as unbounded.
    fn key_distinct_bound(&self, _index: usize) -> Option<usize> {
        None
    }
}

/// Shared [`CandidateSource::key_distinct_bound`] lookup: resolve the
/// candidate's key column inside its table profile and read the parallel
/// distinct sketch, which is exact (and therefore a sound bound) until it
/// reaches capacity.
pub(crate) fn key_distinct_bound_from(
    candidate: &CandidateColumn,
    profiles: &[TableProfile],
    distincts: &[Vec<Option<DistinctSketch>>],
) -> Option<usize> {
    let profile = profiles.get(candidate.table_index)?;
    let position = profile
        .columns
        .iter()
        .position(|c| c.name == candidate.key_column)?;
    let sketch = distincts
        .get(candidate.table_index)?
        .get(position)?
        .as_ref()?;
    (!sketch.is_full()).then(|| sketch.estimate())
}

impl CandidateSource for TableRepository {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn candidate(&self, index: usize) -> &CandidateColumn {
        &self.candidates[index]
    }

    fn joinability(&self) -> &JoinabilityIndex {
        &self.index
    }

    fn key_distinct_bound(&self, index: usize) -> Option<usize> {
        key_distinct_bound_from(&self.candidates[index], &self.profiles, &self.distincts)
    }
}

/// Builds one bounded distinct sketch per column of a freshly profiled table,
/// seeded with every non-NULL value the base ingest saw — so a later
/// `append_rows` continues from exactly the state a bulk ingest of the
/// concatenated rows would have produced (the sketch state is a pure function
/// of the observed value set).
fn profile_distinct_sketches(
    config: &RepositoryConfig,
    table: &Table,
    profile: &TableProfile,
) -> Result<Vec<Option<DistinctSketch>>> {
    let hasher = config.sketch.key_hasher();
    let mut sketches = Vec::with_capacity(profile.columns.len());
    for column in &profile.columns {
        let col = table.column(&column.name)?;
        let mut sketch = DistinctSketch::new(config.distinct_sketch_size);
        for value in col.iter() {
            if !value.is_null() {
                sketch.observe(value.key_hash(&hasher).raw());
            }
        }
        sketches.push(Some(sketch));
    }
    Ok(sketches)
}

/// The default featurization function for a feature type: `AVG` for numeric
/// features, `MODE` for categorical ones (the pairing suggested in
/// Section III-B).
#[must_use]
pub fn default_aggregation(dtype: DataType) -> Aggregation {
    if dtype.is_numeric() {
        Aggregation::Avg
    } else {
        Aggregation::Mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        Table::builder("demo")
            .push_str_column("zip", vec!["a", "b", "c", "a", "b"])
            .push_str_column("borough", vec!["x", "y", "x", "x", "y"])
            .push_int_column("pop", vec![1, 2, 3, 1, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn ingestion_builds_candidate_pairs() {
        let mut repo = TableRepository::new(RepositoryConfig::default());
        let added = repo.add_table(demo_table()).unwrap();
        // Keys: zip, borough. Features: zip, borough, pop. Pairs exclude
        // key == feature: zip×{borough,pop} + borough×{zip,pop} = 4.
        assert_eq!(added, 4);
        assert_eq!(repo.num_tables(), 1);
        assert_eq!(repo.candidates().len(), 4);
        let labels: Vec<String> = repo
            .candidates()
            .iter()
            .map(CandidateColumn::label)
            .collect();
        assert!(labels.iter().any(|l| l.contains("pop (on zip)")));
    }

    #[test]
    fn aggregation_follows_feature_type() {
        assert_eq!(default_aggregation(DataType::Float), Aggregation::Avg);
        assert_eq!(default_aggregation(DataType::Int), Aggregation::Avg);
        assert_eq!(default_aggregation(DataType::Str), Aggregation::Mode);
        let mut repo = TableRepository::new(RepositoryConfig::default());
        repo.add_table(demo_table()).unwrap();
        let pop = repo
            .candidates()
            .iter()
            .find(|c| c.feature_column == "pop" && c.key_column == "zip")
            .unwrap();
        assert_eq!(pop.aggregation, Aggregation::Avg);
    }

    #[test]
    fn max_pairs_limit_is_respected() {
        let config = RepositoryConfig {
            max_pairs_per_table: 2,
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        let added = repo.add_table(demo_table()).unwrap();
        assert_eq!(added, 2);
    }

    #[test]
    fn batch_ingest_is_bitwise_identical_to_sequential_single_threaded() {
        let tables: Vec<Table> = (0..4)
            .map(|t| {
                Table::builder(format!("t{t}"))
                    .push_str_column("zip", vec!["a", "b", "c", "a", "b"])
                    .push_str_column("borough", vec!["x", "y", "x", "x", "y"])
                    .push_int_column("pop", (0..5).map(|i| i + t).collect::<Vec<i64>>())
                    .build()
                    .unwrap()
            })
            .collect();

        let mut sequential = TableRepository::new(RepositoryConfig::default());
        joinmi_par::with_threads(1, || {
            for table in tables.clone() {
                sequential.add_table(table).unwrap();
            }
        });

        let mut batched = TableRepository::new(RepositoryConfig::default());
        let added = joinmi_par::with_threads(4, || batched.add_tables(tables).unwrap());

        assert_eq!(added, sequential.candidates().len());
        assert_eq!(batched.num_tables(), sequential.num_tables());
        for (a, b) in batched
            .candidates()
            .iter()
            .zip(sequential.candidates().iter())
        {
            assert_eq!(a.table_index, b.table_index);
            assert_eq!(a.label(), b.label());
            assert_eq!(a.aggregation, b.aggregation);
            assert_eq!(a.sketch.rows(), b.sketch.rows());
        }
    }

    #[test]
    fn tables_without_string_keys_produce_no_candidates() {
        let t = Table::builder("nums")
            .push_int_column("a", vec![1, 2, 3])
            .push_float_column("b", vec![0.1, 0.2, 0.3])
            .build()
            .unwrap();
        let mut repo = TableRepository::new(RepositoryConfig::default());
        assert_eq!(repo.add_table(t).unwrap(), 0);
        assert_eq!(repo.num_tables(), 1);
    }
}
