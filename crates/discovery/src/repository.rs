//! The candidate-table repository.
//!
//! Ingests external tables offline: profiles them, chooses `(key, feature)`
//! column pairs, and builds one right-side sketch per pair. This is the
//! "sketches are typically built in an offline preprocessing stage" part of
//! the paper's approach overview.
//!
//! Sketch construction is embarrassingly parallel — each `(key, feature)`
//! pair's sketch depends only on its source table — so both [`
//! TableRepository::add_table`] and the batch [`TableRepository::add_tables`]
//! build sketches with [`joinmi_par::par_map`]. The planned pair order is
//! fixed before the fan-out and results are reassembled in that order, so the
//! candidate list is bit-for-bit identical to a sequential ingest regardless
//! of `JOINMI_THREADS`.

use joinmi_sketch::{Aggregation, ColumnSketch, SketchConfig, SketchKind};
use joinmi_table::{DataType, Table, TableError};

use crate::index::JoinabilityIndex;
use crate::profile::TableProfile;
use crate::Result;

/// A `(key, feature)` pair chosen by the profiler, scheduled for sketching.
#[derive(Debug, Clone)]
struct PlannedPair {
    /// Index of the owning table within the batch being ingested.
    batch_index: usize,
    key_column: String,
    feature_column: String,
    aggregation: Aggregation,
}

/// Enumerates the sketchable `(key, feature)` pairs of one profiled table in
/// the repository's canonical order, honouring the per-table pair cap.
fn plan_pairs(profile: &TableProfile, batch_index: usize, max_pairs: usize) -> Vec<PlannedPair> {
    let mut pairs = Vec::new();
    'outer: for key in profile.key_candidates() {
        for feature in profile.feature_candidates() {
            if key.name == feature.name {
                continue;
            }
            if pairs.len() >= max_pairs {
                break 'outer;
            }
            pairs.push(PlannedPair {
                batch_index,
                key_column: key.name.clone(),
                feature_column: feature.name.clone(),
                aggregation: default_aggregation(feature.dtype),
            });
        }
    }
    pairs
}

/// Configuration of a repository.
#[derive(Debug, Clone, Copy)]
pub struct RepositoryConfig {
    /// Sketching strategy used for candidate columns.
    pub sketch_kind: SketchKind,
    /// Sketch size / seed.
    pub sketch: SketchConfig,
    /// Maximum number of `(key, feature)` pairs ingested per table (guards
    /// against very wide tables exploding the index).
    pub max_pairs_per_table: usize,
}

impl Default for RepositoryConfig {
    fn default() -> Self {
        Self {
            sketch_kind: SketchKind::Tupsk,
            sketch: SketchConfig::new(1024, 0),
            max_pairs_per_table: 64,
        }
    }
}

/// One ingested candidate: a `(join key, feature)` column pair of a table,
/// its sketch, and the aggregation that will be used when augmenting.
#[derive(Debug, Clone)]
pub struct CandidateColumn {
    /// Index of the owning table inside the repository.
    pub table_index: usize,
    /// Owning table name.
    pub table_name: String,
    /// Join-key column name.
    pub key_column: String,
    /// Feature column name.
    pub feature_column: String,
    /// Featurization function used for repeated keys.
    pub aggregation: Aggregation,
    /// The right-side sketch of the pair.
    pub sketch: ColumnSketch,
}

impl CandidateColumn {
    /// A human-readable identifier `table.feature (on key)`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}.{} (on {})",
            self.table_name, self.feature_column, self.key_column
        )
    }
}

/// A repository of candidate tables with pre-built sketches.
///
/// The joinability index over candidate key digests is maintained
/// incrementally during ingest, so queries never rebuild it — and
/// [`TableRepository::save`](crate::persist) persists it alongside the
/// sketches for the offline-ingest → online-query split.
///
/// A repository loaded from disk is **sketch-only**: it holds config,
/// profiles, the index, and the candidate sketches, but not the raw tables
/// (the durable artifact is exactly what queries need). Sketch-only
/// repositories answer queries bit-identically to the in-memory original;
/// further ingest and full-join materialization are rejected with
/// [`TableError::Unsupported`].
#[derive(Debug, Default)]
pub struct TableRepository {
    config: Option<RepositoryConfig>,
    tables: Vec<Table>,
    profiles: Vec<TableProfile>,
    candidates: Vec<CandidateColumn>,
    index: JoinabilityIndex,
    /// `true` for repositories loaded from disk (no raw tables).
    sketch_only: bool,
}

impl TableRepository {
    /// Creates an empty repository.
    #[must_use]
    pub fn new(config: RepositoryConfig) -> Self {
        Self {
            config: Some(config),
            ..Self::default()
        }
    }

    /// Reassembles a sketch-only repository from persisted parts (the loader
    /// in [`crate::persist`] is the only caller).
    pub(crate) fn from_loaded_parts(
        config: RepositoryConfig,
        profiles: Vec<TableProfile>,
        candidates: Vec<CandidateColumn>,
        index: JoinabilityIndex,
    ) -> Self {
        Self {
            config: Some(config),
            tables: Vec::new(),
            profiles,
            candidates,
            index,
            sketch_only: true,
        }
    }

    /// The repository configuration.
    #[must_use]
    pub fn config(&self) -> RepositoryConfig {
        self.config.unwrap_or_default()
    }

    /// Ingests a table: profiles it and builds sketches for every usable
    /// `(key, feature)` pair — in parallel across pairs — and returns the
    /// number of candidate pairs added.
    ///
    /// The candidate order (and every sketch) is identical to a sequential
    /// ingest; on error no candidates of this table are added.
    pub fn add_table(&mut self, table: Table) -> Result<usize> {
        self.add_tables(vec![table])
    }

    /// Ingests a batch of tables, building all sketches of the whole batch in
    /// one parallel fan-out (the offline-preprocessing bulk path). Returns
    /// the total number of candidate pairs added across the batch.
    ///
    /// Equivalent to calling [`Self::add_table`] for each table in order —
    /// same profiles, same candidates, same sketches, bit for bit — but with
    /// a single work queue spanning the batch, so small and wide tables load-
    /// balance against each other. On error the repository is left unchanged.
    pub fn add_tables(&mut self, tables: Vec<Table>) -> Result<usize> {
        if self.sketch_only {
            return Err(TableError::Unsupported(
                "cannot ingest into a sketch-only repository loaded from disk".to_owned(),
            ));
        }
        let config = self.config();

        let mut profiles = Vec::with_capacity(tables.len());
        let mut planned: Vec<PlannedPair> = Vec::new();
        for (batch_index, table) in tables.iter().enumerate() {
            let profile = TableProfile::profile(table)?;
            planned.extend(plan_pairs(
                &profile,
                batch_index,
                config.max_pairs_per_table,
            ));
            profiles.push(profile);
        }

        // The parallel fan-out: one right-side sketch per planned pair.
        let sketches: Vec<Result<ColumnSketch>> = joinmi_par::par_map(&planned, |pair| {
            config.sketch_kind.build_right(
                &tables[pair.batch_index],
                &pair.key_column,
                &pair.feature_column,
                pair.aggregation,
                &config.sketch,
            )
        });

        let first_table_index = self.tables.len();
        let mut candidates = Vec::with_capacity(planned.len());
        for (pair, sketch) in planned.into_iter().zip(sketches) {
            let sketch = sketch?;
            candidates.push(CandidateColumn {
                table_index: first_table_index + pair.batch_index,
                table_name: tables[pair.batch_index].name().to_owned(),
                key_column: pair.key_column,
                feature_column: pair.feature_column,
                aggregation: pair.aggregation,
                sketch,
            });
        }

        let added = candidates.len();
        let first_candidate_index = self.candidates.len();
        for (offset, candidate) in candidates.iter().enumerate() {
            self.index
                .insert(first_candidate_index + offset, &candidate.sketch);
        }
        self.candidates.extend(candidates);
        self.profiles.extend(profiles);
        self.tables.extend(tables);
        Ok(added)
    }

    /// Number of ingested tables (counted from the profiles, which are
    /// present whether or not the raw tables are — see
    /// [sketch-only repositories](Self#method.is_sketch_only)).
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.profiles.len()
    }

    /// The raw ingested tables. Empty for a sketch-only repository loaded
    /// from disk.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The table at a given index.
    ///
    /// # Panics
    /// Panics on a sketch-only repository (no raw tables); use
    /// [`Self::raw_table`] to handle that case.
    #[must_use]
    pub fn table(&self, index: usize) -> &Table {
        &self.tables[index]
    }

    /// The raw table at a given index, or `None` when the repository is
    /// sketch-only (loaded from disk).
    #[must_use]
    pub fn raw_table(&self, index: usize) -> Option<&Table> {
        self.tables.get(index)
    }

    /// Returns `true` when the repository was loaded from disk and holds
    /// sketches, profiles, and the index but no raw tables.
    #[must_use]
    pub fn is_sketch_only(&self) -> bool {
        self.sketch_only
    }

    /// Profiles of the ingested tables.
    #[must_use]
    pub fn profiles(&self) -> &[TableProfile] {
        &self.profiles
    }

    /// All candidate `(key, feature)` pairs.
    #[must_use]
    pub fn candidates(&self) -> &[CandidateColumn] {
        &self.candidates
    }

    /// The joinability index over the candidates' sampled key digests,
    /// maintained incrementally during ingest.
    #[must_use]
    pub fn joinability(&self) -> &JoinabilityIndex {
        &self.index
    }
}

/// Anything that can answer relationship queries: a set of candidate sketches
/// plus a joinability index over their key digests.
///
/// Implemented by the in-memory [`TableRepository`] and by the read-only
/// [`RepositorySnapshot`](crate::persist::RepositorySnapshot) loaded from
/// disk, so [`RelationshipQuery::execute`](crate::RelationshipQuery::execute)
/// runs unchanged — and bit-identically — against either.
pub trait CandidateSource {
    /// Number of candidates.
    fn candidate_count(&self) -> usize;

    /// The candidate at `index` (must be `< candidate_count()`).
    fn candidate(&self, index: usize) -> &CandidateColumn;

    /// The joinability index over all candidates.
    fn joinability(&self) -> &JoinabilityIndex;
}

impl CandidateSource for TableRepository {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn candidate(&self, index: usize) -> &CandidateColumn {
        &self.candidates[index]
    }

    fn joinability(&self) -> &JoinabilityIndex {
        &self.index
    }
}

/// The default featurization function for a feature type: `AVG` for numeric
/// features, `MODE` for categorical ones (the pairing suggested in
/// Section III-B).
#[must_use]
pub fn default_aggregation(dtype: DataType) -> Aggregation {
    if dtype.is_numeric() {
        Aggregation::Avg
    } else {
        Aggregation::Mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        Table::builder("demo")
            .push_str_column("zip", vec!["a", "b", "c", "a", "b"])
            .push_str_column("borough", vec!["x", "y", "x", "x", "y"])
            .push_int_column("pop", vec![1, 2, 3, 1, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn ingestion_builds_candidate_pairs() {
        let mut repo = TableRepository::new(RepositoryConfig::default());
        let added = repo.add_table(demo_table()).unwrap();
        // Keys: zip, borough. Features: zip, borough, pop. Pairs exclude
        // key == feature: zip×{borough,pop} + borough×{zip,pop} = 4.
        assert_eq!(added, 4);
        assert_eq!(repo.num_tables(), 1);
        assert_eq!(repo.candidates().len(), 4);
        let labels: Vec<String> = repo
            .candidates()
            .iter()
            .map(CandidateColumn::label)
            .collect();
        assert!(labels.iter().any(|l| l.contains("pop (on zip)")));
    }

    #[test]
    fn aggregation_follows_feature_type() {
        assert_eq!(default_aggregation(DataType::Float), Aggregation::Avg);
        assert_eq!(default_aggregation(DataType::Int), Aggregation::Avg);
        assert_eq!(default_aggregation(DataType::Str), Aggregation::Mode);
        let mut repo = TableRepository::new(RepositoryConfig::default());
        repo.add_table(demo_table()).unwrap();
        let pop = repo
            .candidates()
            .iter()
            .find(|c| c.feature_column == "pop" && c.key_column == "zip")
            .unwrap();
        assert_eq!(pop.aggregation, Aggregation::Avg);
    }

    #[test]
    fn max_pairs_limit_is_respected() {
        let config = RepositoryConfig {
            max_pairs_per_table: 2,
            ..RepositoryConfig::default()
        };
        let mut repo = TableRepository::new(config);
        let added = repo.add_table(demo_table()).unwrap();
        assert_eq!(added, 2);
    }

    #[test]
    fn batch_ingest_is_bitwise_identical_to_sequential_single_threaded() {
        let tables: Vec<Table> = (0..4)
            .map(|t| {
                Table::builder(format!("t{t}"))
                    .push_str_column("zip", vec!["a", "b", "c", "a", "b"])
                    .push_str_column("borough", vec!["x", "y", "x", "x", "y"])
                    .push_int_column("pop", (0..5).map(|i| i + t).collect::<Vec<i64>>())
                    .build()
                    .unwrap()
            })
            .collect();

        let mut sequential = TableRepository::new(RepositoryConfig::default());
        joinmi_par::with_threads(1, || {
            for table in tables.clone() {
                sequential.add_table(table).unwrap();
            }
        });

        let mut batched = TableRepository::new(RepositoryConfig::default());
        let added = joinmi_par::with_threads(4, || batched.add_tables(tables).unwrap());

        assert_eq!(added, sequential.candidates().len());
        assert_eq!(batched.num_tables(), sequential.num_tables());
        for (a, b) in batched
            .candidates()
            .iter()
            .zip(sequential.candidates().iter())
        {
            assert_eq!(a.table_index, b.table_index);
            assert_eq!(a.label(), b.label());
            assert_eq!(a.aggregation, b.aggregation);
            assert_eq!(a.sketch.rows(), b.sketch.rows());
        }
    }

    #[test]
    fn tables_without_string_keys_produce_no_candidates() {
        let t = Table::builder("nums")
            .push_int_column("a", vec![1, 2, 3])
            .push_float_column("b", vec![0.1, 0.2, 0.3])
            .build()
            .unwrap();
        let mut repo = TableRepository::new(RepositoryConfig::default());
        assert_eq!(repo.add_table(t).unwrap(), 0);
        assert_eq!(repo.num_tables(), 1);
    }
}
