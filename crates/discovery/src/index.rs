//! Joinability index.
//!
//! Before estimating MI, the discovery system prunes candidates whose join
//! key does not overlap the query key at all (the role played by inverted
//! indexes / LSH ensembles in the systems the paper cites). Because every
//! candidate already carries a KMV-style sketch of its key column, the index
//! simply keeps, per candidate, the set of sampled key digests; overlap with
//! the query sketch's digests gives a containment estimate that is cheap and
//! join-free.

use std::collections::HashMap;

use joinmi_hash::{digest_set_with_capacity, DigestHashMap, DigestHashSet};
use joinmi_sketch::ColumnSketch;

/// Index postings in canonical on-disk order: `(digest, candidate ids
/// ascending)`, sorted by digest.
pub type CanonicalPostings = Vec<(u64, Vec<usize>)>;

/// `(candidate id, distinct digest count)` pairs sorted by id.
pub type CanonicalSizes = Vec<(usize, usize)>;

/// The net postings change of one candidate update, in canonical order
/// (`removed`/`added` sorted by `(digest, id)`, `sizes` by id).
///
/// Produced by [`JoinabilityIndex::update`] when an appended chunk changes a
/// candidate's sampled key set, accumulated by the repository, and persisted
/// as the INDEX delta of an on-disk append group. Deltas are ordered: each
/// one captures the difference between consecutive states of a candidate, so
/// they must be applied (via [`JoinabilityIndex::apply_delta`]) in the order
/// they were produced.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IndexDelta {
    /// `(digest, candidate id)` postings to remove (keys evicted from the
    /// candidate's KMV selection).
    pub removed: Vec<(u64, usize)>,
    /// `(digest, candidate id)` postings to add (keys newly selected).
    pub added: Vec<(u64, usize)>,
    /// Updated distinct-digest counts per touched candidate.
    pub sizes: Vec<(usize, usize)>,
}

impl IndexDelta {
    /// Returns `true` when the delta changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.removed.is_empty() && self.added.is_empty() && self.sizes.is_empty()
    }
}

/// An inverted index from sampled key digests to candidate identifiers.
#[derive(Debug, Default, Clone)]
pub struct JoinabilityIndex {
    /// digest → candidate indices whose sketch contains that digest. The
    /// digests are already 64-bit hashes, so the postings map uses the
    /// Fibonacci digest hasher instead of re-hashing through SipHash.
    postings: DigestHashMap<Vec<usize>>,
    /// candidate index → number of distinct digests in its sketch.
    candidate_sizes: HashMap<usize, usize>,
}

impl JoinabilityIndex {
    /// Builds an index over the given candidate sketches (indexed by their
    /// position in the slice).
    #[must_use]
    pub fn build(candidates: &[&ColumnSketch]) -> Self {
        let mut index = Self::default();
        for (i, sketch) in candidates.iter().enumerate() {
            index.insert(i, sketch);
        }
        index
    }

    /// Adds one candidate sketch under the given identifier.
    pub fn insert(&mut self, id: usize, sketch: &ColumnSketch) {
        let mut digests = digest_set_with_capacity(sketch.len());
        digests.extend(sketch.rows().iter().map(|r| r.key.raw()));
        self.candidate_sizes.insert(id, digests.len());
        for d in digests {
            self.postings.entry(d).or_default().push(id);
        }
    }

    /// Replaces one candidate's postings with the digests of its updated
    /// sketch, returning the net [`IndexDelta`] for the append log.
    ///
    /// `old` is the sketch the candidate was indexed under. Work is
    /// proportional to the two sketches' sizes (bounded by the sketch
    /// budget), not to the index.
    pub fn update(&mut self, id: usize, old: &ColumnSketch, new: &ColumnSketch) -> IndexDelta {
        let mut old_digests = digest_set_with_capacity(old.len());
        old_digests.extend(old.rows().iter().map(|r| r.key.raw()));
        let mut new_digests = digest_set_with_capacity(new.len());
        new_digests.extend(new.rows().iter().map(|r| r.key.raw()));

        let mut removed: Vec<(u64, usize)> = old_digests
            .iter()
            .filter(|d| !new_digests.contains(d))
            .map(|&d| (d, id))
            .collect();
        let mut added: Vec<(u64, usize)> = new_digests
            .iter()
            .filter(|d| !old_digests.contains(d))
            .map(|&d| (d, id))
            .collect();
        removed.sort_unstable();
        added.sort_unstable();
        let delta = IndexDelta {
            removed,
            added,
            sizes: vec![(id, new_digests.len())],
        };
        self.apply_delta(&delta);
        delta
    }

    /// Patches one candidate's postings from an exact membership diff (the
    /// `added`/`removed` key digests reported by
    /// `RightSketchBuilder::append_table_diff`) — `O(changed)`, no sketch
    /// re-diffing. `size` is the candidate's new distinct-digest count.
    /// Returns the (possibly empty) delta for the append log.
    pub fn apply_membership_update(
        &mut self,
        id: usize,
        removed: &[u64],
        added: &[u64],
        size: usize,
    ) -> IndexDelta {
        let mut delta = IndexDelta {
            removed: removed.iter().map(|&d| (d, id)).collect(),
            added: added.iter().map(|&d| (d, id)).collect(),
            sizes: Vec::new(),
        };
        delta.removed.sort_unstable();
        delta.added.sort_unstable();
        if self.candidate_sizes.get(&id) != Some(&size) {
            delta.sizes.push((id, size));
        }
        self.apply_delta(&delta);
        delta
    }

    /// Applies one delta (see [`Self::update`]); the loader replays persisted
    /// deltas through this in order.
    pub fn apply_delta(&mut self, delta: &IndexDelta) {
        for &(digest, id) in &delta.removed {
            if let Some(ids) = self.postings.get_mut(&digest) {
                ids.retain(|&existing| existing != id);
                if ids.is_empty() {
                    // Drop the empty posting list so the canonical encoding
                    // matches a from-scratch index over the same sketches.
                    self.postings.remove(&digest);
                }
            }
        }
        for &(digest, id) in &delta.added {
            let ids = self.postings.entry(digest).or_default();
            if !ids.contains(&id) {
                ids.push(id);
            }
        }
        for &(id, size) in &delta.sizes {
            self.candidate_sizes.insert(id, size);
        }
    }

    /// Number of indexed candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidate_sizes.len()
    }

    /// Returns `true` if no candidates are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidate_sizes.is_empty()
    }

    /// The index contents in canonical order, for persistence: postings
    /// sorted by digest with candidate ids ascending, plus `(candidate id,
    /// distinct digest count)` pairs sorted by id.
    #[must_use]
    pub fn canonical_parts(&self) -> (CanonicalPostings, CanonicalSizes) {
        let mut postings: CanonicalPostings = self
            .postings
            .iter()
            .map(|(&digest, ids)| {
                let mut ids = ids.clone();
                ids.sort_unstable();
                (digest, ids)
            })
            .collect();
        postings.sort_unstable_by_key(|&(digest, _)| digest);
        let mut sizes: CanonicalSizes = self
            .candidate_sizes
            .iter()
            .map(|(&id, &size)| (id, size))
            .collect();
        sizes.sort_unstable();
        (postings, sizes)
    }

    /// Rebuilds an index from parts produced by
    /// [`JoinabilityIndex::canonical_parts`] (used by the repository loader).
    #[must_use]
    pub fn from_canonical_parts(postings: CanonicalPostings, sizes: CanonicalSizes) -> Self {
        let mut index = Self::default();
        for (digest, ids) in postings {
            index.postings.insert(digest, ids);
        }
        index.candidate_sizes.extend(sizes);
        index
    }

    /// Returns `(candidate id, number of overlapping sampled keys)` for every
    /// candidate that shares at least `min_overlap` sampled key digests with
    /// the query sketch, sorted by overlap (descending).
    #[must_use]
    pub fn query(&self, query: &ColumnSketch, min_overlap: usize) -> Vec<(usize, usize)> {
        let mut query_digests: DigestHashSet = digest_set_with_capacity(query.len());
        query_digests.extend(query.rows().iter().map(|r| r.key.raw()));
        // Candidate ids are dense small integers, so the per-hit counter is a
        // direct-indexed vector — one array write per posting instead of a
        // hash probe on the hottest pre-filter loop.
        let id_bound = self.candidate_sizes.keys().max().map_or(0, |&m| m + 1);
        let mut overlap = vec![0usize; id_bound];
        for d in &query_digests {
            if let Some(ids) = self.postings.get(d) {
                for &id in ids {
                    // The bound check is free for indexes built via insert()
                    // (every posting id has a candidate_sizes entry) and
                    // keeps from_canonical_parts with inconsistent parts
                    // from panicking; the loader additionally rejects such
                    // files with a typed error.
                    if let Some(count) = overlap.get_mut(id) {
                        *count += 1;
                    }
                }
            }
        }
        // `c > 0` preserves the map-based semantics: candidates with no
        // overlapping digest never appear, even when `min_overlap` is 0.
        let mut hits: Vec<(usize, usize)> = overlap
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0 && c >= min_overlap)
            .collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_sketch::{SketchConfig, SketchKind};
    use joinmi_table::{Aggregation, Table};

    fn keyed_table(name: &str, keys: Vec<&str>) -> Table {
        let values: Vec<i64> = (0..keys.len() as i64).collect();
        Table::builder(name)
            .push_str_column("k", keys)
            .push_int_column("v", values)
            .build()
            .unwrap()
    }

    #[test]
    fn overlapping_candidates_are_found_and_ranked() {
        let cfg = SketchConfig::new(64, 1);
        let query_table = keyed_table("q", vec!["a", "b", "c", "d"]);
        let query = SketchKind::Tupsk
            .build_left(&query_table, "k", "v", &cfg)
            .unwrap();

        let full = SketchKind::Tupsk
            .build_right(
                &keyed_table("full", vec!["a", "b", "c", "d"]),
                "k",
                "v",
                Aggregation::Avg,
                &cfg,
            )
            .unwrap();
        let partial = SketchKind::Tupsk
            .build_right(
                &keyed_table("partial", vec!["a", "b", "x", "y"]),
                "k",
                "v",
                Aggregation::Avg,
                &cfg,
            )
            .unwrap();
        let disjoint = SketchKind::Tupsk
            .build_right(
                &keyed_table("disjoint", vec!["p", "q", "r"]),
                "k",
                "v",
                Aggregation::Avg,
                &cfg,
            )
            .unwrap();

        let index = JoinabilityIndex::build(&[&full, &partial, &disjoint]);
        assert_eq!(index.len(), 3);

        let hits = index.query(&query, 1);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0); // full overlap ranks first
        assert_eq!(hits[0].1, 4);
        assert_eq!(hits[1].0, 1);
        assert_eq!(hits[1].1, 2);

        // Raising the threshold drops the partial match.
        let strict = index.query(&query, 3);
        assert_eq!(strict.len(), 1);
    }

    #[test]
    fn query_tolerates_posting_ids_without_size_entries() {
        // from_canonical_parts with inconsistent parts (posting id 5, sizes
        // only for id 0) must not panic at query time; the unknown id is
        // ignored. The persistence loader rejects such files outright — this
        // guard is defense in depth for direct API use.
        let cfg = SketchConfig::new(16, 0);
        let q = SketchKind::Tupsk
            .build_left(&keyed_table("q", vec!["a"]), "k", "v", &cfg)
            .unwrap();
        let digest = q.rows()[0].key.raw();
        let index =
            JoinabilityIndex::from_canonical_parts(vec![(digest, vec![0, 5])], vec![(0, 1)]);
        assert_eq!(index.query(&q, 1), vec![(0, 1)]);
    }

    #[test]
    fn update_matches_an_index_rebuilt_from_scratch() {
        let cfg = SketchConfig::new(64, 1);
        let build = |keys: Vec<&str>, name: &str| {
            SketchKind::Tupsk
                .build_right(&keyed_table(name, keys), "k", "v", Aggregation::Avg, &cfg)
                .unwrap()
        };
        let a_old = build(vec!["a", "b", "c"], "a");
        let b = build(vec!["p", "q"], "b");
        let mut index = JoinabilityIndex::build(&[&a_old, &b]);

        // Candidate 0's key set changes: "c" leaves, "x"/"y" arrive.
        let a_new = build(vec!["a", "b", "x", "y"], "a");
        let delta = index.update(0, &a_old, &a_new);
        assert!(!delta.is_empty());
        assert_eq!(delta.sizes, vec![(0, 4)]);

        let rebuilt = JoinabilityIndex::build(&[&a_new, &b]);
        assert_eq!(index.canonical_parts(), rebuilt.canonical_parts());

        // Replaying the delta on a copy of the original reaches the same
        // state (the loader path).
        let mut replayed = JoinabilityIndex::build(&[&a_old, &b]);
        replayed.apply_delta(&delta);
        assert_eq!(replayed.canonical_parts(), rebuilt.canonical_parts());
    }

    #[test]
    fn empty_index_returns_no_hits() {
        let index = JoinabilityIndex::default();
        assert!(index.is_empty());
        let cfg = SketchConfig::new(16, 0);
        let q = SketchKind::Tupsk
            .build_left(&keyed_table("q", vec!["a"]), "k", "v", &cfg)
            .unwrap();
        assert!(index.query(&q, 1).is_empty());
    }
}
