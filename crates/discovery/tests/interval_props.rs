//! Property tests for the pluggable scoring policy: point scoring must keep
//! today's rankings bit-for-bit under arbitrary cache interleavings with
//! interval-scored runs of the same queries, and the early-terminating
//! interval top-k must equal the exhaustively scored interval top-k — ties
//! included — for every `top_k` and confidence level.

use joinmi_discovery::{
    QueryStageCache, RankedCandidate, RelationshipQuery, RepositoryConfig, StageCacheConfig,
    TableRepository,
};
use joinmi_estimators::EstimatorWorkspace;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::TaxiScenario;
use joinmi_table::Table;
use proptest::prelude::*;

const SKETCH: SketchConfig = SketchConfig { size: 256, seed: 3 };

fn corpus_repo() -> (TableRepository, Table) {
    let scenario = TaxiScenario::generate(30, 10, 3);
    let config = RepositoryConfig {
        sketch: SKETCH,
        ..RepositoryConfig::default()
    };
    let mut repo = TableRepository::new(config);
    repo.add_table(scenario.weather).unwrap();
    repo.add_table(scenario.demographics).unwrap();
    repo.add_table(scenario.inspections).unwrap();
    (repo, scenario.taxi)
}

/// The same deterministic query family as `cache_props`: the variant index
/// varies the ranking limit, the join-size gate, the estimator `k`, and the
/// query rows.
fn variant(train: &Table, idx: usize) -> RelationshipQuery {
    let top_k = [0, 2, 5, 1][idx % 4];
    let min_join_size = [10, 5, 40][idx % 3];
    let k = [3, 2, 5][idx % 3];
    let rows = train.num_rows() - (idx % 2) * (train.num_rows() / 4);
    RelationshipQuery::new(train.slice_rows(0..rows), "zipcode", "num_trips")
        .with_sketch(SketchKind::Tupsk, SKETCH)
        .with_min_join_size(min_join_size)
        .with_top_k(top_k)
        .with_k(k)
}

/// A corpus engineered so interval early termination actually fires: three
/// strong candidates tied at exactly ln 64 nats (full key overlap,
/// one-to-one features) and a long tail of weak candidates sharing only
/// eight keys each, whose cheap MI upper bound sits below the strong
/// candidates' credible lower bound.
fn skewed_repo() -> (TableRepository, Table) {
    fn strs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }
    let keys: Vec<String> = (0..64).map(|i| format!("key-{i:02}")).collect();
    let target: Vec<String> = (0..64).map(|i| format!("t{i}")).collect();
    let train = Table::builder("train")
        .push_str_column("key", strs(&keys))
        .push_str_column("target", strs(&target))
        .build()
        .unwrap();
    let config = RepositoryConfig {
        sketch: SketchConfig::new(256, 5),
        ..RepositoryConfig::default()
    };
    let mut repo = TableRepository::new(config);
    for t in 0..3 {
        let feature: Vec<String> = (0..64).map(|i| format!("f{t}-{i}")).collect();
        let table = Table::builder(format!("strong{t}"))
            .push_str_column("key", strs(&keys))
            .push_str_column("feat", strs(&feature))
            .build()
            .unwrap();
        repo.add_table(table).unwrap();
    }
    for t in 0..40 {
        let mut weak_keys: Vec<String> = (0..8).map(|i| format!("key-{i:02}")).collect();
        weak_keys.extend((0..40).map(|j| format!("weak{t}-{j}")));
        let feature: Vec<String> = (0..weak_keys.len()).map(|i| format!("w{t}-{i}")).collect();
        let table = Table::builder(format!("weak{t}"))
            .push_str_column("key", strs(&weak_keys))
            .push_str_column("feat", strs(&feature))
            .build()
            .unwrap();
        repo.add_table(table).unwrap();
    }
    (repo, train)
}

fn fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
    results
        .iter()
        .map(|r| {
            (
                r.candidate_index,
                r.mi.to_bits(),
                r.sketch_join_size,
                r.key_overlap,
            )
        })
        .collect()
}

/// Fingerprint carrying the interval decoration bits as well.
fn interval_fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, u64, u64, u64)> {
    results
        .iter()
        .map(|r| {
            let iv = r.interval.as_ref().expect("interval missing");
            (
                r.candidate_index,
                r.mi.to_bits(),
                iv.variance.to_bits(),
                iv.ci_lo.to_bits(),
                iv.ci_hi.to_bits(),
            )
        })
        .collect()
}

const LEVELS: [f64; 3] = [0.5, 0.9, 0.99];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Point scoring through one shared cache, interleaved with interval
    /// scoring of the same queries, must keep every point ranking identical
    /// to its cold run (no cross-policy aliasing), and every interval
    /// ranking must order candidates exactly as the point ranking does.
    #[test]
    fn point_rankings_survive_interval_interleavings(
        ops in proptest::collection::vec(0usize..8, 1..5),
        level_idx in 0usize..3,
    ) {
        let level = LEVELS[level_idx];
        let (repo, train) = corpus_repo();
        let cache = QueryStageCache::new(StageCacheConfig::default());
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        for &op in &ops {
            let point = variant(&train, op);
            let interval = point.clone().with_confidence(level);

            let point_cold = point.execute(&repo).unwrap();
            let interval_cold = interval.execute(&repo).unwrap();
            // Interval scoring is decoration: same candidates, same order,
            // same point estimates to the last bit.
            prop_assert_eq!(fingerprint(&point_cold), fingerprint(&interval_cold));

            // Interleave both policies through the same cache scope; each
            // must replay its own cold run bit-for-bit.
            let interval_cached =
                interval.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
            let point_cached = point.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
            prop_assert_eq!(fingerprint(&point_cold), fingerprint(&point_cached));
            prop_assert_eq!(
                interval_fingerprint(&interval_cold),
                interval_fingerprint(&interval_cached)
            );
        }
    }

    /// The early-terminating interval top-k must equal the exhaustively
    /// scored interval ranking truncated to the same k — including the tie
    /// group at exactly ln 64 nats that the skewed corpus plants across the
    /// strong candidates — for every k, level, and execution strategy.
    #[test]
    fn early_terminated_top_k_matches_exhaustive(
        top_k in 1usize..6,
        level_idx in 0usize..3,
    ) {
        let level = LEVELS[level_idx];
        let (repo, train) = skewed_repo();
        let query = RelationshipQuery::new(train, "key", "target")
            .with_sketch(SketchKind::Tupsk, SketchConfig::new(256, 5))
            .with_min_join_size(3)
            .with_confidence(level);

        let mut exhaustive = query.clone().with_top_k(0).execute(&repo).unwrap();
        exhaustive.truncate(top_k);

        let early = query.with_top_k(top_k);
        let (parallel, stats) = early.execute_cached_stats(&repo, None).unwrap();
        prop_assert_eq!(
            interval_fingerprint(&exhaustive),
            interval_fingerprint(&parallel)
        );
        // With k ≤ 3 the running threshold comes from the strong tie group
        // (ci_lo ≈ 3.7 nats) and must beat the weak tail's ≈ 2.8-nat cheap
        // bound; with larger k the threshold is a weak candidate's own lower
        // bound and skipping nothing is the correct (sound) outcome.
        if top_k <= 3 {
            prop_assert!(stats.early_stopped > 0, "early termination never fired: {:?}", stats);
        }

        let mut ws = EstimatorWorkspace::new();
        let (sequential, _) = early.execute_in_cached_stats(&repo, &mut ws, None).unwrap();
        prop_assert_eq!(
            interval_fingerprint(&parallel),
            interval_fingerprint(&sequential)
        );
    }
}
