//! Property tests for the cross-query stage cache: cached execution must be
//! bit-for-bit identical to cold execution across arbitrary query
//! interleavings, under eviction pressure (tiny entry and byte capacities),
//! and across append-epoch generation bumps that mutate the repository.

use joinmi_discovery::{
    QueryStageCache, RankedCandidate, RelationshipQuery, RepositoryConfig, StageCacheConfig,
    TableRepository,
};
use joinmi_estimators::EstimatorWorkspace;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::TaxiScenario;
use joinmi_table::Table;
use proptest::prelude::*;

const SKETCH: SketchConfig = SketchConfig { size: 256, seed: 3 };

fn corpus_repo() -> (TableRepository, Table) {
    let scenario = TaxiScenario::generate(30, 10, 3);
    let config = RepositoryConfig {
        sketch: SKETCH,
        ..RepositoryConfig::default()
    };
    let mut repo = TableRepository::new(config);
    repo.add_table(scenario.weather).unwrap();
    repo.add_table(scenario.demographics).unwrap();
    repo.add_table(scenario.inspections).unwrap();
    (repo, scenario.taxi)
}

/// A small deterministic family of query shapes: the variant index varies the
/// ranking limit, the join-size gate, the estimator `k`, and the query rows
/// (distinct row slices give distinct left-sketch fingerprints).
fn variant(train: &Table, idx: usize) -> RelationshipQuery {
    let top_k = [0, 2, 5, 1][idx % 4];
    let min_join_size = [10, 5, 40][idx % 3];
    let k = [3, 2, 5][idx % 3];
    let rows = train.num_rows() - (idx % 2) * (train.num_rows() / 4);
    RelationshipQuery::new(train.slice_rows(0..rows), "zipcode", "num_trips")
        .with_sketch(SketchKind::Tupsk, SKETCH)
        .with_min_join_size(min_join_size)
        .with_top_k(top_k)
        .with_k(k)
}

fn fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
    results
        .iter()
        .map(|r| {
            (
                r.candidate_index,
                r.mi.to_bits(),
                r.sketch_join_size,
                r.key_overlap,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cached_rankings_match_cold_under_interleaving_and_eviction(
        ops in proptest::collection::vec(0usize..8, 1..6),
        max_entries in 1usize..24,
    ) {
        let (repo, train) = corpus_repo();
        // Tiny entry capacity: hits, misses, and evictions all interleave.
        let cache = QueryStageCache::new(StageCacheConfig { max_entries, max_bytes: 0 });
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        for &op in &ops {
            let query = variant(&train, op);
            let cold = query.execute(&repo).unwrap();
            let cached = query.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
            prop_assert_eq!(fingerprint(&cold), fingerprint(&cached));
        }
        // The bound must have held throughout.
        prop_assert!(cache.stats().entries <= max_entries);
    }

    #[test]
    fn byte_bound_pressure_keeps_rankings_exact(
        ops in proptest::collection::vec(0usize..8, 1..5),
        max_kib in 1usize..64,
    ) {
        let (repo, train) = corpus_repo();
        let max_bytes = max_kib * 1024;
        let cache = QueryStageCache::new(StageCacheConfig { max_entries: 4096, max_bytes });
        let scope = cache.scope(0);
        let mut ws = EstimatorWorkspace::new();
        for &op in &ops {
            let query = variant(&train, op);
            let cold = query.execute(&repo).unwrap();
            let cached = query.execute_in_cached(&repo, &mut ws, Some(&scope)).unwrap();
            prop_assert_eq!(fingerprint(&cold), fingerprint(&cached));
            prop_assert!(cache.stats().resident_bytes <= max_bytes);
        }
    }

    #[test]
    fn generation_bumps_keep_cached_rankings_exact_across_appends(
        ops in proptest::collection::vec(0usize..10, 2..7),
    ) {
        // op 8/9 = append rows to a candidate table and bump the cache
        // generation (the serving daemon's append-epoch contract); other ops
        // run a query variant. After every bump the mutated repository must
        // agree with its own cold run — no stale join or estimate may leak
        // across the epoch.
        let (mut repo, train) = corpus_repo();
        let donor = TaxiScenario::generate(30, 10, 7);
        let cache = QueryStageCache::with_generation(StageCacheConfig::default(), 0);
        let mut generation = 0u64;
        let mut appended_chunks = 0usize;
        let mut ws = EstimatorWorkspace::new();
        for &op in &ops {
            if op >= 8 {
                let rows = donor.inspections.num_rows();
                let start = (appended_chunks * 5) % rows.saturating_sub(5).max(1);
                repo.append_rows(&donor.inspections.slice_rows(start..start + 5)).unwrap();
                appended_chunks += 1;
                generation += 1;
                cache.set_generation(generation);
                prop_assert_eq!(cache.stats().entries, 0);
            } else {
                let query = variant(&train, op);
                let cold = query.execute(&repo).unwrap();
                let cached = query
                    .execute_in_cached(&repo, &mut ws, Some(&cache.scope(0)))
                    .unwrap();
                prop_assert_eq!(fingerprint(&cold), fingerprint(&cached));
            }
        }
    }
}
