//! The taxi-demand scenario of Figure 1 / Example 1.
//!
//! Generates the three tables of the paper's motivating example — daily taxi
//! trips, hourly weather indicators and per-ZIP-code demographics — with a
//! planted dependency structure: taxi demand depends on rainfall (negatively)
//! and on population (non-monotonically, as hypothesized in the paper:
//! demand is low both in sparsely populated areas and in very dense,
//! congested ones). Used by the examples and the discovery tests to show the
//! end-to-end workflow on data that looks like the real thing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinmi_table::Table;

use crate::rng::GaussianSampler;

/// Configuration and generated tables of the taxi scenario.
#[derive(Debug, Clone)]
pub struct TaxiScenario {
    /// Daily taxi trips per (date, ZIP code): `Ttaxi[date, zipcode, num_trips]`.
    pub taxi: Table,
    /// Hourly weather indicators: `Tweather[date, hour, temp, rainfall]`.
    pub weather: Table,
    /// Demographics by ZIP code: `Tdemographics[zipcode, borough, population]`.
    pub demographics: Table,
    /// An unrelated "noise" table (restaurant inspections) joinable on
    /// zipcode but independent of taxi demand — a true negative for
    /// discovery experiments.
    pub inspections: Table,
}

impl TaxiScenario {
    /// Generates the scenario with `num_days` days and `num_zips` ZIP codes.
    #[must_use]
    pub fn generate(num_days: usize, num_zips: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gauss = GaussianSampler::new();

        let boroughs = ["Brooklyn", "Manhattan", "Queens", "Bronx", "Staten Island"];
        let zipcodes: Vec<String> = (0..num_zips)
            .map(|z| format!("{:05}", 10_001 + z))
            .collect();
        let populations: Vec<f64> = (0..num_zips)
            .map(|_| 10_000.0 + rng.gen::<f64>() * 90_000.0)
            .collect();

        // Per-day rainfall (mm) and temperature baseline.
        let daily_rain: Vec<f64> = (0..num_days)
            .map(|_| (rng.gen::<f64>() * 2.0 - 0.8).max(0.0))
            .collect();
        let daily_temp: Vec<f64> = (0..num_days)
            .map(|d| 10.0 + 15.0 * ((d as f64) * 0.17).sin() + gauss.sample(&mut rng) * 3.0)
            .collect();

        // Taxi table: one row per (date, zip).
        let mut t_dates = Vec::new();
        let mut t_zips = Vec::new();
        let mut t_trips = Vec::new();
        for (d, date) in (0..num_days).map(|d| (d, format!("2017-01-{:02}", d % 28 + 1))) {
            for (z, zip) in zipcodes.iter().enumerate() {
                // Non-monotonic dependence on population: peak demand at
                // mid-sized neighbourhoods.
                let pop = populations[z];
                let pop_effect = 400.0 - ((pop - 55_000.0) / 1_000.0).powi(2) * 0.25;
                let rain_effect = -80.0 * daily_rain[d];
                let noise = gauss.sample(&mut rng) * 20.0;
                let trips = (pop_effect + rain_effect + noise).max(1.0);
                t_dates.push(date.clone());
                t_zips.push(zip.clone());
                t_trips.push(trips as i64);
            }
        }
        let taxi = Table::builder("taxi")
            .push_str_column("date", t_dates)
            .push_str_column("zipcode", t_zips)
            .push_int_column("num_trips", t_trips)
            .build()
            .expect("aligned columns");

        // Weather table: 24 hourly readings per day.
        let mut w_dates = Vec::new();
        let mut w_hours = Vec::new();
        let mut w_temp = Vec::new();
        let mut w_rain = Vec::new();
        for (d, date) in (0..num_days).map(|d| (d, format!("2017-01-{:02}", d % 28 + 1))) {
            for hour in 0..24i64 {
                w_dates.push(date.clone());
                w_hours.push(hour);
                w_temp.push(
                    daily_temp[d]
                        + 4.0 * ((hour as f64 - 14.0) / 24.0 * std::f64::consts::PI).cos()
                        + gauss.sample(&mut rng) * 0.5,
                );
                w_rain.push((daily_rain[d] / 24.0 * (1.0 + 0.3 * gauss.sample(&mut rng))).max(0.0));
            }
        }
        let weather = Table::builder("weather")
            .push_str_column("date", w_dates)
            .push_int_column("hour", w_hours)
            .push_float_column("temp", w_temp)
            .push_float_column("rainfall", w_rain)
            .build()
            .expect("aligned columns");

        // Demographics table: one row per zip.
        let d_boroughs: Vec<String> = (0..num_zips)
            .map(|z| boroughs[z % boroughs.len()].to_owned())
            .collect();
        let demographics = Table::builder("demographics")
            .push_str_column("zipcode", zipcodes.clone())
            .push_str_column("borough", d_boroughs)
            .push_float_column("population", populations)
            .build()
            .expect("aligned columns");

        // Unrelated inspections table: random scores per zip, several rows each.
        let mut i_zips = Vec::new();
        let mut i_scores = Vec::new();
        for zip in &zipcodes {
            for _ in 0..rng.gen_range(2..6) {
                i_zips.push(zip.clone());
                i_scores.push(rng.gen_range(0..100i64));
            }
        }
        let inspections = Table::builder("inspections")
            .push_str_column("zipcode", i_zips)
            .push_int_column("score", i_scores)
            .build()
            .expect("aligned columns");

        Self {
            taxi,
            weather,
            demographics,
            inspections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::{augment, Aggregation, AugmentSpec};

    #[test]
    fn tables_have_expected_shapes() {
        let s = TaxiScenario::generate(10, 8, 42);
        assert_eq!(s.taxi.num_rows(), 80);
        assert_eq!(s.weather.num_rows(), 240);
        assert_eq!(s.demographics.num_rows(), 8);
        assert!(s.inspections.num_rows() >= 16);
    }

    #[test]
    fn weather_augmentation_joins_cleanly() {
        let s = TaxiScenario::generate(12, 5, 1);
        let spec = AugmentSpec::new("date", "num_trips", "date", "rainfall", Aggregation::Avg);
        let res = augment(&s.taxi, &s.weather, &spec).unwrap();
        assert_eq!(res.table.num_rows(), s.taxi.num_rows());
        assert!((res.containment() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn planted_dependencies_are_detectable() {
        // The planted dependencies should be detectable on the full join:
        // population strongly drives per-ZIP demand, and rainfall has a
        // smaller but non-zero effect.
        let s = TaxiScenario::generate(60, 12, 7);

        let rain_spec = AugmentSpec::new("date", "num_trips", "date", "rainfall", Aggregation::Avg);
        let rain = augment(&s.taxi, &s.weather, &rain_spec).unwrap().table;
        let rain_x: Vec<f64> = (0..rain.num_rows())
            .map(|i| rain.value(i, "AVG(rainfall)").unwrap().as_f64().unwrap())
            .collect();
        let trips: Vec<f64> = (0..rain.num_rows())
            .map(|i| rain.value(i, "num_trips").unwrap().as_f64().unwrap())
            .collect();
        let rain_mi = joinmi_estimators::mixed_ksg_mi(&rain_x, &trips, 3).unwrap();
        assert!(rain_mi > 0.02, "rainfall MI too small: {rain_mi}");

        let pop_spec = AugmentSpec::new(
            "zipcode",
            "num_trips",
            "zipcode",
            "population",
            Aggregation::Avg,
        );
        let pop = augment(&s.taxi, &s.demographics, &pop_spec).unwrap().table;
        let pop_x: Vec<f64> = (0..pop.num_rows())
            .map(|i| pop.value(i, "AVG(population)").unwrap().as_f64().unwrap())
            .collect();
        let pop_mi = joinmi_estimators::mixed_ksg_mi(&pop_x, &trips, 3).unwrap();
        assert!(pop_mi > 0.5, "population MI too small: {pop_mi}");
        assert!(
            pop_mi > rain_mi,
            "population should dominate rainfall in this scenario"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TaxiScenario::generate(5, 4, 9);
        let b = TaxiScenario::generate(5, 4, 9);
        assert_eq!(a.taxi, b.taxi);
        assert_eq!(a.weather, b.weather);
    }
}
