//! The Trinomial benchmark distribution (Section V-A).
//!
//! `(X, Y, ·)` is drawn from `Mult(m, ⟨p1, p2, 1−p1−p2⟩)`: `X` counts the
//! first outcome, `Y` the second, over `m` trials (the third count is
//! discarded). Both marginals are binomial; the joint covariance is
//! `−m p1 p2`, giving a negative correlation whose magnitude is controlled by
//! the parameters.
//!
//! Parameter selection follows the paper's algorithm:
//!
//! 1. pick the desired MI `I_true` and convert it to an equivalent Gaussian
//!    correlation `r = sqrt(1 − exp(−2 I_true))`,
//! 2. pick `p1 ~ U(0.15, 0.85)`,
//! 3. solve `|r| = p1 p2 / (sqrt(p1(1−p1)) sqrt(p2(1−p2)))` for `p2` and
//!    retry if it falls outside `[0.15, 0.85]`.
//!
//! That conversion is only an approximation (central limit theorem); the
//! *exact* MI is then computed from the open-form entropies of the binomial
//! marginals and the trinomial joint, which is what the experiments report
//! as "Analytical MI".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinmi_estimators::special::ln_factorial;
use joinmi_table::Value;

use crate::GeneratedPair;

/// Configuration of one Trinomial data set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrinomialConfig {
    /// Number of trials (`m`), which bounds the number of distinct values.
    pub m: u32,
    /// Probability of the outcome counted by `X`.
    pub p1: f64,
    /// Probability of the outcome counted by `Y`.
    pub p2: f64,
}

impl TrinomialConfig {
    /// Creates a configuration with explicit parameters.
    ///
    /// # Panics
    /// Panics if the probabilities are not in `(0, 1)` or sum to ≥ 1.
    #[must_use]
    pub fn new(m: u32, p1: f64, p2: f64) -> Self {
        assert!(m >= 1, "m must be positive");
        assert!(
            p1 > 0.0 && p2 > 0.0 && p1 + p2 < 1.0,
            "invalid trinomial probabilities"
        );
        Self { m, p1, p2 }
    }

    /// Implements the paper's parameter-selection algorithm: draws a target
    /// MI uniformly from `[0, max_mi]` and solves for `(p1, p2)`.
    ///
    /// Returns the configuration; its exact MI can then be obtained with
    /// [`TrinomialConfig::true_mi`] (which will not exactly equal the drawn
    /// target — the target is only used to set the dependence strength).
    #[must_use]
    pub fn with_random_target(m: u32, max_mi: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let target: f64 = rng.gen::<f64>() * max_mi;
            let r = (1.0 - (-2.0 * target).exp()).sqrt();
            let p1: f64 = 0.15 + rng.gen::<f64>() * 0.70;
            if let Some(p2) = Self::solve_p2(r, p1) {
                if (0.15..=0.85).contains(&p2) && p1 + p2 < 0.999 {
                    return Self { m, p1, p2 };
                }
            }
        }
    }

    /// Solves the trinomial correlation equation for `p2` given `|r|` and
    /// `p1`: `r² = (p1 p2) / ((1−p1)(1−p2))`.
    #[must_use]
    pub fn solve_p2(r: f64, p1: f64) -> Option<f64> {
        if !(0.0..1.0).contains(&r) || !(0.0..1.0).contains(&p1) || p1 == 0.0 {
            return None;
        }
        if r == 0.0 {
            // Independence is unreachable for a trinomial (covariance is
            // −m p1 p2 < 0), but an arbitrarily weak dependence is: choose a
            // tiny p2 proxy via the same formula with a small floor on r.
            return Self::solve_p2(1e-6, p1);
        }
        let a = r * r * (1.0 - p1) / p1;
        let p2 = a / (1.0 + a);
        (p2 > 0.0 && p2 < 1.0).then_some(p2)
    }

    /// Pearson correlation implied by the parameters:
    /// `r = −p1 p2 / (sqrt(p1(1−p1)) sqrt(p2(1−p2)))` — negative by
    /// construction.
    #[must_use]
    pub fn correlation(&self) -> f64 {
        -(self.p1 * self.p2)
            / ((self.p1 * (1.0 - self.p1)).sqrt() * (self.p2 * (1.0 - self.p2)).sqrt())
    }

    /// The bivariate-normal approximation of the MI: `−½ ln(1 − r²)`.
    #[must_use]
    pub fn gaussian_approx_mi(&self) -> f64 {
        let r = self.correlation();
        -0.5 * (1.0 - r * r).ln()
    }

    /// Exact mutual information `I(X; Y) = H(X) + H(Y) − H(X, Y)` computed
    /// from the binomial marginal entropies and the trinomial joint entropy,
    /// in nats.
    #[must_use]
    pub fn true_mi(&self) -> f64 {
        let hx = binomial_entropy(self.m, self.p1);
        let hy = binomial_entropy(self.m, self.p2);
        let hxy = self.joint_entropy();
        (hx + hy - hxy).max(0.0)
    }

    /// Exact joint entropy of `(X, Y)` (open-form sum over the support).
    #[must_use]
    pub fn joint_entropy(&self) -> f64 {
        let m = self.m as i64;
        let ln_m_fact = ln_factorial(self.m as u64);
        let (lp1, lp2) = (self.p1.ln(), self.p2.ln());
        let p3 = 1.0 - self.p1 - self.p2;
        let lp3 = p3.ln();
        let mut h = 0.0;
        for i in 0..=m {
            for j in 0..=(m - i) {
                let k = m - i - j;
                let ln_p = ln_m_fact
                    - ln_factorial(i as u64)
                    - ln_factorial(j as u64)
                    - ln_factorial(k as u64)
                    + i as f64 * lp1
                    + j as f64 * lp2
                    + k as f64 * lp3;
                let p = ln_p.exp();
                if p > 0.0 {
                    h -= p * ln_p;
                }
            }
        }
        h
    }

    /// Draws `n` joint samples `(x, y)` as integer counts.
    #[must_use]
    pub fn sample(&self, n: usize, seed: u64) -> (Vec<i64>, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let (mut x, mut y) = (0i64, 0i64);
            for _ in 0..self.m {
                let u: f64 = rng.gen();
                if u < self.p1 {
                    x += 1;
                } else if u < self.p1 + self.p2 {
                    y += 1;
                }
            }
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    /// Draws `n` samples and packages them with the exact MI.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> GeneratedPair {
        let (xs, ys) = self.sample(n, seed);
        GeneratedPair {
            xs: xs.into_iter().map(Value::Int).collect(),
            ys: ys.into_iter().map(Value::Int).collect(),
            true_mi: self.true_mi(),
            m: self.m,
        }
    }
}

/// Entropy of `Binomial(m, p)` in nats (exact open-form sum).
#[must_use]
pub fn binomial_entropy(m: u32, p: f64) -> f64 {
    let ln_m_fact = ln_factorial(u64::from(m));
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let mut h = 0.0;
    for i in 0..=m {
        let ln_p = ln_m_fact - ln_factorial(u64::from(i)) - ln_factorial(u64::from(m - i))
            + f64::from(i) * lp
            + f64::from(m - i) * lq;
        let prob = ln_p.exp();
        if prob > 0.0 {
            h -= prob * ln_p;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_entropy_known_cases() {
        // Binomial(1, 0.5) = fair coin: ln 2.
        assert!((binomial_entropy(1, 0.5) - 2.0_f64.ln()).abs() < 1e-12);
        // Large m approaches the Gaussian entropy ½ ln(2πe mpq).
        let m = 512u32;
        let p = 0.3;
        let gaussian = 0.5
            * (2.0 * std::f64::consts::PI * std::f64::consts::E * f64::from(m) * p * (1.0 - p))
                .ln();
        assert!((binomial_entropy(m, p) - gaussian).abs() < 0.01);
    }

    #[test]
    fn solve_p2_inverts_the_correlation_formula() {
        for (r, p1) in [(0.5, 0.3), (0.9, 0.6), (0.2, 0.15)] {
            let p2 = TrinomialConfig::solve_p2(r, p1).unwrap();
            // The magnitude of the correlation of the resulting config must
            // equal r (the sign is negative by construction).
            if p1 + p2 < 1.0 {
                let cfg = TrinomialConfig::new(16, p1, p2);
                assert!((cfg.correlation().abs() - r).abs() < 1e-9, "r={r}, p1={p1}");
            }
        }
    }

    #[test]
    fn true_mi_close_to_gaussian_approx_for_large_m() {
        let cfg = TrinomialConfig::new(512, 0.4, 0.35);
        let exact = cfg.true_mi();
        let approx = cfg.gaussian_approx_mi();
        assert!(
            (exact - approx).abs() < 0.05,
            "exact={exact}, approx={approx}"
        );
        // And distinctly positive (dependence exists).
        assert!(exact > 0.1);
    }

    #[test]
    fn with_random_target_produces_valid_parameters() {
        for seed in 0..20u64 {
            let cfg = TrinomialConfig::with_random_target(64, 3.5, seed);
            assert!((0.15..=0.85).contains(&cfg.p1));
            assert!((0.15..=0.85).contains(&cfg.p2));
            assert!(cfg.p1 + cfg.p2 < 1.0);
            assert!(cfg.true_mi() >= 0.0);
        }
    }

    #[test]
    fn samples_have_the_right_moments() {
        let cfg = TrinomialConfig::new(100, 0.3, 0.5);
        let (xs, ys) = cfg.sample(20_000, 7);
        let mean_x = xs.iter().sum::<i64>() as f64 / xs.len() as f64;
        let mean_y = ys.iter().sum::<i64>() as f64 / ys.len() as f64;
        assert!((mean_x - 30.0).abs() < 0.5, "mean_x {mean_x}");
        assert!((mean_y - 50.0).abs() < 0.5, "mean_y {mean_y}");
        // X + Y <= m always.
        assert!(xs.iter().zip(&ys).all(|(&x, &y)| x + y <= 100));
    }

    #[test]
    fn empirical_mi_matches_true_mi() {
        // Sanity-check the generator against the MLE estimator on a large
        // sample with few distinct values (so estimator bias is negligible).
        let cfg = TrinomialConfig::new(16, 0.45, 0.4);
        let (xs, ys) = cfg.sample(40_000, 3);
        let x_codes: Vec<u32> = xs.iter().map(|&v| v as u32).collect();
        let y_codes: Vec<u32> = ys.iter().map(|&v| v as u32).collect();
        let est = joinmi_estimators::mle_mi(&x_codes, &y_codes).unwrap();
        let truth = cfg.true_mi();
        assert!((est - truth).abs() < 0.02, "est={est}, truth={truth}");
    }

    #[test]
    fn generate_packs_values_and_truth() {
        let cfg = TrinomialConfig::new(16, 0.3, 0.3);
        let pair = cfg.generate(100, 1);
        assert_eq!(pair.xs.len(), 100);
        assert_eq!(pair.ys.len(), 100);
        assert_eq!(pair.m, 16);
        assert!(pair.true_mi >= 0.0);
        assert!(matches!(pair.xs[0], Value::Int(_)));
    }

    #[test]
    #[should_panic(expected = "invalid trinomial")]
    fn invalid_probabilities_rejected() {
        let _ = TrinomialConfig::new(8, 0.7, 0.5);
    }
}
