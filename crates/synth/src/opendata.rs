//! Simulated open-data-portal collections.
//!
//! The paper's Section V-C evaluates the sketches on snapshots of the NYC
//! Open Data and World Bank Finances portals (Socrata API, September 2019),
//! sampling pairs of two-column tables `T[K, A]` with string join keys. Those
//! snapshots are not redistributable, so — per the substitution rule recorded
//! in DESIGN.md — this module generates collections with the same structural
//! properties the experiments depend on:
//!
//! * string join keys drawn from Zipf-skewed domains of configurable size
//!   (the NYC/WBF key-domain sizes average 1k–11k distinct values),
//! * partial overlap between the key domains of different tables (so
//!   sketch-join sizes span the full range the paper buckets over),
//! * value columns that are numeric or categorical with a planted
//!   key-mediated dependence of configurable strength (so true relationships
//!   range from independent to deterministic),
//! * heavy key repetition inside tables (so the left-join mixture-distribution
//!   issues the paper highlights actually occur).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinmi_table::{Column, Table};

use crate::rng::{sample_cdf, zipf_cdf, GaussianSampler};

/// Configuration of a simulated open-data collection.
#[derive(Debug, Clone)]
pub struct OpenDataConfig {
    /// Name of the collection (e.g. `"NYC-sim"`, `"WBF-sim"`).
    pub name: String,
    /// Number of two-column tables to generate.
    pub num_tables: usize,
    /// Number of rows per table, drawn uniformly from this range.
    pub rows_range: (usize, usize),
    /// Size of the shared key universe that tables sample their keys from.
    pub key_universe: usize,
    /// Zipf exponent of the key-frequency distribution (0 = uniform).
    pub key_skew: f64,
    /// Fraction of tables whose value column is numeric (the rest are
    /// categorical strings).
    pub numeric_fraction: f64,
    /// Number of categories used by categorical value columns.
    pub num_categories: usize,
    /// Base random seed.
    pub seed: u64,
}

impl OpenDataConfig {
    /// A small collection that mimics the World Bank Finances statistics
    /// (scaled down so experiments run in seconds): moderately sized key
    /// domains, large joins.
    #[must_use]
    pub fn wbf_like(seed: u64) -> Self {
        Self {
            name: "WBF-sim".to_owned(),
            num_tables: 24,
            rows_range: (2_000, 6_000),
            key_universe: 3_000,
            key_skew: 0.8,
            numeric_fraction: 0.6,
            num_categories: 40,
            seed,
        }
    }

    /// A small collection that mimics the NYC Open Data statistics: larger
    /// key domains, smaller joins.
    #[must_use]
    pub fn nyc_like(seed: u64) -> Self {
        Self {
            name: "NYC-sim".to_owned(),
            num_tables: 24,
            rows_range: (1_000, 4_000),
            key_universe: 8_000,
            key_skew: 1.1,
            numeric_fraction: 0.5,
            num_categories: 25,
            seed,
        }
    }
}

/// A generated collection of two-column tables.
#[derive(Debug, Clone)]
pub struct OpenDataCollection {
    /// Collection name.
    pub name: String,
    /// The generated tables; each has a string `"key"` column and a `"value"`
    /// column that is either numeric or categorical.
    pub tables: Vec<Table>,
}

impl OpenDataCollection {
    /// Generates a collection from the configuration.
    #[must_use]
    pub fn generate(cfg: &OpenDataConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut gauss = GaussianSampler::new();
        let cdf = zipf_cdf(cfg.key_universe, cfg.key_skew);

        // Hidden per-key latent attribute that value columns can depend on:
        // this is what creates genuine cross-table relationships (two tables
        // that both depend strongly on the latent key attribute have high MI
        // after a join on the key).
        let latent: Vec<f64> = (0..cfg.key_universe)
            .map(|_| rng.gen::<f64>() * 100.0)
            .collect();

        let mut tables = Vec::with_capacity(cfg.num_tables);
        for t in 0..cfg.num_tables {
            let n_rows = rng.gen_range(cfg.rows_range.0..=cfg.rows_range.1);
            // Each table sees a contiguous-ish window of the key universe so
            // pairwise overlap varies between table pairs.
            let window = cfg.key_universe / 2 + rng.gen_range(0..cfg.key_universe / 2);
            let offset = rng.gen_range(0..cfg.key_universe.saturating_sub(window).max(1));
            // Dependence strength of the value column on the latent key
            // attribute: spread across [0, 1] so the collection contains both
            // unrelated and strongly related table pairs.
            let dependence = f64::from(t as u32) / cfg.num_tables.max(1) as f64;
            let numeric = rng.gen::<f64>() < cfg.numeric_fraction;

            let mut keys: Vec<String> = Vec::with_capacity(n_rows);
            let mut num_values: Vec<f64> = Vec::with_capacity(n_rows);
            let mut str_values: Vec<String> = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let rank = sample_cdf(&cdf, &mut rng);
                let key_id = (offset + rank) % cfg.key_universe;
                keys.push(format!("k{key_id:06}"));
                let signal = latent[key_id];
                let noise = gauss.sample(&mut rng) * 25.0;
                let value = dependence * signal + (1.0 - dependence) * (50.0 + noise);
                if numeric {
                    num_values.push(value);
                } else {
                    let bucket =
                        ((value / 100.0).clamp(0.0, 0.999) * cfg.num_categories as f64) as usize;
                    str_values.push(format!("cat{bucket:03}"));
                }
            }

            let value_column = if numeric {
                Column::from_floats(num_values)
            } else {
                Column::from_strs(str_values)
            };
            let table = Table::builder(format!("{}_{t:03}", cfg.name))
                .push_str_column("key", keys)
                .push_column("value", value_column)
                .build()
                .expect("generated columns are aligned");
            tables.push(table);
        }
        Self {
            name: cfg.name.clone(),
            tables,
        }
    }

    /// All ordered pairs `(i, j)` with `i != j`, the sampling frame of the
    /// paper's real-data experiments.
    #[must_use]
    pub fn table_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.tables.len();
        let mut pairs = Vec::with_capacity(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::DataType;

    #[test]
    fn generates_requested_number_of_tables() {
        let cfg = OpenDataConfig {
            num_tables: 6,
            rows_range: (100, 200),
            key_universe: 500,
            ..OpenDataConfig::wbf_like(1)
        };
        let coll = OpenDataCollection::generate(&cfg);
        assert_eq!(coll.tables.len(), 6);
        for t in &coll.tables {
            assert!(t.num_rows() >= 100 && t.num_rows() <= 200);
            assert_eq!(t.column("key").unwrap().dtype(), DataType::Str);
            assert!(t.schema().contains("value"));
        }
    }

    #[test]
    fn collection_contains_both_value_types() {
        let cfg = OpenDataConfig {
            num_tables: 16,
            rows_range: (50, 80),
            key_universe: 300,
            ..OpenDataConfig::nyc_like(3)
        };
        let coll = OpenDataCollection::generate(&cfg);
        let numeric = coll
            .tables
            .iter()
            .filter(|t| t.column("value").unwrap().dtype() == DataType::Float)
            .count();
        assert!(numeric > 0);
        assert!(numeric < coll.tables.len());
    }

    #[test]
    fn tables_share_keys_so_joins_are_possible() {
        let cfg = OpenDataConfig {
            num_tables: 4,
            rows_range: (500, 600),
            key_universe: 200,
            ..OpenDataConfig::wbf_like(7)
        };
        let coll = OpenDataCollection::generate(&cfg);
        let a: std::collections::HashSet<String> = (0..coll.tables[0].num_rows())
            .map(|i| coll.tables[0].value(i, "key").unwrap().to_string())
            .collect();
        let b: std::collections::HashSet<String> = (0..coll.tables[1].num_rows())
            .map(|i| coll.tables[1].value(i, "key").unwrap().to_string())
            .collect();
        assert!(
            a.intersection(&b).count() > 10,
            "key domains do not overlap"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = OpenDataConfig {
            num_tables: 3,
            rows_range: (50, 60),
            key_universe: 100,
            ..OpenDataConfig::nyc_like(11)
        };
        let a = OpenDataCollection::generate(&cfg);
        let b = OpenDataCollection::generate(&cfg);
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn table_pairs_enumerates_ordered_pairs() {
        let cfg = OpenDataConfig {
            num_tables: 4,
            rows_range: (10, 20),
            key_universe: 50,
            ..OpenDataConfig::wbf_like(2)
        };
        let coll = OpenDataCollection::generate(&cfg);
        let pairs = coll.table_pairs();
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|&(i, j)| i != j));
    }
}
