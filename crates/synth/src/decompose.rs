//! Decomposition of generated `(X, Y)` pairs into joinable tables
//! (Section V-A, "Decomposition Into Joinable Tables").
//!
//! The benchmark generates the *post-join* columns directly, then splits them
//! into a base table `Ttrain[K_Y, Y]` and a candidate table `Tcand[K_X, X]`
//! whose augmentation join recovers `(X, Y)` exactly. Two key-generation
//! regimes control the dependence between the join key and the feature:
//!
//! * [`KeyDistribution::KeyInd`] — sequential unique keys (one-to-one join):
//!   maximum independence between the key and `X`;
//! * [`KeyDistribution::KeyDep`] — the key *is* the value of `X`
//!   (many-to-one join): maximal dependence, the adversarial case for
//!   key-coordinated sampling. Only applicable when `X` is discrete.

use std::collections::HashSet;
use std::fmt;

use joinmi_table::{Aggregation, DataType, Table, Value};

/// Key-generation regime for the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyDistribution {
    /// Unique sequential join keys (one-to-one relationship).
    KeyInd,
    /// Join key equals the feature value (many-to-one, key ⟂̸ feature).
    KeyDep,
}

impl KeyDistribution {
    /// Both regimes.
    pub const ALL: [Self; 2] = [Self::KeyInd, Self::KeyDep];

    /// Name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::KeyInd => "KeyInd",
            Self::KeyDep => "KeyDep",
        }
    }
}

impl fmt::Display for KeyDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The pair of joinable tables produced by [`decompose`], plus the metadata
/// needed to run the augmentation join or build sketches over them.
#[derive(Debug, Clone)]
pub struct DecomposedPair {
    /// Base table `Ttrain[key, y]`.
    pub train: Table,
    /// Candidate table `Tcand[key, x]`.
    pub cand: Table,
    /// Join-key column name in both tables (`"key"`).
    pub key_column: String,
    /// Target column name in `train` (`"y"`).
    pub target_column: String,
    /// Feature column name in `cand` (`"x"`).
    pub feature_column: String,
    /// Aggregation whose augmentation join recovers the original pairs
    /// exactly (`First` — any value-preserving function works because every
    /// candidate key maps to a single feature value by construction).
    pub aggregation: Aggregation,
    /// The regime used to generate the keys.
    pub key_distribution: KeyDistribution,
}

/// Splits paired columns into joinable tables under the given key regime.
///
/// # Panics
/// Panics if `xs` and `ys` have different lengths, or if `KeyDep` is
/// requested for an empty sample.
#[must_use]
pub fn decompose(xs: &[Value], ys: &[Value], key_dist: KeyDistribution) -> DecomposedPair {
    assert_eq!(xs.len(), ys.len(), "xs and ys must be aligned");
    match key_dist {
        KeyDistribution::KeyInd => decompose_key_ind(xs, ys),
        KeyDistribution::KeyDep => decompose_key_dep(xs, ys),
    }
}

fn feature_dtype(xs: &[Value]) -> DataType {
    xs.iter().find_map(Value::dtype).unwrap_or(DataType::Float)
}

fn decompose_key_ind(xs: &[Value], ys: &[Value]) -> DecomposedPair {
    let n = xs.len() as i64;
    let keys: Vec<i64> = (0..n).collect();
    let train = Table::builder("train")
        .push_int_column("key", keys.clone())
        .push_value_column("y", target_dtype(ys), ys)
        .expect("target values are homogeneous")
        .build()
        .expect("aligned columns");
    let cand = Table::builder("cand")
        .push_int_column("key", keys)
        .push_value_column("x", feature_dtype(xs), xs)
        .expect("feature values are homogeneous")
        .build()
        .expect("aligned columns");
    DecomposedPair {
        train,
        cand,
        key_column: "key".to_owned(),
        target_column: "y".to_owned(),
        feature_column: "x".to_owned(),
        aggregation: Aggregation::First,
        key_distribution: KeyDistribution::KeyInd,
    }
}

fn decompose_key_dep(xs: &[Value], ys: &[Value]) -> DecomposedPair {
    assert!(!xs.is_empty(), "KeyDep requires a non-empty sample");
    // The key of each train row is the feature value itself; the candidate
    // table has one row per distinct feature value mapping the key back to
    // the value. Keys are stored as strings so that float features (which
    // would make every key unique anyway) are rejected upstream by the
    // experiment design, as in the paper.
    let train_keys: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
    let mut seen: HashSet<String> = HashSet::new();
    let mut cand_keys: Vec<String> = Vec::new();
    let mut cand_values: Vec<Value> = Vec::new();
    for x in xs {
        let k = format!("{x}");
        if seen.insert(k.clone()) {
            cand_keys.push(k);
            cand_values.push(x.clone());
        }
    }

    let train = Table::builder("train")
        .push_str_column("key", train_keys)
        .push_value_column("y", target_dtype(ys), ys)
        .expect("target values are homogeneous")
        .build()
        .expect("aligned columns");
    let cand = Table::builder("cand")
        .push_str_column("key", cand_keys)
        .push_value_column("x", feature_dtype(xs), &cand_values)
        .expect("feature values are homogeneous")
        .build()
        .expect("aligned columns");
    DecomposedPair {
        train,
        cand,
        key_column: "key".to_owned(),
        target_column: "y".to_owned(),
        feature_column: "x".to_owned(),
        aggregation: Aggregation::First,
        key_distribution: KeyDistribution::KeyDep,
    }
}

fn target_dtype(ys: &[Value]) -> DataType {
    ys.iter().find_map(Value::dtype).unwrap_or(DataType::Float)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::{augment, AugmentSpec};

    fn sample_pairs() -> (Vec<Value>, Vec<Value>) {
        let xs = vec![
            Value::Int(5),
            Value::Int(2),
            Value::Int(5),
            Value::Int(9),
            Value::Int(2),
        ];
        let ys = vec![
            Value::Int(50),
            Value::Int(20),
            Value::Int(51),
            Value::Int(90),
            Value::Int(21),
        ];
        (xs, ys)
    }

    fn rejoin(pair: &DecomposedPair) -> (Vec<Value>, Vec<Value>) {
        let spec = AugmentSpec::new(
            pair.key_column.clone(),
            pair.target_column.clone(),
            pair.key_column.clone(),
            pair.feature_column.clone(),
            pair.aggregation,
        );
        let joined = augment(&pair.train, &pair.cand, &spec).unwrap();
        let feature_col = spec.feature_column_name();
        let xs: Vec<Value> = (0..joined.table.num_rows())
            .map(|i| joined.table.value(i, &feature_col).unwrap())
            .collect();
        let ys: Vec<Value> = (0..joined.table.num_rows())
            .map(|i| joined.table.value(i, &pair.target_column).unwrap())
            .collect();
        (xs, ys)
    }

    #[test]
    fn key_ind_round_trips_exactly() {
        let (xs, ys) = sample_pairs();
        let pair = decompose(&xs, &ys, KeyDistribution::KeyInd);
        assert_eq!(pair.train.num_rows(), 5);
        assert_eq!(pair.cand.num_rows(), 5);
        let (rx, ry) = rejoin(&pair);
        assert_eq!(rx, xs);
        assert_eq!(ry, ys);
    }

    #[test]
    fn key_dep_round_trips_exactly() {
        let (xs, ys) = sample_pairs();
        let pair = decompose(&xs, &ys, KeyDistribution::KeyDep);
        // Candidate table has one row per distinct X value.
        assert_eq!(pair.cand.num_rows(), 3);
        assert_eq!(pair.train.num_rows(), 5);
        let (rx, ry) = rejoin(&pair);
        assert_eq!(rx, xs);
        assert_eq!(ry, ys);
    }

    #[test]
    fn key_dep_key_frequencies_follow_feature_distribution() {
        let xs = vec![Value::Int(1), Value::Int(1), Value::Int(1), Value::Int(2)];
        let ys = vec![Value::Int(0); 4];
        let pair = decompose(&xs, &ys, KeyDistribution::KeyDep);
        let keys: Vec<Value> = (0..4)
            .map(|i| pair.train.value(i, "key").unwrap())
            .collect();
        assert_eq!(keys.iter().filter(|k| **k == Value::from("1")).count(), 3);
        assert_eq!(keys.iter().filter(|k| **k == Value::from("2")).count(), 1);
    }

    #[test]
    fn key_ind_keys_are_unique() {
        let (xs, ys) = sample_pairs();
        let pair = decompose(&xs, &ys, KeyDistribution::KeyInd);
        let key_col = pair.train.column("key").unwrap();
        assert_eq!(key_col.distinct_count(), 5);
        assert_eq!(pair.key_distribution, KeyDistribution::KeyInd);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        let _ = decompose(&[Value::Int(1)], &[], KeyDistribution::KeyInd);
    }
}
