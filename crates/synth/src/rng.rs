//! Small random-sampling helpers shared by the generators.

use rand::Rng;

/// Box–Muller standard-normal sampler with a cached second variate.
#[derive(Debug, Clone, Default)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler.
    #[must_use]
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// Draws one standard-normal variate using the supplied RNG.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// Samples one index from a categorical distribution given cumulative
/// probabilities (`cdf` must be non-decreasing and end at ~1.0).
pub fn sample_cdf<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite probabilities")) {
        Ok(i) | Err(i) => i.min(cdf.len().saturating_sub(1)),
    }
}

/// Builds the cumulative distribution of a Zipf-like law with the given
/// exponent over `n` ranks (rank 0 is the most frequent).
#[must_use]
pub fn zipf_cdf(n: usize, exponent: f64) -> Vec<f64> {
    assert!(n > 0, "zipf domain must be non-empty");
    let mut weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = GaussianSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_normalized() {
        let cdf = zipf_cdf(100, 1.1);
        assert_eq!(cdf.len(), 100);
        assert!((cdf[99] - 1.0).abs() < 1e-9);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Rank 0 carries the largest single mass.
        assert!(cdf[0] > 1.0 / 100.0);
    }

    #[test]
    fn sample_cdf_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let cdf = zipf_cdf(10, 1.5);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[sample_cdf(&cdf, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[9]);
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_domain() {
        let _ = zipf_cdf(0, 1.0);
    }
}
