//! Synthetic benchmark data generators with analytically known mutual
//! information (Section V-A of the paper).
//!
//! The evaluation needs data where the *true* MI is known so that estimator
//! and sketch error can be measured. Two families are provided:
//!
//! * [`trinomial`] — `(X, Y)` drawn from a trinomial (three-outcome
//!   multinomial) distribution whose parameters are solved from a target MI
//!   via the bivariate-normal approximation; the exact MI is then computed
//!   from the open-form entropy of the distribution.
//! * [`cdunif`] — the discrete–continuous pair of Gao et al.: `X` uniform on
//!   `{0..m−1}` and `Y | X ~ U[X, X+2]`, with closed-form
//!   `I = ln m − (m−1) ln 2 / m`.
//!
//! [`decompose`](mod@decompose) splits the generated `(X, Y)` pairs into two joinable tables
//! (`Ttrain[K_Y, Y]`, `Tcand[K_X, X]`) under the paper's two key-generation
//! regimes (`KeyInd`, `KeyDep`), [`opendata`] simulates open-data-portal
//! collections for the real-data experiments (see DESIGN.md §5 for the
//! substitution rationale), and [`scenario`] builds the taxi / weather /
//! demographics example of Figure 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdunif;
pub mod decompose;
pub mod opendata;
pub mod rng;
pub mod scenario;
pub mod trinomial;

pub use cdunif::CdUnifConfig;
pub use decompose::{decompose, DecomposedPair, KeyDistribution};
pub use opendata::{OpenDataCollection, OpenDataConfig};
pub use rng::GaussianSampler;
pub use scenario::TaxiScenario;
pub use trinomial::TrinomialConfig;

/// A generated paired sample together with its analytically known MI.
#[derive(Debug, Clone)]
pub struct GeneratedPair {
    /// Feature values (`X`).
    pub xs: Vec<joinmi_table::Value>,
    /// Target values (`Y`).
    pub ys: Vec<joinmi_table::Value>,
    /// The exact mutual information of the generating distribution, in nats.
    pub true_mi: f64,
    /// Number of distinct values the generating distribution can produce for
    /// `X` (the paper's `m` parameter).
    pub m: u32,
}
