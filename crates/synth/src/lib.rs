//! Synthetic benchmark data generators with analytically known mutual
//! information (Section V-A of the paper).
//!
//! The evaluation needs data where the *true* MI is known so that estimator
//! and sketch error can be measured. Two families are provided:
//!
//! * [`trinomial`] — `(X, Y)` drawn from a trinomial (three-outcome
//!   multinomial) distribution whose parameters are solved from a target MI
//!   via the bivariate-normal approximation; the exact MI is then computed
//!   from the open-form entropy of the distribution.
//! * [`cdunif`] — the discrete–continuous pair of Gao et al.: `X` uniform on
//!   `{0..m−1}` and `Y | X ~ U[X, X+2]`, with closed-form
//!   `I = ln m − (m−1) ln 2 / m`.
//!
//! [`decompose`](mod@decompose) splits the generated `(X, Y)` pairs into two joinable tables
//! (`Ttrain[K_Y, Y]`, `Tcand[K_X, X]`) under the paper's two key-generation
//! regimes (`KeyInd`, `KeyDep`), [`opendata`] simulates open-data-portal
//! collections for the real-data experiments (see DESIGN.md §5 for the
//! substitution rationale), and [`scenario`] builds the taxi / weather /
//! demographics example of Figure 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdunif;
pub mod decompose;
pub mod opendata;
pub mod rng;
pub mod scenario;
pub mod trinomial;

pub use cdunif::CdUnifConfig;
pub use decompose::{decompose, DecomposedPair, KeyDistribution};
pub use opendata::{OpenDataCollection, OpenDataConfig};
pub use rng::GaussianSampler;
pub use scenario::TaxiScenario;
pub use trinomial::TrinomialConfig;

/// A generated paired sample together with its analytically known MI.
#[derive(Debug, Clone)]
pub struct GeneratedPair {
    /// Feature values (`X`).
    pub xs: Vec<joinmi_table::Value>,
    /// Target values (`Y`).
    pub ys: Vec<joinmi_table::Value>,
    /// The exact mutual information of the generating distribution, in nats.
    pub true_mi: f64,
    /// Number of distinct values the generating distribution can produce for
    /// `X` (the paper's `m` parameter).
    pub m: u32,
}

impl GeneratedPair {
    /// Returns the pair with approximately `null_fraction` of the `X` and
    /// `Y` entries independently replaced by NULL, deterministically in
    /// `seed` — the NULL-heavy-corpus knob of the calibration experiments.
    ///
    /// `true_mi` is left untouched: it remains the MI of the generating
    /// distribution, which is also the MI of the complete (both-sides
    /// non-NULL) pairs because nulling is independent of the values. A
    /// downstream join or estimator is expected to drop incomplete pairs,
    /// exactly as the sketch-join path does.
    ///
    /// # Panics
    /// Panics unless `0 ≤ null_fraction < 1`.
    #[must_use]
    pub fn with_null_fraction(mut self, null_fraction: f64, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(
            (0.0..1.0).contains(&null_fraction),
            "null_fraction must be in [0, 1), got {null_fraction}"
        );
        if null_fraction == 0.0 {
            return self;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for v in self.xs.iter_mut().chain(self.ys.iter_mut()) {
            if rng.gen::<f64>() < null_fraction {
                *v = joinmi_table::Value::Null;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinmi_table::Value;

    #[test]
    fn null_fraction_nulls_roughly_the_requested_share() {
        let cfg = TrinomialConfig::new(16, 0.3, 0.3);
        let pair = cfg.generate(4000, 1).with_null_fraction(0.25, 9);
        let nulls = |vs: &[Value]| vs.iter().filter(|v| v.is_null()).count();
        let x_nulls = nulls(&pair.xs) as f64 / pair.xs.len() as f64;
        let y_nulls = nulls(&pair.ys) as f64 / pair.ys.len() as f64;
        assert!((x_nulls - 0.25).abs() < 0.03, "x null share {x_nulls}");
        assert!((y_nulls - 0.25).abs() < 0.03, "y null share {y_nulls}");
        // The analytical MI is untouched.
        assert_eq!(pair.true_mi, cfg.true_mi());
    }

    #[test]
    fn null_fraction_is_deterministic_and_zero_is_identity() {
        let cfg = TrinomialConfig::new(8, 0.3, 0.4);
        let a = cfg.generate(500, 2).with_null_fraction(0.4, 11);
        let b = cfg.generate(500, 2).with_null_fraction(0.4, 11);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
        let clean = cfg.generate(500, 2);
        let same = cfg.generate(500, 2).with_null_fraction(0.0, 11);
        assert_eq!(clean.xs, same.xs);
    }

    #[test]
    #[should_panic(expected = "null_fraction")]
    fn null_fraction_rejects_out_of_range() {
        let _ = TrinomialConfig::new(8, 0.3, 0.4)
            .generate(10, 0)
            .with_null_fraction(1.0, 0);
    }
}
