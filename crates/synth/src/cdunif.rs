//! The CDUnif benchmark distribution (Gao et al. 2017, used in Section V-A).
//!
//! `X` is uniform over the integers `{0, 1, …, m−1}` and `Y | X = x` is
//! uniform on `[x, x+2]`. Because consecutive intervals overlap by half, the
//! closed-form mutual information is
//!
//! `I(X; Y) = ln m − (m − 1) · ln 2 / m`.
//!
//! `Y` is continuous while `X` is discrete, so only the MixedKSG and DC-KSG
//! estimators apply without data transformation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinmi_table::Value;

use crate::GeneratedPair;

/// Configuration of one CDUnif data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdUnifConfig {
    /// Number of distinct values of `X`.
    pub m: u32,
}

impl CdUnifConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    #[must_use]
    pub fn new(m: u32) -> Self {
        assert!(m >= 1, "m must be positive");
        Self { m }
    }

    /// Closed-form mutual information in nats.
    #[must_use]
    pub fn true_mi(&self) -> f64 {
        let m = f64::from(self.m);
        m.ln() - (m - 1.0) * 2.0_f64.ln() / m
    }

    /// Draws `n` samples `(x, y)`.
    #[must_use]
    pub fn sample(&self, n: usize, seed: u64) -> (Vec<i64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.gen_range(0..self.m);
            let y = f64::from(x) + 2.0 * rng.gen::<f64>();
            xs.push(i64::from(x));
            ys.push(y);
        }
        (xs, ys)
    }

    /// Draws `n` samples and packages them with the closed-form MI.
    #[must_use]
    pub fn generate(&self, n: usize, seed: u64) -> GeneratedPair {
        let (xs, ys) = self.sample(n, seed);
        GeneratedPair {
            xs: xs.into_iter().map(Value::Int).collect(),
            ys: ys.into_iter().map(Value::Float).collect(),
            true_mi: self.true_mi(),
            m: self.m,
        }
    }

    /// The `m` that produces a given target MI (inverse of [`true_mi`],
    /// rounded to the nearest integer ≥ 1). Useful for sweeping MI levels.
    ///
    /// [`true_mi`]: CdUnifConfig::true_mi
    #[must_use]
    pub fn m_for_target_mi(target: f64) -> u32 {
        // Solve ln m − (m−1) ln2 / m = target by bisection on m ∈ [1, 2^40].
        let f = |m: f64| m.ln() - (m - 1.0) * 2.0_f64.ln() / m;
        let (mut lo, mut hi) = (1.0f64, 1.0e12f64);
        if target <= 0.0 {
            return 1;
        }
        for _ in 0..200 {
            let mid = (lo + hi) / 2.0;
            if f(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo.round().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_values() {
        // m = 1: X is constant, I = 0.
        assert!(CdUnifConfig::new(1).true_mi().abs() < 1e-12);
        // m = 2: ln 2 − ln 2 / 2 = ln 2 / 2.
        assert!((CdUnifConfig::new(2).true_mi() - 0.5 * 2.0_f64.ln()).abs() < 1e-12);
        // m = 256 ≈ 4.85 (quoted in Section V-B4).
        assert!((CdUnifConfig::new(256).true_mi() - 4.85).abs() < 0.01);
    }

    #[test]
    fn sample_ranges_are_respected() {
        let cfg = CdUnifConfig::new(8);
        let (xs, ys) = cfg.sample(10_000, 5);
        assert!(xs.iter().all(|&x| (0..8).contains(&x)));
        for (&x, &y) in xs.iter().zip(&ys) {
            assert!(y >= x as f64 && y <= x as f64 + 2.0);
        }
        // All 8 values appear.
        let mut seen = xs.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn estimator_recovers_closed_form() {
        let cfg = CdUnifConfig::new(16);
        let (xs, ys) = cfg.sample(8000, 11);
        let x_codes: Vec<u32> = xs.iter().map(|&v| v as u32).collect();
        let est = joinmi_estimators::dc_ksg_mi(&x_codes, &ys, 3).unwrap();
        assert!(
            (est - cfg.true_mi()).abs() < 0.1,
            "est={est}, truth={}",
            cfg.true_mi()
        );
    }

    #[test]
    fn m_for_target_inverts_true_mi() {
        for m in [2u32, 10, 100, 777] {
            let target = CdUnifConfig::new(m).true_mi();
            let recovered = CdUnifConfig::m_for_target_mi(target);
            assert!(
                (i64::from(recovered) - i64::from(m)).abs() <= 1,
                "m={m}, recovered={recovered}"
            );
        }
        assert_eq!(CdUnifConfig::m_for_target_mi(0.0), 1);
    }

    #[test]
    fn generate_packs_types_correctly() {
        let pair = CdUnifConfig::new(4).generate(50, 2);
        assert!(matches!(pair.xs[0], Value::Int(_)));
        assert!(matches!(pair.ys[0], Value::Float(_)));
        assert_eq!(pair.m, 4);
    }
}
