//! `JOINMI_THREADS` environment handling, isolated in its own integration
//! test binary (= its own process) so mutating the process environment cannot
//! race with other tests.

use joinmi_par::{num_threads, par_map, with_threads};

#[test]
fn env_var_sets_default_thread_count_and_results_stay_identical() {
    let items: Vec<u64> = (0..4096).collect();
    let f = |&x: &u64| x.wrapping_mul(2_654_435_761).rotate_left(11);
    let want: Vec<u64> = items.iter().map(f).collect();

    std::env::set_var("JOINMI_THREADS", "1");
    assert_eq!(num_threads(), 1);
    let sequential = par_map(&items, f);

    std::env::set_var("JOINMI_THREADS", "4");
    assert_eq!(num_threads(), 4);
    let parallel = par_map(&items, f);

    assert_eq!(sequential, want);
    assert_eq!(parallel, want);

    // Invalid values fall back to the machine default rather than panicking.
    std::env::set_var("JOINMI_THREADS", "not-a-number");
    assert!(num_threads() >= 1);

    // An explicit override wins over the environment.
    std::env::set_var("JOINMI_THREADS", "2");
    assert_eq!(with_threads(7, num_threads), 7);

    std::env::remove_var("JOINMI_THREADS");
}
