//! Property tests: every `par_*` entry point must be bit-for-bit identical to
//! its sequential equivalent, for arbitrary inputs and thread counts.

use joinmi_par::{par_map, par_map_chunked, par_map_index, par_map_with, with_threads};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_matches_sequential(
        items in proptest::collection::vec(0u64..1_000_000, 0..400),
        threads in 1usize..9,
    ) {
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7);
        let want: Vec<u64> = items.iter().map(f).collect();
        let got = with_threads(threads, || par_map(&items, f));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn par_map_index_matches_sequential(n in 0usize..500, threads in 1usize..9) {
        let f = |i: usize| (i as u64).wrapping_mul(31).wrapping_add(17);
        let want: Vec<u64> = (0..n).map(f).collect();
        let got = with_threads(threads, || par_map_index(n, f));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn par_map_chunked_matches_sequential(
        items in proptest::collection::vec(-500i64..500, 0..300),
        chunk in 1usize..64,
        threads in 1usize..9,
    ) {
        let want: Vec<i64> = items.iter().enumerate().map(|(i, &x)| x - i as i64).collect();
        let got = with_threads(threads, || {
            par_map_chunked(&items, chunk, |offset, chunk_items| {
                chunk_items
                    .iter()
                    .enumerate()
                    .map(|(j, &x)| x - (offset + j) as i64)
                    .collect()
            })
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn par_map_with_scratch_matches_sequential(
        items in proptest::collection::vec(0u32..10_000, 0..300),
        threads in 1usize..9,
    ) {
        // The scratch is a reusable buffer; its contents must never leak
        // between items in a way that changes results.
        let want: Vec<u32> = items.iter().map(|&x| x / 2 + x % 7).collect();
        let got = with_threads(threads, || {
            par_map_with(
                &items,
                Vec::<u32>::new,
                |buf, &x| {
                    buf.clear();
                    buf.push(x / 2);
                    buf.push(x % 7);
                    buf.iter().sum::<u32>()
                },
            )
        });
        prop_assert_eq!(got, want);
    }
}
