//! Scoped-thread parallel execution primitives for `joinmi`.
//!
//! The build environment has no crate-registry access, so instead of `rayon`
//! this crate provides a small work-stealing-lite layer built entirely on
//! [`std::thread::scope`]:
//!
//! * [`par_map`] — map a function over a slice, one result per item;
//! * [`par_map_chunked`] — map a function over contiguous chunks of a slice;
//! * [`par_map_index`] / [`par_map_index_with`] — map over an index range
//!   `0..n`, optionally with a per-worker scratch state that is created once
//!   per worker thread and reused across all items that worker processes;
//! * [`par_map_with`] — slice variant of the scratch-state map.
//!
//! # Determinism
//!
//! Every function in this crate guarantees that the **output order equals the
//! input order** regardless of how many threads run or how chunks are
//! interleaved: workers claim chunk indices from an atomic cursor, tag each
//! produced chunk with its index, and the results are reassembled in index
//! order. Combined with pure per-item functions this makes parallel runs
//! bit-for-bit identical to sequential runs — the property the sketch
//! pipeline's tests assert.
//!
//! # Thread-count selection
//!
//! The worker count is resolved per call, in priority order:
//!
//! 1. an active [`with_threads`] override on the calling thread (used by
//!    tests and benchmarks so they never have to mutate process-global
//!    environment variables);
//! 2. the `JOINMI_THREADS` environment variable (a positive integer);
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested parallelism is suppressed: a `par_*` call made from inside a worker
//! of an enclosing `par_*` call runs sequentially on that worker, so wiring
//! parallelism through several layers (discovery → estimators) can never
//! multiply thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable controlling the default worker count.
pub const THREADS_ENV_VAR: &str = "JOINMI_THREADS";

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while the current thread is executing chunks on behalf of an
    /// enclosing `par_*` call; nested calls then run sequentially.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Parses a `JOINMI_THREADS`-style value. Returns `None` for anything that is
/// not a positive integer.
#[must_use]
pub fn parse_thread_count(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// The number of worker threads a `par_*` call made right now would use.
///
/// Resolution order: [`with_threads`] override → `JOINMI_THREADS` → available
/// parallelism → 1. Inside a parallel region this always returns 1 so nested
/// parallelism cannot multiply thread counts.
#[must_use]
pub fn num_threads() -> usize {
    if IN_PARALLEL_REGION.with(Cell::get) {
        return 1;
    }
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(value) = std::env::var(THREADS_ENV_VAR) {
        if let Some(n) = parse_thread_count(&value) {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` with the calling thread's worker count pinned to `threads`.
///
/// The override is thread-local and restored when `f` returns (or panics), so
/// concurrent tests can pin different counts without racing on the process
/// environment. `JOINMI_THREADS` is ignored while an override is active.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let previous = THREAD_OVERRIDE.with(|cell| cell.replace(Some(threads.max(1))));
    let _restore = Restore(previous);
    f()
}

/// Chunk size heuristic: enough chunks per worker for load balancing without
/// drowning small workloads in coordination overhead.
fn default_chunk_size(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.saturating_mul(4).max(1)).max(1)
}

/// The core runner: claims chunk indices `0..num_chunks` from an atomic
/// cursor across `threads` workers (the calling thread participates), runs
/// `run_chunk` with a per-worker scratch created by `init`, and returns the
/// chunk outputs **in chunk-index order**.
fn run_chunks_with<S, U, I, F>(
    num_chunks: usize,
    threads: usize,
    init: I,
    run_chunk: F,
) -> Vec<Vec<U>>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Vec<U> + Sync,
{
    if num_chunks == 0 {
        return Vec::new();
    }
    if threads <= 1 || num_chunks == 1 {
        let mut scratch = init();
        return (0..num_chunks)
            .map(|c| enter_parallel_region(|| run_chunk(&mut scratch, c)))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(num_chunks));
    let worker = || {
        enter_parallel_region(|| {
            let mut scratch = init();
            loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                let out = run_chunk(&mut scratch, c);
                results
                    .lock()
                    .expect("no panics while holding lock")
                    .push((c, out));
            }
        });
    };
    std::thread::scope(|scope| {
        // The calling thread is worker 0; spawn the rest.
        for _ in 1..threads.min(num_chunks) {
            scope.spawn(worker);
        }
        worker();
    });

    let mut collected = results.into_inner().expect("no panics while holding lock");
    collected.sort_unstable_by_key(|&(c, _)| c);
    collected.into_iter().map(|(_, out)| out).collect()
}

/// Marks the current thread as being inside a parallel region for the
/// duration of `f`, making nested `par_*` calls sequential.
fn enter_parallel_region<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_PARALLEL_REGION.with(|cell| cell.set(self.0));
        }
    }
    let previous = IN_PARALLEL_REGION.with(|cell| cell.replace(true));
    let _restore = Restore(previous);
    f()
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — bit-for-bit, for pure `f`
/// — but spread over [`num_threads`] workers.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(items, || (), move |(), item| f(item))
}

/// Maps `f` over `items` in parallel with a per-worker scratch state.
///
/// `init` runs once per worker thread; the scratch it produces is reused for
/// every item that worker processes (the allocation-recycling pattern used by
/// the k-NN search). Results are in input order.
pub fn par_map_with<T, S, U, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let threads = num_threads();
    let chunk_size = default_chunk_size(items.len(), threads);
    let chunks = run_chunks_with(
        items.len().div_ceil(chunk_size.max(1)),
        threads,
        init,
        |scratch, c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(items.len());
            items[start..end]
                .iter()
                .map(|item| f(scratch, item))
                .collect()
        },
    );
    flatten(chunks, items.len())
}

/// Maps `f` over explicit contiguous chunks of `items` in parallel.
///
/// `f` receives the offset of the chunk within `items` and the chunk itself,
/// and must return one output per chunk element; outputs are concatenated in
/// input order. Useful when per-chunk setup (sorting, buffers) should be
/// amortized over many items.
///
/// # Panics
/// Panics if `f` returns a chunk output whose length differs from the chunk.
pub fn par_map_chunked<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> Vec<U> + Sync,
{
    let chunk_size = chunk_size.max(1);
    let threads = num_threads();
    let chunks = run_chunks_with(
        items.len().div_ceil(chunk_size),
        threads,
        || (),
        |(), c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(items.len());
            let out = f(start, &items[start..end]);
            assert_eq!(
                out.len(),
                end - start,
                "par_map_chunked: chunk function must return one output per element"
            );
            out
        },
    );
    flatten(chunks, items.len())
}

/// Maps `f` over fixed-size chunks of `0..len` in parallel, returning **one
/// output per chunk** in chunk-index order.
///
/// Unlike the per-item maps, the chunk boundaries here depend only on
/// `chunk_size` — never on the worker count — so a fixed-order reduction over
/// the outputs (e.g. summing per-chunk partial sums left to right) is
/// bit-for-bit identical across thread counts. This is the primitive behind
/// the estimators' parallel deterministic accumulation loops.
pub fn par_map_ranges<U, F>(len: usize, chunk_size: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> U + Sync,
{
    let chunk_size = chunk_size.max(1);
    let chunks = run_chunks_with(
        len.div_ceil(chunk_size),
        num_threads(),
        || (),
        |(), c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(len);
            vec![f(start..end)]
        },
    );
    chunks.into_iter().flatten().collect()
}

/// Maps `f` over the index range `0..n` in parallel, in index order.
pub fn par_map_index<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_index_with(n, || (), move |(), i| f(i))
}

/// Maps `f` over `0..n` in parallel with a per-worker scratch state created
/// by `init` and reused across all indices a worker processes.
pub fn par_map_index_with<S, U, I, F>(n: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let threads = num_threads();
    let chunk_size = default_chunk_size(n, threads);
    let chunks = run_chunks_with(
        n.div_ceil(chunk_size.max(1)),
        threads,
        init,
        |scratch, c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(n);
            (start..end).map(|i| f(scratch, i)).collect()
        },
    );
    flatten(chunks, n)
}

fn flatten<U>(chunks: Vec<Vec<U>>, len: usize) -> Vec<U> {
    let mut out = Vec::with_capacity(len);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || par_map(&items, |&x| x * x));
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_index_matches_sequential() {
        for n in [0usize, 1, 5, 1000] {
            for threads in [1, 4] {
                let got = with_threads(threads, || par_map_index(n, |i| i * 3));
                let want: Vec<usize> = (0..n).map(|i| i * 3).collect();
                assert_eq!(got, want, "n={n}, threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_chunked_concatenates_in_order() {
        let items: Vec<i64> = (0..997).collect();
        for chunk in [1usize, 7, 100, 5000] {
            let got = with_threads(4, || {
                par_map_chunked(&items, chunk, |offset, chunk_items| {
                    chunk_items
                        .iter()
                        .enumerate()
                        .map(|(j, &x)| x + (offset + j) as i64)
                        .collect()
                })
            });
            let want: Vec<i64> = items.iter().map(|&x| 2 * x).collect();
            assert_eq!(got, want, "chunk={chunk}");
        }
    }

    #[test]
    fn scratch_state_is_reused_not_shared() {
        // Each worker counts how many items it processed in its scratch; the
        // total over all outputs must equal the item count exactly once each.
        let n = 5000usize;
        let outputs = with_threads(4, || {
            par_map_index_with(
                n,
                || 0usize,
                |count, i| {
                    *count += 1;
                    (i, *count)
                },
            )
        });
        assert_eq!(outputs.len(), n);
        for (pos, &(i, count)) in outputs.iter().enumerate() {
            assert_eq!(i, pos);
            assert!(count >= 1);
        }
    }

    #[test]
    fn par_map_ranges_covers_every_index_once() {
        for len in [0usize, 1, 7, 1000] {
            for chunk in [1usize, 3, 256, 5000] {
                let ranges = with_threads(4, || par_map_ranges(len, chunk, |r| r));
                let flat: Vec<usize> = ranges.into_iter().flatten().collect();
                let want: Vec<usize> = (0..len).collect();
                assert_eq!(flat, want, "len={len}, chunk={chunk}");
            }
        }
    }

    #[test]
    fn par_map_ranges_chunk_boundaries_do_not_depend_on_threads() {
        // The determinism contract: identical chunking (and therefore an
        // identical fixed-order float reduction) at any worker count.
        let values: Vec<f64> = (0..10_007).map(|i| (i as f64).sqrt()).collect();
        let sum_with = |threads: usize| {
            with_threads(threads, || {
                par_map_ranges(values.len(), 512, |r| values[r].iter().sum::<f64>())
                    .into_iter()
                    .sum::<f64>()
            })
        };
        let t1 = sum_with(1);
        for threads in [2, 4, 7] {
            assert_eq!(
                t1.to_bits(),
                sum_with(threads).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = num_threads();
        let inner = with_threads(3, num_threads);
        assert_eq!(inner, 3);
        assert_eq!(num_threads(), outer);
        // Zero is clamped to one.
        assert_eq!(with_threads(0, num_threads), 1);
    }

    #[test]
    fn nested_parallelism_is_sequential() {
        let depths = with_threads(4, || {
            par_map_index(8, |_| {
                // Inside a worker the resolved thread count must be 1.
                num_threads()
            })
        });
        assert!(depths.iter().all(|&d| d == 1), "nested counts: {depths:?}");
    }

    #[test]
    fn parse_thread_count_rejects_junk() {
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 12 "), Some(12));
        assert_eq!(parse_thread_count("0"), None);
        assert_eq!(parse_thread_count("-3"), None);
        assert_eq!(parse_thread_count("lots"), None);
        assert_eq!(parse_thread_count(""), None);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(2, || {
                par_map_index(64, |i| {
                    assert!(i != 13, "intentional test panic");
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
