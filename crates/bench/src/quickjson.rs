//! Reading, writing, and comparing the quick-bench JSON.
//!
//! The quick benchmark emits a flat `{"bench/name": median_ns, ...}` object.
//! This module owns that format end to end — rendering, a dependency-free
//! parser, and the regression comparison the `bench-smoke` CI job runs
//! against the committed baseline — so the workflow never has to know key
//! names or thresholds.

use std::fmt::Write as _;

/// Bench medians gated unconditionally by [`compare_quick_bench`]: the
/// sketch-path hot loops whose regressions the paper's efficiency claim
/// cannot absorb, the PR 4 estimator-kernel medians (the blocked Chebyshev
/// k-NN kernel and the KSG estimate built on it), the PR 7 cross-query
/// stage-cache speedups (warm hit path vs. cold execution — gated so the
/// cache never silently degrades into re-doing the work it claims to skip),
/// the PR 8 compacted-load speedup (loading a compacted+sealed file vs.
/// replaying its append log — gated so compaction keeps paying for itself),
/// and the PR 10 early-termination speedup (interval top-k vs. exhaustive
/// interval scoring on the skewed corpus — gated so the screening bound
/// keeps actually skipping the weak tail).
pub const GATED_MEDIANS: [&str; 8] = [
    "sketch_join/tupsk_n256",
    "estimators/mle_on_sketch_join",
    "knn/chebyshev_n4096",
    "estimators/ksg_n4096",
    "cache/estimate_hit_speedup",
    "cache/join_hit_speedup",
    "store/compacted_load_speedup",
    "query/early_term_speedup",
];

/// Returns `true` for medians where *larger is better* (speedup ratios, not
/// wall nanoseconds). The comparison direction flips for these: a regression
/// is the current value dropping below `baseline / (1 + max_regression)`.
#[must_use]
pub fn higher_is_better(name: &str) -> bool {
    name.contains("speedup")
}

/// Pipeline medians gated only when **both** the baseline and the current
/// host report more than one core (`host/available_parallelism`): on a
/// 1-core container the 4-thread run measures scheduler noise, not the code.
pub const PARALLEL_GATED_MEDIANS: [&str; 2] = [
    "pipeline/ingest32x8_query/threads=1",
    "pipeline/ingest32x8_query/threads=4",
];

/// Key recording the host's core count inside the quick-bench JSON.
pub const HOST_PARALLELISM_KEY: &str = "host/available_parallelism";

/// Renders results as a flat JSON object (insertion order preserved).
#[must_use]
pub fn render(results: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{name}\": {value:.1}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Parses a flat `{"name": number, ...}` JSON object as written by
/// [`render`] (whitespace-tolerant; no nesting, strings only in key
/// position).
pub fn parse(text: &str) -> Result<Vec<(String, f64)>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or_else(|| "quick-bench JSON must be a single object".to_owned())?;
    let mut entries = Vec::new();
    for raw_pair in split_top_level_commas(body) {
        let pair = raw_pair.trim();
        if pair.is_empty() {
            continue;
        }
        let rest = pair
            .strip_prefix('"')
            .ok_or_else(|| format!("expected quoted key in `{pair}`"))?;
        let (name, after_key) = rest
            .split_once('"')
            .ok_or_else(|| format!("unterminated key in `{pair}`"))?;
        let value_text = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("missing `:` after key `{name}`"))?
            .trim();
        let value: f64 = value_text
            .parse()
            .map_err(|_| format!("`{name}`: `{value_text}` is not a number"))?;
        entries.push((name.to_owned(), value));
    }
    if entries.is_empty() {
        return Err("quick-bench JSON holds no entries".to_owned());
    }
    Ok(entries)
}

/// Splits an object body on commas (keys are the only strings and contain no
/// commas or escapes, so top-level == every comma).
fn split_top_level_commas(body: &str) -> impl Iterator<Item = &str> {
    body.split(',')
}

/// Looks up one bench entry by exact name.
#[must_use]
pub fn lookup(entries: &[(String, f64)], name: &str) -> Option<f64> {
    entries.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// One gated median compared between baseline and current runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// Bench name.
    pub name: String,
    /// Baseline median (nanoseconds).
    pub baseline: f64,
    /// Current median (nanoseconds).
    pub current: f64,
    /// `current / baseline` (> 1 means slower for wall-time medians, faster
    /// for speedup medians — see [`higher_is_better`]).
    pub ratio: f64,
    /// `true` when the slowdown exceeds the allowed regression.
    pub regressed: bool,
}

/// Outcome of a baseline-vs-current comparison.
#[derive(Debug, Clone, Default)]
pub struct ComparisonReport {
    /// Medians that were compared.
    pub checked: Vec<BenchComparison>,
    /// Gated keys that were skipped, with the reason.
    pub skipped: Vec<String>,
    /// Current-run benches with no baseline entry — reported explicitly as
    /// "new (no baseline)" so a fresh bench is visible in the gate output
    /// instead of silently absent until the baseline is regenerated.
    pub new_benches: Vec<String>,
}

impl ComparisonReport {
    /// Returns `true` if any checked median regressed beyond the threshold.
    #[must_use]
    pub fn has_regression(&self) -> bool {
        self.checked.iter().any(|c| c.regressed)
    }
}

/// Compares a fresh quick-bench run against the committed baseline.
///
/// The medians in [`GATED_MEDIANS`] are always compared; a median more than
/// `max_regression` slower than baseline (e.g. `0.25` = +25%) marks the
/// report as regressed. Speedup medians (see [`higher_is_better`]) compare in
/// the opposite direction: they regress when the ratio falls below
/// `1 / (1 + max_regression)`. Pipeline medians are additionally compared when both
/// hosts report more than one core (see [`PARALLEL_GATED_MEDIANS`]). Keys
/// missing from the *baseline* are reported as `new_benches` (baselines may
/// predate a bench — never silently dropped); **any** gated key missing from
/// the *current* run is an error, including pipeline medians whose
/// comparison would be skipped for core counts — the bench suite must not
/// silently lose coverage.
pub fn compare_quick_bench(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    max_regression: f64,
) -> Result<ComparisonReport, String> {
    let mut report = ComparisonReport::default();
    let baseline_cores = lookup(baseline, HOST_PARALLELISM_KEY).unwrap_or(1.0);
    let current_cores = lookup(current, HOST_PARALLELISM_KEY).unwrap_or(1.0);
    let compare_pipeline = baseline_cores > 1.0 && current_cores > 1.0;

    let mut gate = |name: &str| -> Result<(), String> {
        let Some(current_value) = lookup(current, name) else {
            return Err(format!("current quick-bench JSON is missing `{name}`"));
        };
        let Some(baseline_value) = lookup(baseline, name) else {
            report
                .skipped
                .push(format!("{name}: not in baseline (new bench)"));
            return Ok(());
        };
        let ratio = if baseline_value > 0.0 {
            current_value / baseline_value
        } else {
            1.0
        };
        let regressed = if higher_is_better(name) {
            ratio < 1.0 / (1.0 + max_regression)
        } else {
            ratio > 1.0 + max_regression
        };
        report.checked.push(BenchComparison {
            name: name.to_owned(),
            baseline: baseline_value,
            current: current_value,
            ratio,
            regressed,
        });
        Ok(())
    };

    for name in GATED_MEDIANS {
        gate(name)?;
    }
    if compare_pipeline {
        for name in PARALLEL_GATED_MEDIANS {
            gate(name)?;
        }
    } else {
        for name in PARALLEL_GATED_MEDIANS {
            // Not comparable on this host pairing, but the median must still
            // exist in the current run — its absence means the bench suite
            // lost coverage, which the gate must not paper over.
            if lookup(current, name).is_none() {
                return Err(format!("current quick-bench JSON is missing `{name}`"));
            }
            report.skipped.push(format!(
                "{name}: host has 1 core (baseline {baseline_cores}, current {current_cores})"
            ));
        }
    }

    // Surface every bench that exists in the current run but not in the
    // baseline: new benches are part of the comparison story, not noise.
    report.new_benches = current
        .iter()
        .filter(|(name, _)| name != HOST_PARALLELISM_KEY && lookup(baseline, name).is_none())
        .map(|(name, _)| name.clone())
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|&(n, v)| (n.to_owned(), v)).collect()
    }

    #[test]
    fn render_parse_round_trip() {
        let data = entries(&[
            ("sketch_join/tupsk_n256", 3529.0),
            ("host/available_parallelism", 4.0),
        ]);
        let parsed = parse(&render(&data)).unwrap();
        assert_eq!(parsed, data);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[]").is_err());
        assert!(parse("{}").is_err());
        assert!(parse("{\"a\": nope}").is_err());
        assert!(parse("{\"a\" 1.0}").is_err());
    }

    /// All always-gated medians at the given value.
    fn gated(value: f64) -> Vec<(String, f64)> {
        GATED_MEDIANS
            .iter()
            .map(|&n| (n.to_owned(), value))
            .collect()
    }

    /// A complete current run: gated + pipeline medians (a current run must
    /// always carry every gated key, even ones skipped for core counts).
    fn complete_current(value: f64) -> Vec<(String, f64)> {
        let mut entries = gated(value);
        for name in PARALLEL_GATED_MEDIANS {
            entries.push((name.to_owned(), value));
        }
        entries
    }

    #[test]
    fn within_threshold_passes() {
        let mut baseline = gated(1000.0);
        baseline.push(("host/available_parallelism".to_owned(), 1.0));
        let mut current = complete_current(1200.0);
        current.push(("host/available_parallelism".to_owned(), 1.0));
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert!(!report.has_regression());
        assert_eq!(report.checked.len(), GATED_MEDIANS.len());
        // Pipeline medians skipped on the 1-core pairing.
        assert_eq!(report.skipped.len(), PARALLEL_GATED_MEDIANS.len());
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let baseline = gated(1000.0);
        let mut current = complete_current(1000.0);
        current[0].1 = 1251.0;
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert!(report.has_regression());
        let bad = &report.checked[0];
        assert!(bad.regressed);
        assert!(bad.ratio > 1.25);
    }

    #[test]
    fn pipeline_medians_gated_only_on_multicore_pairs() {
        let mut baseline = gated(1000.0);
        baseline.push(("pipeline/ingest32x8_query/threads=1".to_owned(), 100.0));
        baseline.push(("pipeline/ingest32x8_query/threads=4".to_owned(), 50.0));
        baseline.push(("host/available_parallelism".to_owned(), 4.0));
        let mut current = gated(1000.0);
        current.push(("pipeline/ingest32x8_query/threads=1".to_owned(), 300.0));
        current.push(("pipeline/ingest32x8_query/threads=4".to_owned(), 150.0));
        current.push(("host/available_parallelism".to_owned(), 4.0));
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert_eq!(
            report.checked.len(),
            GATED_MEDIANS.len() + PARALLEL_GATED_MEDIANS.len()
        );
        assert!(report.has_regression());

        // Same data, but the baseline host was 1-core: pipeline skipped.
        baseline.last_mut().unwrap().1 = 1.0;
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert_eq!(report.checked.len(), GATED_MEDIANS.len());
        assert!(!report.has_regression());
    }

    #[test]
    fn speedup_medians_gate_in_the_opposite_direction() {
        // A speedup that *rises* from 6x to 9x must pass even though the raw
        // ratio (1.5) is far beyond the +25% wall-time threshold…
        let mut baseline = gated(1000.0);
        let idx = GATED_MEDIANS
            .iter()
            .position(|&n| n == "cache/estimate_hit_speedup")
            .unwrap();
        baseline[idx].1 = 6.0;
        baseline.push(("host/available_parallelism".to_owned(), 1.0));
        let mut current = complete_current(1000.0);
        current[idx].1 = 9.0;
        current.push(("host/available_parallelism".to_owned(), 1.0));
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert!(!report.has_regression());

        // …and a speedup that *falls* below baseline / 1.25 must fail.
        current[idx].1 = 4.0; // 4.0 / 6.0 < 1 / 1.25
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert!(report.has_regression());
        let bad = report.checked.iter().find(|c| c.regressed).unwrap();
        assert_eq!(bad.name, "cache/estimate_hit_speedup");

        // A mild dip inside the tolerance band passes.
        current[idx].1 = 5.5; // 5.5 / 6.0 > 0.8
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert!(!report.has_regression());
    }

    #[test]
    fn missing_gated_key_in_current_is_an_error() {
        let baseline = entries(&[("sketch_join/tupsk_n256", 1000.0)]);
        let current = entries(&[("something_else", 1.0)]);
        assert!(compare_quick_bench(&baseline, &current, 0.25).is_err());
    }

    #[test]
    fn missing_pipeline_median_is_an_error_even_on_one_core_hosts() {
        // On a 1-core pairing pipeline medians are not *compared*, but a
        // current run that no longer emits them has lost bench coverage —
        // that must fail, not skip.
        let mut baseline = gated(1000.0);
        baseline.push(("host/available_parallelism".to_owned(), 1.0));
        let mut current = gated(1000.0);
        current.push(("host/available_parallelism".to_owned(), 1.0));
        assert!(compare_quick_bench(&baseline, &current, 0.25).is_err());
        for name in PARALLEL_GATED_MEDIANS {
            current.push((name.to_owned(), 123.0));
        }
        assert!(compare_quick_bench(&baseline, &current, 0.25).is_ok());
    }

    #[test]
    fn new_benches_are_reported_explicitly_not_silently_dropped() {
        let mut baseline = gated(1000.0);
        baseline.push(("host/available_parallelism".to_owned(), 1.0));
        let mut current = gated(1000.0);
        current.push(("host/available_parallelism".to_owned(), 1.0));
        for name in PARALLEL_GATED_MEDIANS {
            current.push((name.to_owned(), 123.0));
        }
        current.push(("store/append_vs_reingest".to_owned(), 42.0));
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert!(report
            .new_benches
            .contains(&"store/append_vs_reingest".to_owned()));
        // The pipeline medians are new to this baseline too.
        assert!(report
            .new_benches
            .iter()
            .any(|n| n.contains("pipeline/ingest32x8_query")));
        // The host-parallelism bookkeeping key is not a bench.
        assert!(!report
            .new_benches
            .iter()
            .any(|n| n == "host/available_parallelism"));
    }

    #[test]
    fn key_missing_from_baseline_is_skipped_not_fatal() {
        let baseline = entries(&[("sketch_join/tupsk_n256", 1000.0)]);
        let current = complete_current(1000.0);
        let report = compare_quick_bench(&baseline, &current, 0.25).unwrap();
        assert_eq!(report.checked.len(), 1);
        assert!(report
            .skipped
            .iter()
            .any(|s| s.contains("mle_on_sketch_join")));
        // …and the same keys surface in the new-bench list.
        assert!(report
            .new_benches
            .iter()
            .any(|n| n.contains("mle_on_sketch_join")));
    }
}
