//! The deterministic 32×8 pipeline corpus shared by the quick benchmarks and
//! the `ingest` / `query` CLI subcommands.
//!
//! Both halves of the offline/online split must be able to regenerate the
//! *identical* corpus from nothing but a row count: the `query` subcommand
//! (online process) rebuilds the in-memory repository from these generators
//! and asserts its ranking is bit-for-bit equal to the one answered from the
//! repository file written by `ingest` (offline process). Everything here is
//! seeded LCG arithmetic — no ambient randomness.

use joinmi_discovery::{RankedCandidate, RelationshipQuery, RepositoryConfig, TableRepository};
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_table::Table;

/// Number of candidate tables in the pipeline corpus.
pub const NUM_TABLES: usize = 32;
/// Feature columns per candidate table.
pub const FEATURES_PER_TABLE: usize = 8;
/// Size of the shared join-key universe.
pub const KEY_UNIVERSE: usize = 600;

/// Rows per table for quick (CI) vs. full benchmark runs.
#[must_use]
pub fn rows_for(quick: bool) -> usize {
    if quick {
        2_000
    } else {
        8_000
    }
}

/// A deterministic candidate table: string keys from the shared universe plus
/// eight numeric feature columns derived from the key index.
#[must_use]
pub fn candidate_table(index: usize, rows: usize) -> Table {
    let mut state = 0x9E37_79B9u64.wrapping_mul(index as u64 + 1) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let key_ids: Vec<u64> = (0..rows).map(|_| next() % KEY_UNIVERSE as u64).collect();
    let keys: Vec<String> = key_ids.iter().map(|k| format!("zip-{k}")).collect();
    let mut builder = Table::builder(format!("cand{index}")).push_str_column("key", keys);
    for f in 0..FEATURES_PER_TABLE {
        // Feature = deterministic function of the key plus per-table noise,
        // so the planted key → feature relationships carry real MI.
        let values: Vec<f64> = key_ids
            .iter()
            .map(|&k| (k as f64).mul_add(f as f64 + 1.0, (next() % 97) as f64 / 97.0))
            .collect();
        builder = builder.push_float_column(&format!("f{f}"), values);
    }
    builder.build().expect("candidate table")
}

/// All candidate tables of the corpus.
#[must_use]
pub fn candidate_tables(rows: usize) -> Vec<Table> {
    (0..NUM_TABLES).map(|i| candidate_table(i, rows)).collect()
}

/// The candidate tables assigned to shard `shard` of `num_shards`, under the
/// contiguous partitioning the serving layer's exact-merge argument assumes:
/// shard `s` holds tables `[s*ceil(N/num_shards), (s+1)*ceil(N/num_shards))`,
/// so concatenating the shards in order reassembles [`candidate_tables`]
/// exactly — and therefore a sharded daemon's merged ranking is bit-for-bit
/// the single-repository ranking.
#[must_use]
pub fn shard_tables(rows: usize, shard: usize, num_shards: usize) -> Vec<Table> {
    assert!(num_shards > 0, "num_shards must be positive");
    assert!(shard < num_shards, "shard index out of range");
    let chunk = NUM_TABLES.div_ceil(num_shards);
    (shard * chunk..NUM_TABLES.min((shard + 1) * chunk))
        .map(|i| candidate_table(i, rows))
        .collect()
}

/// Rows per table in the *base* (pre-append) corpus: everything except the
/// append tail (1% of rows, at least one). The incremental-ingest workload
/// ingests `append_split(rows)` rows per table, then appends the remaining
/// `rows - append_split(rows)`; the result must be bit-for-bit identical to
/// ingesting all `rows` at once.
#[must_use]
pub fn append_split(rows: usize) -> usize {
    rows - (rows / 100).max(1).min(rows)
}

/// The base corpus: every candidate table truncated to its first
/// [`append_split`] rows. Slices of the full deterministic tables, so base +
/// tail reassemble the one-shot corpus exactly.
#[must_use]
pub fn base_tables(rows: usize) -> Vec<Table> {
    let split = append_split(rows);
    (0..NUM_TABLES)
        .map(|i| candidate_table(i, rows).slice_rows(0..split))
        .collect()
}

/// The append tail: the last `rows - append_split(rows)` rows of every
/// candidate table (the chunks an ingest daemon would receive).
#[must_use]
pub fn tail_tables(rows: usize) -> Vec<Table> {
    let split = append_split(rows);
    (0..NUM_TABLES)
        .map(|i| candidate_table(i, rows).slice_rows(split..rows))
        .collect()
}

/// The base (query) table: keys from the same universe and a target driven by
/// the key index.
#[must_use]
pub fn query_table(rows: usize) -> Table {
    let mut state = 0xBEEF_CAFEu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let key_ids: Vec<u64> = (0..rows).map(|_| next() % KEY_UNIVERSE as u64).collect();
    let keys: Vec<String> = key_ids.iter().map(|k| format!("zip-{k}")).collect();
    let target: Vec<i64> = key_ids
        .iter()
        .map(|&k| (k * 3 + next() % 5) as i64)
        .collect();
    Table::builder("train")
        .push_str_column("key", keys)
        .push_int_column("target", target)
        .build()
        .expect("query table")
}

/// The repository configuration used by the pipeline workload (TUPSK,
/// sketch size 512, seed 3).
#[must_use]
pub fn repo_config() -> RepositoryConfig {
    RepositoryConfig {
        sketch: SketchConfig::new(512, 3),
        ..RepositoryConfig::default()
    }
}

/// Ingests the whole corpus into a fresh repository.
#[must_use]
pub fn build_repository(rows: usize) -> TableRepository {
    let mut repo = TableRepository::new(repo_config());
    repo.add_tables(candidate_tables(rows)).expect("ingest");
    repo
}

/// The standard ranked relationship query over the corpus (unlimited k, so
/// fingerprints cover every surviving candidate).
#[must_use]
pub fn standard_query(rows: usize) -> RelationshipQuery {
    RelationshipQuery::new(query_table(rows), "key", "target")
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 3))
        .with_min_join_size(10)
        .with_top_k(0)
}

/// Key universe of the skewed uncertainty corpus (see [`skewed_tables`]).
pub const SKEWED_KEYS: usize = 64;
/// Strong candidate tables in the skewed uncertainty corpus.
pub const SKEWED_STRONG: usize = 3;
/// Shared keys per weak-tail table in the skewed uncertainty corpus.
pub const SKEWED_WEAK_OVERLAP: usize = 8;

/// Weak-tail tables for quick (CI) vs. full benchmark runs.
#[must_use]
pub fn skewed_weak_for(quick: bool) -> usize {
    if quick {
        120
    } else {
        300
    }
}

/// The corpus of the uncertainty-ranking workload: a strong tie group —
/// [`SKEWED_STRONG`] tables with full key overlap and one-to-one string
/// features, every MI exactly `ln SKEWED_KEYS` — ahead of a long weak tail
/// whose tables share only [`SKEWED_WEAK_OVERLAP`] keys each. The tail's
/// cheap MI upper bound (`ln(overlap + 1) + γ` ≈ 2.77 nats) sits below the
/// strong group's credible lower bound (≈ 3.7 nats), so an interval top-k
/// query early-terminates the entire tail after the first screening chunk
/// while an exhaustive query must join and estimate every table.
#[must_use]
pub fn skewed_tables(weak: usize) -> Vec<Table> {
    fn strs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }
    let keys: Vec<String> = (0..SKEWED_KEYS).map(|i| format!("key-{i:02}")).collect();
    let mut tables = Vec::with_capacity(SKEWED_STRONG + weak);
    for t in 0..SKEWED_STRONG {
        let feature: Vec<String> = (0..SKEWED_KEYS).map(|i| format!("f{t}-{i}")).collect();
        tables.push(
            Table::builder(format!("strong{t}"))
                .push_str_column("key", strs(&keys))
                .push_str_column("feat", strs(&feature))
                .build()
                .expect("strong table"),
        );
    }
    for t in 0..weak {
        let mut weak_keys: Vec<String> = (0..SKEWED_WEAK_OVERLAP)
            .map(|i| format!("key-{i:02}"))
            .collect();
        weak_keys.extend((0..40).map(|j| format!("weak{t}-{j}")));
        let feature: Vec<String> = (0..weak_keys.len()).map(|i| format!("w{t}-{i}")).collect();
        tables.push(
            Table::builder(format!("weak{t}"))
                .push_str_column("key", strs(&weak_keys))
                .push_str_column("feat", strs(&feature))
                .build()
                .expect("weak table"),
        );
    }
    tables
}

/// Repository configuration for the skewed uncertainty corpus.
#[must_use]
pub fn skewed_config() -> RepositoryConfig {
    RepositoryConfig {
        sketch: SketchConfig::new(256, 5),
        ..RepositoryConfig::default()
    }
}

/// The base query of the uncertainty-ranking workload: interval scoring at
/// the 95% level over the full skewed key universe. Callers pick `top_k`
/// (0 = exhaustive baseline, small k = early-terminating run).
#[must_use]
pub fn skewed_query() -> RelationshipQuery {
    let keys: Vec<String> = (0..SKEWED_KEYS).map(|i| format!("key-{i:02}")).collect();
    let target: Vec<String> = (0..SKEWED_KEYS).map(|i| format!("t{i}")).collect();
    let train = Table::builder("train")
        .push_str_column("key", keys.iter().map(String::as_str).collect::<Vec<_>>())
        .push_str_column(
            "target",
            target.iter().map(String::as_str).collect::<Vec<_>>(),
        )
        .build()
        .expect("skewed train table");
    RelationshipQuery::new(train, "key", "target")
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(256, 5))
        .with_min_join_size(3)
        .with_confidence(0.95)
}

/// Fingerprint of a ranking for bit-for-bit identity checks across
/// processes: candidate index, exact MI bits, join size, key overlap.
#[must_use]
pub fn ranking_fingerprint(results: &[RankedCandidate]) -> Vec<(usize, u64, usize, usize)> {
    results
        .iter()
        .map(|r| {
            (
                r.candidate_index,
                r.mi.to_bits(),
                r.sketch_join_size,
                r.key_overlap,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_across_calls() {
        let a = candidate_table(3, 200);
        let b = candidate_table(3, 200);
        assert_eq!(a.num_rows(), 200);
        for row in 0..10 {
            assert_eq!(a.value(row, "key").unwrap(), b.value(row, "key").unwrap());
            assert_eq!(a.value(row, "f0").unwrap(), b.value(row, "f0").unwrap());
        }
        let qa = query_table(100);
        let qb = query_table(100);
        assert_eq!(
            qa.value(7, "target").unwrap(),
            qb.value(7, "target").unwrap()
        );
    }

    #[test]
    fn base_plus_tail_reassembles_the_corpus() {
        let rows = 300;
        assert_eq!(append_split(rows), 297);
        let full = candidate_tables(rows);
        let base = base_tables(rows);
        let tail = tail_tables(rows);
        for ((full, base), tail) in full.iter().zip(&base).zip(&tail) {
            assert_eq!(base.num_rows() + tail.num_rows(), full.num_rows());
            assert_eq!(&base.vstack(tail).unwrap(), full);
        }
        // Tiny corpora still split off at least one row.
        assert_eq!(append_split(5), 4);
        assert_eq!(append_split(1), 0);
    }

    #[test]
    fn shards_reassemble_the_corpus_in_order() {
        for num_shards in [1, 3, 5, 32] {
            let sharded: Vec<Table> = (0..num_shards)
                .flat_map(|s| shard_tables(50, s, num_shards))
                .collect();
            assert_eq!(sharded, candidate_tables(50), "num_shards={num_shards}");
        }
        // More shards than tables: the excess shards are empty.
        assert!(shard_tables(50, 32, 33).is_empty());
    }

    #[test]
    fn repository_and_query_produce_stable_fingerprints() {
        let repo = build_repository(300);
        assert_eq!(repo.candidates().len(), NUM_TABLES * FEATURES_PER_TABLE);
        let query = standard_query(300);
        let f1 = ranking_fingerprint(&query.execute(&repo).unwrap());
        let f2 = ranking_fingerprint(&query.execute(&repo).unwrap());
        assert!(!f1.is_empty());
        assert_eq!(f1, f2);
    }
}
