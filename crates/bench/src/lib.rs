//! Shared data-generation helpers for the criterion benchmarks.
//!
//! Every bench uses the same deterministic workloads so results are
//! comparable run-to-run: a Trinomial-derived pair of joinable tables (the
//! synthetic benchmark of the paper) at several sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use joinmi_synth::{decompose, DecomposedPair, KeyDistribution, TrinomialConfig};
use joinmi_table::Value;

pub mod corpus;
pub mod quickjson;

/// A benchmark workload: the generated pairs plus the decomposed tables.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Feature values of the (virtual) join result.
    pub xs: Vec<Value>,
    /// Target values of the (virtual) join result.
    pub ys: Vec<Value>,
    /// The decomposed joinable tables.
    pub pair: DecomposedPair,
    /// The analytic MI of the generating distribution.
    pub true_mi: f64,
}

/// Builds a workload with `rows` rows, Trinomial(m = 256), under the given
/// key regime.
#[must_use]
pub fn trinomial_workload(rows: usize, key_dist: KeyDistribution, seed: u64) -> Workload {
    let gen = TrinomialConfig::new(256, 0.4, 0.35);
    let data = gen.generate(rows, seed);
    let pair = decompose(&data.xs, &data.ys, key_dist);
    Workload {
        xs: data.xs,
        ys: data.ys,
        pair,
        true_mi: data.true_mi,
    }
}

/// The table sizes used by the §V-D performance comparison.
pub const PERF_SIZES: [usize; 3] = [5_000, 10_000, 20_000];

/// The deterministic correlated coordinate pair used by every k-NN kernel
/// bench (quick-bench `knn/*` targets and the criterion `knn` group must
/// measure the *same* workload for their medians to be comparable):
/// `x ~ U[0, 1)` from a fixed LCG, `y = x + 0.25·u`. The correlation keeps
/// the window expansion honest — on independent coordinates the x-prune
/// terminates after a handful of candidates and the kernel is all setup cost.
#[must_use]
pub fn knn_correlated_pair(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut state = 0x9e37_79b9_u64;
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        ((state >> 33) as f64) / f64::from(u32::MAX)
    };
    let xs: Vec<f64> = (0..n).map(|_| next()).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| x + 0.25 * next()).collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes() {
        let w = trinomial_workload(500, KeyDistribution::KeyInd, 1);
        assert_eq!(w.xs.len(), 500);
        assert_eq!(w.pair.train.num_rows(), 500);
        assert!(w.true_mi > 0.0);
    }
}
