//! Shared data-generation helpers for the criterion benchmarks.
//!
//! Every bench uses the same deterministic workloads so results are
//! comparable run-to-run: a Trinomial-derived pair of joinable tables (the
//! synthetic benchmark of the paper) at several sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use joinmi_synth::{decompose, DecomposedPair, KeyDistribution, TrinomialConfig};
use joinmi_table::Value;

pub mod corpus;
pub mod quickjson;

/// A benchmark workload: the generated pairs plus the decomposed tables.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Feature values of the (virtual) join result.
    pub xs: Vec<Value>,
    /// Target values of the (virtual) join result.
    pub ys: Vec<Value>,
    /// The decomposed joinable tables.
    pub pair: DecomposedPair,
    /// The analytic MI of the generating distribution.
    pub true_mi: f64,
}

/// Builds a workload with `rows` rows, Trinomial(m = 256), under the given
/// key regime.
#[must_use]
pub fn trinomial_workload(rows: usize, key_dist: KeyDistribution, seed: u64) -> Workload {
    let gen = TrinomialConfig::new(256, 0.4, 0.35);
    let data = gen.generate(rows, seed);
    let pair = decompose(&data.xs, &data.ys, key_dist);
    Workload {
        xs: data.xs,
        ys: data.ys,
        pair,
        true_mi: data.true_mi,
    }
}

/// The table sizes used by the §V-D performance comparison.
pub const PERF_SIZES: [usize; 3] = [5_000, 10_000, 20_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shapes() {
        let w = trinomial_workload(500, KeyDistribution::KeyInd, 1);
        assert_eq!(w.xs.len(), 500);
        assert_eq!(w.pair.train.num_rows(), 500);
        assert!(w.true_mi > 0.0);
    }
}
