//! Quick-mode benchmark runner.
//!
//! `cargo run -p joinmi_bench --release -- --quick --json` runs a compressed
//! version of the six criterion bench targets plus the parallel
//! ingest-and-query pipeline workload, and emits a machine-readable
//! `BENCH_PR2.json` (bench name → median wall nanoseconds) that seeds the
//! perf trajectory for future PRs. Unlike the criterion benches (minutes),
//! quick mode finishes in seconds, so CI can run it on every push.
//!
//! The pipeline workload ingests 32 candidate tables × 8 feature columns and
//! runs one ranked relationship query, once pinned to 1 thread and once to 4
//! (via `joinmi_par::with_threads`, independent of `JOINMI_THREADS`). The two
//! runs are checked for bit-for-bit identical candidates and rankings; the
//! JSON records both times, their ratio, and the identity check. Note the
//! speedup is only meaningful on a machine with ≥ 4 cores — the JSON records
//! the host parallelism so downstream tooling can judge.

use std::fmt::Write as _;
use std::time::Instant;

use joinmi_bench::trinomial_workload;
use joinmi_discovery::{RelationshipQuery, RepositoryConfig, TableRepository};
use joinmi_eval::EstimatorMode;
use joinmi_sketch::{SketchConfig, SketchKind};
use joinmi_synth::KeyDistribution;
use joinmi_table::{augment, AugmentSpec, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_owned());
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: joinmi_bench [--quick] [--json] [--out PATH]");
        eprintln!("  --quick  small iteration counts / workloads (seconds, not minutes)");
        eprintln!("  --json   write results to PATH (default BENCH_PR2.json)");
        return;
    }

    // Quick mode: smaller tables and fewer repetitions; default mode uses the
    // criterion-bench sizes for closer comparability.
    let (rows, iters) = if quick { (5_000, 7) } else { (20_000, 15) };
    let mut results: Vec<(String, f64)> = Vec::new();

    bench_targets(rows, iters, &mut results);
    pipeline_workload(quick, &mut results);
    results.push((
        "host/available_parallelism".to_owned(),
        std::thread::available_parallelism().map_or(1.0, |n| n.get() as f64),
    ));

    let width = results.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in &results {
        println!("{name:width$}  {value:>14.0}");
    }

    if json {
        let rendered = render_json(&results);
        std::fs::write(&out_path, rendered).expect("write bench JSON");
        println!("\nwrote {out_path}");
    }
}

/// Median wall time of `iters` runs of `f`, in nanoseconds.
fn median_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

/// Compressed versions of the six criterion bench targets.
fn bench_targets(rows: usize, iters: usize, results: &mut Vec<(String, f64)>) {
    let workload = trinomial_workload(rows, KeyDistribution::KeyInd, 7);
    let pair = &workload.pair;
    let cfg = SketchConfig::new(256, 7);

    // sketch_build: left-side TUPSK construction.
    results.push((
        format!("sketch_build/tupsk_left_{rows}_rows"),
        median_ns(iters, || {
            SketchKind::Tupsk
                .build_left(&pair.train, &pair.key_column, &pair.target_column, &cfg)
                .expect("sketch build")
                .len()
        }),
    ));

    let left = SketchKind::Tupsk
        .build_left(&pair.train, &pair.key_column, &pair.target_column, &cfg)
        .expect("left sketch");
    let right = SketchKind::Tupsk
        .build_right(
            &pair.cand,
            &pair.key_column,
            &pair.feature_column,
            pair.aggregation,
            &cfg,
        )
        .expect("right sketch");

    // sketch_join: probe + pair recovery only.
    results.push((
        "sketch_join/tupsk_n256".to_owned(),
        median_ns(iters * 4, || left.join(&right).len()),
    ));

    // estimators: MLE on the recovered sample.
    let joined = left.join(&right);
    results.push((
        "estimators/mle_on_sketch_join".to_owned(),
        median_ns(iters, || {
            EstimatorMode::Mle.estimate(joined.xs(), joined.ys(), 0)
        }),
    ));

    // full_vs_sketch: the §V-D head-to-head, both sides.
    let spec = AugmentSpec::new(
        pair.key_column.clone(),
        pair.target_column.clone(),
        pair.key_column.clone(),
        pair.feature_column.clone(),
        pair.aggregation,
    );
    results.push((
        format!("full_vs_sketch/full_join_and_estimate_{rows}"),
        median_ns(iters.min(5), || {
            let joined = augment(&pair.train, &pair.cand, &spec).expect("full join");
            let feature = spec.feature_column_name();
            let xs: Vec<_> = (0..joined.table.num_rows())
                .map(|i| joined.table.value(i, &feature).expect("column"))
                .collect();
            let ys: Vec<_> = (0..joined.table.num_rows())
                .map(|i| joined.table.value(i, &pair.target_column).expect("column"))
                .collect();
            EstimatorMode::Mle.estimate(&xs, &ys, 0)
        }),
    ));
    results.push((
        format!("full_vs_sketch/sketch_join_and_estimate_{rows}"),
        median_ns(iters, || {
            let joined = left.join(&right);
            EstimatorMode::Mle.estimate(joined.xs(), joined.ys(), 0)
        }),
    ));

    // table_ops: the materialized augmentation join alone.
    results.push((
        format!("table_ops/augment_{rows}"),
        median_ns(iters.min(5), || {
            augment(&pair.train, &pair.cand, &spec)
                .expect("full join")
                .matched_rows
        }),
    ));

    // ablation: sketch size sweep (build + join + estimate at n = 1024).
    let big_cfg = SketchConfig::new(1024, 7);
    results.push((
        "ablation/tupsk_n1024_build_join_estimate".to_owned(),
        median_ns(iters.min(5), || {
            let l = SketchKind::Tupsk
                .build_left(&pair.train, &pair.key_column, &pair.target_column, &big_cfg)
                .expect("left");
            let r = SketchKind::Tupsk
                .build_right(
                    &pair.cand,
                    &pair.key_column,
                    &pair.feature_column,
                    pair.aggregation,
                    &big_cfg,
                )
                .expect("right");
            let joined = l.join(&r);
            EstimatorMode::Mle.estimate(joined.xs(), joined.ys(), 0)
        }),
    ));
}

/// A deterministic candidate table: string keys from a shared universe plus
/// eight numeric feature columns derived from the key index.
fn candidate_table(index: usize, rows: usize, universe: usize) -> Table {
    let mut state = 0x9E37_79B9u64.wrapping_mul(index as u64 + 1) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let key_ids: Vec<u64> = (0..rows).map(|_| next() % universe as u64).collect();
    let keys: Vec<String> = key_ids.iter().map(|k| format!("zip-{k}")).collect();
    let mut builder = Table::builder(format!("cand{index}")).push_str_column("key", keys);
    for f in 0..8 {
        // Feature = deterministic function of the key plus per-table noise,
        // so the planted key → feature relationships carry real MI.
        let values: Vec<f64> = key_ids
            .iter()
            .map(|&k| (k as f64).mul_add(f as f64 + 1.0, (next() % 97) as f64 / 97.0))
            .collect();
        builder = builder.push_float_column(&format!("f{f}"), values);
    }
    builder.build().expect("candidate table")
}

/// The base (query) table: keys from the same universe and a target driven by
/// the key index.
fn query_table(rows: usize, universe: usize) -> Table {
    let mut state = 0xBEEF_CAFEu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let key_ids: Vec<u64> = (0..rows).map(|_| next() % universe as u64).collect();
    let keys: Vec<String> = key_ids.iter().map(|k| format!("zip-{k}")).collect();
    let target: Vec<i64> = key_ids
        .iter()
        .map(|&k| (k * 3 + next() % 5) as i64)
        .collect();
    Table::builder("train")
        .push_str_column("key", keys)
        .push_int_column("target", target)
        .build()
        .expect("query table")
}

/// Fingerprint of a ranking for the bit-for-bit identity check.
fn ranking_fingerprint(results: &[joinmi_discovery::RankedCandidate]) -> Vec<(usize, u64, usize)> {
    results
        .iter()
        .map(|r| (r.candidate_index, r.mi.to_bits(), r.sketch_join_size))
        .collect()
}

/// The acceptance workload: ingest 32 tables × 8 feature columns, then run
/// one ranked query — at 1 thread and at 4 — asserting identical results.
fn pipeline_workload(quick: bool, results: &mut Vec<(String, f64)>) {
    let (rows, reps) = if quick { (2_000, 3) } else { (8_000, 5) };
    let universe = 600;
    let tables: Vec<Table> = (0..32)
        .map(|i| candidate_table(i, rows, universe))
        .collect();
    let train = query_table(rows, universe);

    let repo_config = RepositoryConfig {
        sketch: SketchConfig::new(512, 3),
        ..RepositoryConfig::default()
    };
    let query = RelationshipQuery::new(train, "key", "target")
        .with_sketch(SketchKind::Tupsk, SketchConfig::new(512, 3))
        .with_min_join_size(10)
        .with_top_k(0);

    let run_once = |tables: Vec<Table>| {
        let mut repo = TableRepository::new(repo_config);
        let added = repo.add_tables(tables).expect("ingest");
        let ranking = query.execute(&repo).expect("query");
        (added, repo, ranking)
    };
    // Clone the input tables *outside* the timed region: the memcpy is the
    // same at any thread count and would dilute the measured speedup.
    let timed_median = |reps: usize| {
        let mut samples: Vec<u128> = (0..reps.max(1))
            .map(|_| {
                let fresh = tables.clone();
                let start = Instant::now();
                std::hint::black_box(run_once(fresh));
                start.elapsed().as_nanos()
            })
            .collect();
        samples.sort_unstable();
        samples[samples.len() / 2] as f64
    };

    let (added, repo_seq, ranking_seq) = joinmi_par::with_threads(1, || run_once(tables.clone()));
    assert_eq!(added, 32 * 8, "expected 8 candidate pairs per table");
    let t1_ns = joinmi_par::with_threads(1, || timed_median(reps));

    let (_, repo_par, ranking_par) = joinmi_par::with_threads(4, || run_once(tables.clone()));
    let t4_ns = joinmi_par::with_threads(4, || timed_median(reps));

    // Bit-for-bit identity between the sequential and 4-thread pipelines.
    let identical = repo_seq.candidates().len() == repo_par.candidates().len()
        && repo_seq
            .candidates()
            .iter()
            .zip(repo_par.candidates())
            .all(|(a, b)| a.label() == b.label() && a.sketch.rows() == b.sketch.rows())
        && ranking_fingerprint(&ranking_seq) == ranking_fingerprint(&ranking_par);
    assert!(identical, "parallel pipeline diverged from sequential");

    results.push(("pipeline/ingest32x8_query/threads=1".to_owned(), t1_ns));
    results.push(("pipeline/ingest32x8_query/threads=4".to_owned(), t4_ns));
    results.push((
        "pipeline/speedup_t4_over_t1".to_owned(),
        if t4_ns > 0.0 { t1_ns / t4_ns } else { 0.0 },
    ));
    results.push((
        "pipeline/parallel_identical".to_owned(),
        f64::from(u8::from(identical)),
    ));
}

/// Renders the results as a flat JSON object (insertion order preserved).
fn render_json(results: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(out, "  \"{name}\": {value:.1}{comma}");
    }
    out.push_str("}\n");
    out
}
